"""Thin setup.py shim.

Kept alongside pyproject.toml so that ``pip install -e .`` works in offline
environments whose setuptools lacks the ``wheel`` package required by PEP
660 editable installs (pip falls back to the legacy ``setup.py develop``
path when invoked with ``--no-use-pep517``).
"""

from setuptools import setup

setup()
