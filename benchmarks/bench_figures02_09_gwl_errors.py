"""Figures 2-9: error behaviour of the five algorithms on GWL columns.

Paper exhibits: for each of the eight indexed columns, the error metric
sum(e_i - a_i)/sum(a_i) over 200 mixed random scans, per buffer size (5%
steps of T).  Headline results reproduced here:

* EPFIS dominates the other algorithms on every column,
* EPFIS's maximum error stays within a small band (paper: <= 20%),
* the others can blow up by orders of magnitude
  (paper maxima: SD 1889.7%, OT 2046.2%, DC 2876.4%, ML 97.8%).
"""

import random

import pytest
import conftest
from conftest import (
    GWL_BUFFER_FLOOR,
    SCAN_COUNT,
    run_once,
    write_result,
    write_result_json,
)

from repro.datagen.gwl import ERROR_FIGURE_COLUMNS
from repro.eval.buffer_grid import evaluation_buffer_grid
from repro.eval.figures import GWL_ERROR_FIGURES, gwl_error_figure, max_error_summary
from repro.eval.report import ascii_chart, format_table

_RESULTS = {}


@pytest.mark.parametrize(
    "figure,column", sorted(GWL_ERROR_FIGURES.items())
)
def test_gwl_error_figure(benchmark, gwl_db, figure, column):
    index = gwl_db.index(column)
    grid = evaluation_buffer_grid(
        index.table.page_count, floor=GWL_BUFFER_FLOOR
    )
    result = run_once(
        benchmark,
        lambda: gwl_error_figure(
            gwl_db, column, scan_count=SCAN_COUNT, seed=1, buffer_grid=grid
        ),
    )
    _RESULTS[column] = result

    percents = grid.percents()
    chart = ascii_chart(
        {
            c.estimator: [
                (p, 100.0 * e) for p, (_b, e) in zip(percents, c.points)
            ]
            for c in result.curves
        },
        width=70,
        height=20,
        title=f"Figure {figure}: error behaviour for {column}",
        x_label="buffer size (% of T)",
        y_label="error (%)",
    )
    table = format_table(
        ["algorithm", "max |error| %", "mean error %"],
        [
            (
                c.estimator,
                f"{100 * c.max_abs_error():.1f}",
                f"{100 * sum(e for _b, e in c.points) / len(c.points):+.1f}",
            )
            for c in result.curves
        ],
    )
    write_result(f"figure{figure:02d}_gwl_{column}", chart + "\n\n" + table)
    write_result_json(f"figure{figure:02d}_gwl_{column}", result)

    worst = result.max_abs_errors()
    epfis = worst["EPFIS"]
    # EPFIS dominates on this column.
    assert epfis <= min(worst.values()) + 1e-9, worst
    # And stays within (a scaled-tolerant version of) the paper's band.
    assert epfis <= conftest.EPFIS_GWL_BAND, worst


def test_gwl_max_error_summary(benchmark, gwl_db):
    """The Section 5.1 summary sentence, regenerated."""
    missing = [c for c in ERROR_FIGURE_COLUMNS if c not in _RESULTS]
    for column in missing:  # direct invocation / -k runs
        _RESULTS[column] = gwl_error_figure(
            gwl_db, column, scan_count=SCAN_COUNT, seed=1
        )
    summary = run_once(
        benchmark, lambda: max_error_summary(list(_RESULTS.values()))
    )
    paper = {"EPFIS": 20.0, "SD": 1889.7, "OT": 2046.2, "DC": 2876.4,
             "ML": 97.8}
    rendered = format_table(
        ["algorithm", "max |error| % (repro)", "max |error| % (paper)"],
        [
            (name, f"{summary[name]:.1f}", paper[name])
            for name in ("EPFIS", "ML", "DC", "SD", "OT")
        ],
        title="Section 5.1: worst-case errors across Figures 2-9",
    )
    write_result("section5_1_gwl_max_errors", rendered)

    assert summary["EPFIS"] <= conftest.EPFIS_GWL_BAND
    assert summary["EPFIS"] <= min(summary.values())
    # At least one cluster-ratio algorithm blows past 100% somewhere.
    assert max(summary["DC"], summary["OT"], summary["SD"]) > 100.0
