#!/usr/bin/env python
"""Run the shard scaling benchmark and write BENCH_shard.json.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/run_shard_bench.py            # full run
    PYTHONPATH=src python benchmarks/run_shard_bench.py --smoke    # structure only

The full run streams a paper-scale trace (10^7 references over 200k
pages) through a single-process compact pass and through sharded passes
at 1/2/4/8 workers, recording wall and critical-path speedups, the
merged-vs-exact verdict at every worker count, and the sampled kernel's
merged-curve band error.  The acceptance gate (speedup >= 2.5x at 4
workers; >= 1.2x at 2 workers under --smoke) is judged on wall clock
when the host has >= 4 cores and on the critical path otherwise — see
src/repro/perf/shard.py.  A merged curve that diverges from the exact
single pass fails the run on any host.

``--smoke`` shrinks the trace and worker set to a roughly one-second
structural check — the same mode the tier-1 suite and the CI shard
stage exercise.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.perf.shard import (  # noqa: E402 (path bootstrap above)
    DEFAULT_KERNEL,
    DEFAULT_WORKER_COUNTS,
    run_shard_benchmark,
)
from repro.trace.paper_scale import (  # noqa: E402
    PAPER_SCALE_PAGES,
    PAPER_SCALE_REFS,
)


def main(argv=None) -> int:
    """Parse arguments, run the benchmark, print a summary table."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_shard.json",
                        help="output JSON path (default: repo root)")
    parser.add_argument("--refs", type=int, default=PAPER_SCALE_REFS)
    parser.add_argument("--pages", type=int, default=PAPER_SCALE_PAGES)
    parser.add_argument("--pattern", choices=("zipf", "clustered"),
                        default="zipf")
    parser.add_argument("--kernel", default=DEFAULT_KERNEL)
    parser.add_argument("--workers", type=int, nargs="+",
                        default=list(DEFAULT_WORKER_COUNTS),
                        help="worker counts to scale over")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny trace, two worker counts "
                             "(structural check)")
    args = parser.parse_args(argv)

    document = run_shard_benchmark(
        out_path=args.out,
        refs=args.refs,
        pages=args.pages,
        pattern=args.pattern,
        seed=args.seed,
        kernel=args.kernel,
        worker_counts=args.workers,
        smoke=args.smoke,
    )
    single = document["single_pass"]
    print(
        f"single-pass {single['kernel']}: {single['wall_ms']:10.1f} ms"
    )
    for row in document["sharded"]:
        print(
            f"{row['workers']:2d} workers  "
            f"wall {row['wall_ms']:10.1f} ms ({row['speedup_wall']:5.2f}x)"
            f"  critical path {row['critical_path_ms']:10.1f} ms "
            f"({row['speedup_critical_path']:5.2f}x)  "
            f"merge {row['merge_ms']:7.1f} ms  "
            f"{'exact' if row['merged_equals_exact'] else 'DIVERGED'}"
        )
    sampled = document["sampled"]
    print(
        f"sampled merge ({sampled['shards']} shards): "
        f"{'bit-identical' if sampled['merged_equals_single_pass'] else 'DIVERGED'}"
        f", band error {sampled['band_error_pct']:.2f}% "
        f"(bound {sampled['bound_pct']:.0f}%)"
    )
    criteria = document["criteria"]
    print(
        f"criteria passed: {criteria['passed']} "
        f"(basis {criteria['basis']}, {criteria['host_cores']} cores, "
        f"{criteria['speedup']}x at {criteria['gate_workers']} workers, "
        f"min {criteria['min_speedup']}x)  -> {args.out}"
    )
    # Merge correctness is enforced on every host; the speedup gate is
    # already basis-adjusted for starved runners inside the criteria.
    if not (
        criteria["merged_exact_everywhere"]
        and criteria["sampled_merge_exact"]
    ):
        return 1
    return 0 if criteria["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
