"""Micro-benchmarks of the core machinery (classic pytest-benchmark usage).

These are throughput benchmarks, not paper exhibits: they track the cost of
the stack-distance pass (the paper's 'scan of all the index entries'), the
exact LRU simulator, B-tree operations, and Est-IO's per-call latency (the
paper's claim that query-compilation-time estimation is 'inexpensive' and
'only involves computing a simple formula').
"""

import random

import pytest

from repro.buffer.kernels import available_kernels, get_kernel
from repro.buffer.lru import LRUBufferPool
from repro.buffer.stack import FetchCurve
from repro.estimators.epfis import EPFISEstimator, LRUFit
from repro.perf.harness import build_zipf_trace
from repro.storage.btree import BTreeIndex, KeyBound
from repro.types import RID, ScanSelectivity

TRACE_LENGTH = 50_000
PAGES = 1_250


@pytest.fixture(scope="module")
def trace():
    rng = random.Random(5)
    return [rng.randrange(PAGES) for _ in range(TRACE_LENGTH)]


@pytest.fixture(scope="module")
def zipf_trace():
    return build_zipf_trace(TRACE_LENGTH, PAGES)


def test_perf_stack_distance_pass(benchmark, trace):
    """One full Mattson pass: LRU-Fit's dominant cost."""
    curve = benchmark(FetchCurve.from_trace, trace)
    assert curve.accesses == TRACE_LENGTH


@pytest.mark.parametrize("kernel_name", available_kernels())
def test_perf_stack_distance_kernel(benchmark, trace, kernel_name):
    """The same pass through each registered kernel (uniform trace)."""
    kernel = get_kernel(kernel_name)
    curve = benchmark(kernel.analyze, trace)
    assert curve.accesses == TRACE_LENGTH
    assert curve.distinct_pages == PAGES


@pytest.mark.parametrize("kernel_name", available_kernels())
def test_perf_stack_distance_kernel_zipf(benchmark, zipf_trace, kernel_name):
    """Kernel throughput under Zipf 80-20 skew (hot pages, short depths)."""
    kernel = get_kernel(kernel_name)
    curve = benchmark(kernel.analyze, zipf_trace)
    assert curve.accesses == TRACE_LENGTH


def test_perf_lru_simulation(benchmark, trace):
    """Exact single-size LRU simulation for comparison."""

    def simulate():
        return LRUBufferPool(PAGES // 10).run(trace)

    fetches = benchmark(simulate)
    assert fetches >= PAGES


def test_perf_fetch_curve_query(benchmark, trace):
    """Post-pass F(B) queries are logarithmic and near-free."""
    curve = FetchCurve.from_trace(trace)

    def query_grid():
        return [curve.fetches(b) for b in range(1, 1_000, 37)]

    values = benchmark(query_grid)
    assert values == sorted(values, reverse=True)


def test_perf_btree_insert(benchmark):
    rng = random.Random(7)
    keys = [rng.randrange(10_000) for _ in range(20_000)]

    def build():
        tree = BTreeIndex(fanout=64)
        for i, k in enumerate(keys):
            tree.insert(k, RID(i % 500, 0))
        return tree

    tree = benchmark(build)
    assert len(tree) == len(keys)


def test_perf_btree_range_scan(benchmark):
    tree = BTreeIndex(fanout=64)
    rng = random.Random(9)
    for i in range(20_000):
        tree.insert(rng.randrange(10_000), RID(i % 500, 0))

    def scan():
        return sum(
            1 for _ in tree.range(KeyBound(2_000, True), KeyBound(4_000, True))
        )

    count = benchmark(scan)
    assert count > 0


def test_perf_est_io_call(benchmark, trace, synthetic_dataset_factory):
    """The optimizer-facing call: must be microseconds, not milliseconds."""
    stats = LRUFit().run_on_trace(trace, table_pages=PAGES, distinct_keys=500)
    estimator = EPFISEstimator.from_statistics(stats)
    selectivity = ScanSelectivity(0.1, 0.5)

    value = benchmark(estimator.estimate, selectivity, PAGES // 3)
    assert value > 0
