"""Per-scan scatter diagnostics (beyond the paper's aggregate metric).

The paper justifies its aggregate metric by arguing absolute errors matter
to the optimizer; this bench complements it with the per-scan view the
aggregate collapses — error quantiles, over/under split, and the rank
correlation between estimates and actuals (an estimator that *orders*
scans correctly picks the right plans even when biased).

Expected: EPFIS has both the tightest quantiles and a near-perfect rank
correlation; cluster-ratio baselines keep high rank correlation (they are
monotone in sigma) while their quantiles are wildly biased.
"""

import random

from conftest import (
    SCAN_COUNT,
    SYNTH_BUFFER_FLOOR,
    run_once,
    write_result,
)

from repro.eval.buffer_grid import evaluation_buffer_grid
from repro.eval.figures import paper_estimators
from repro.eval.ground_truth import ScanTraceExtractor
from repro.eval.report import format_table
from repro.eval.scatter import summarize_scatter
from repro.workload.scans import generate_scan_mix


def test_scatter_diagnostics(benchmark, synthetic_dataset_factory):
    dataset = synthetic_dataset_factory(theta=0.0, window=0.5)
    index = dataset.index
    extractor = ScanTraceExtractor(index)
    estimators = paper_estimators(index)
    scans = generate_scan_mix(index, count=SCAN_COUNT, rng=random.Random(1))
    grid = evaluation_buffer_grid(
        index.table.page_count, floor=SYNTH_BUFFER_FLOOR
    )
    buffer_pages = list(grid)[len(grid) // 2]

    def sweep():
        actuals = [
            extractor.actual_fetches(scan, [buffer_pages])[buffer_pages]
            for scan in scans
        ]
        summaries = {}
        for estimator in estimators:
            estimates = [
                estimator.estimate(scan.selectivity(), buffer_pages)
                for scan in scans
            ]
            summaries[estimator.name] = summarize_scatter(estimates, actuals)
        return summaries

    summaries = run_once(benchmark, sweep)

    rendered = format_table(
        ["algorithm", "p10", "p50", "p90", "over-est %", "rank corr"],
        [
            (
                name,
                f"{s.p10:+.2f}",
                f"{s.p50:+.2f}",
                f"{s.p90:+.2f}",
                f"{100 * s.overestimated_fraction:.0f}",
                f"{s.rank_correlation:+.3f}",
            )
            for name, s in summaries.items()
        ],
        title=(
            "Per-scan relative-error scatter at B = "
            f"{buffer_pages} (mixed scans)"
        ),
    )
    write_result("scatter_diagnostics", rendered)

    epfis = summaries["EPFIS"]
    # Finding (recorded in the results file): EPFIS has the least-biased
    # *median* per-scan error, which is what drives its aggregate-metric
    # dominance — but its per-scan spread is NOT the tightest: the
    # nu-indicator in the sigma-correction switches discontinuously at
    # phi = 3*sigma, widening the scatter relative to the smoothly (if
    # hugely) biased cluster-ratio formulas.  A monotone blend would be a
    # natural improvement over the paper's indicator variable.
    for name, s in summaries.items():
        if name != "EPFIS":
            assert abs(epfis.p50) <= abs(s.p50) + 1e-9, (name, summaries)
    assert epfis.rank_correlation > 0.8
