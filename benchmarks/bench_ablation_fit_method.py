"""Ablation (Section 4.1): line segments vs polynomial curve fitting.

The paper names polynomial fitting as a viable alternative and picks line
segments as "simple but adequate".  This bench quantifies the choice at a
matched catalog budget: six segments store 14 floats (7 knot pairs); a
degree-6 polynomial plus its range stores 9.  Compared on FPF curves from
three clustering regimes:

* in-range accuracy (max relative deviation from the exact curve),
* extrapolation sanity below B_min (segments extrapolate linearly;
  polynomials can swing wildly — the practical reason segments won).
"""

from conftest import run_once, write_result

from repro.buffer.stack import FetchCurve
from repro.datagen.synthetic import SyntheticSpec, build_synthetic_dataset
from repro.estimators.epfis import buffer_grid
from repro.eval.report import format_table
from repro.fit.polynomial import fit_polynomial
from repro.fit.segments import fit_optimal
from repro.trace.stats import min_modeled_buffer

WINDOWS = (0.05, 0.5, 1.0)
RECORDS = 20_000


def test_fit_method_ablation(benchmark):
    def sweep():
        rows = []
        for window in WINDOWS:
            dataset = build_synthetic_dataset(
                SyntheticSpec(
                    records=RECORDS,
                    distinct_values=RECORDS // 100,
                    records_per_page=40,
                    window=window,
                    seed=13,
                )
            )
            index = dataset.index
            pages = index.table.page_count
            exact = FetchCurve.from_trace(index.page_sequence())
            b_min = min_modeled_buffer(pages)
            grid = buffer_grid(b_min, pages, min_points=64)
            points = [(float(b), float(exact.fetches(b))) for b in grid]

            segments = fit_optimal(points, 6)
            poly = fit_polynomial(points, 6)

            def max_rel(evaluate):
                return max(
                    abs(evaluate(b) - y) / y for b, y in points if y > 0
                )

            # Extrapolation check at half the modeled minimum.
            probe = max(1, b_min // 2)
            true_low = exact.fetches(probe)
            seg_low = segments.evaluate(probe)
            poly_low = poly.evaluate(probe)
            rows.append(
                (
                    window,
                    f"{100 * max_rel(segments.evaluate):.1f}",
                    f"{100 * max_rel(poly.evaluate):.1f}",
                    f"{100 * (seg_low - true_low) / true_low:+.0f}",
                    f"{100 * (poly_low - true_low) / true_low:+.0f}",
                )
            )
        return rows

    rows = run_once(benchmark, sweep)

    rendered = format_table(
        ["K", "segments max err %", "poly max err %",
         "segments extrap err %", "poly extrap err %"],
        rows,
        title=(
            "Ablation: 6 line segments vs degree-6 polynomial on the FPF "
            "curve"
        ),
    )
    write_result("ablation_fit_method", rendered)

    for _k, seg_err, poly_err, seg_low, _poly_low in rows:
        # Segments stay adequate in range (the paper's claim)...
        assert float(seg_err) <= 35.0, rows
        # ...and extrapolate sanely below B_min.
        assert abs(float(seg_low)) <= 60.0, rows
