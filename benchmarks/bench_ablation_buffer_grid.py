"""Ablation (Section 4.1, footnote 2): the modeling-grid rule.

The paper's grid steps by 2*sqrt(B_max - B_min); Goetz Graefe suggested the
geometric alternative B_i = B_min * (B_max/B_min)^(i/k).  This bench
compares EPFIS accuracy under both rules (same segment budget).
"""

import random

from conftest import (
    SCAN_COUNT,
    SYNTH_BUFFER_FLOOR,
    run_once,
    write_result,
)

from repro.estimators.epfis import EPFISEstimator, LRUFitConfig
from repro.eval.buffer_grid import evaluation_buffer_grid
from repro.eval.experiment import run_error_behavior
from repro.eval.report import format_table
from repro.workload.scans import generate_scan_mix

RULES = ("paper", "graefe")


def test_grid_rule_ablation(benchmark, synthetic_dataset_factory):
    results = {}

    def sweep():
        for theta, window in ((0.0, 0.1), (0.86, 0.5)):
            dataset = synthetic_dataset_factory(theta, window)
            index = dataset.index
            grid = evaluation_buffer_grid(
                index.table.page_count, floor=SYNTH_BUFFER_FLOOR
            )
            scans = generate_scan_mix(
                index, count=SCAN_COUNT, rng=random.Random(1)
            )
            for rule in RULES:
                estimator = EPFISEstimator.from_index(
                    index, LRUFitConfig(grid_rule=rule, graefe_points=64)
                )
                result = run_error_behavior(index, [estimator], scans, grid)
                results[(dataset.spec.theta, dataset.spec.window, rule)] = (
                    100.0 * result.curves[0].max_abs_error()
                )
        return results

    run_once(benchmark, sweep)

    rendered = format_table(
        ["theta", "K", "grid rule", "max |error| %"],
        [
            (theta, window, rule, f"{value:.1f}")
            for (theta, window, rule), value in sorted(results.items())
        ],
        title="Ablation: EPFIS error under paper vs Graefe buffer grids",
    )
    write_result("ablation_buffer_grid", rendered)

    # Both rules keep EPFIS near its band, and they agree closely with
    # each other (the grid rule is not a sensitive design choice).
    for value in results.values():
        assert value <= 55.0, results
    for theta, window in ((0.0, 0.1), (0.86, 0.5)):
        paper_rule = results[(theta, window, "paper")]
        graefe_rule = results[(theta, window, "graefe")]
        assert abs(paper_rule - graefe_rule) <= max(
            5.0, 0.3 * max(paper_rule, graefe_rule)
        ), results
