"""Ablation (Section 4.2 erratum): phi = min(1, B/T) vs the printed max.

The paper prints phi = max(1, B/T), which makes the correction trigger
(phi >= 3 sigma) true for every sigma <= 1/3 regardless of buffer size, and
the damping factor min(1, phi/(6 sigma)) larger.  The prose ("sigma << 1/3
and sigma << B/T") implies min.  This bench quantifies the difference and
also measures switching the correction off entirely.
"""

import random

from conftest import (
    SCAN_COUNT,
    SYNTH_BUFFER_FLOOR,
    run_once,
    write_result,
)

from repro.estimators.epfis import EPFISEstimator, LRUFit
from repro.eval.buffer_grid import evaluation_buffer_grid
from repro.eval.experiment import run_error_behavior
from repro.eval.report import format_table
from repro.workload.scans import generate_scan_mix

VARIANTS = {
    "corrected (min rule)": dict(phi_rule="corrected"),
    "literal (max rule)": dict(phi_rule="literal-max"),
    "no correction": dict(apply_correction=False),
}


def test_phi_rule_ablation(benchmark, synthetic_dataset_factory):
    # Small scans against a weakly clustered index with generous buffers:
    # exactly the regime the correction was designed for.
    dataset = synthetic_dataset_factory(theta=0.0, window=1.0)
    index = dataset.index
    stats = LRUFit().run(index)
    grid = evaluation_buffer_grid(
        index.table.page_count, floor=SYNTH_BUFFER_FLOOR
    )
    scans = generate_scan_mix(
        index, count=SCAN_COUNT, small_probability=1.0,
        rng=random.Random(1),
    )

    def sweep():
        worst = {}
        for name, options in VARIANTS.items():
            estimator = EPFISEstimator.from_statistics(stats, **options)
            result = run_error_behavior(index, [estimator], scans, grid)
            worst[name] = 100.0 * result.curves[0].max_abs_error()
        return worst

    worst = run_once(benchmark, sweep)

    rendered = format_table(
        ["variant", "max |error| % (small scans, K=1)"],
        [(name, f"{value:.1f}") for name, value in worst.items()],
        title="Ablation: the small-selectivity correction's phi rule",
    )
    write_result("ablation_phi_rule", rendered)

    # The correction must help in its design regime (vs none at all).
    assert worst["corrected (min rule)"] <= worst["no correction"] + 1e-9
