"""Scale stability: the justification for running scaled-down exhibits.

DESIGN.md claims the error-vs-buffer experiments are shape-invariant in N
at fixed N/I, R, theta, K — which is what lets the bench suite stand in
for the paper's 10^6-record runs.  This bench tests the claim directly:
the same figure at 1x and 3x the default size must rank the algorithms
identically and keep each algorithm's worst error within a factor of ~2.
"""

import conftest
from conftest import SYNTH_RECORDS, run_once, write_result

from repro.eval.figures import synthetic_error_figure
from repro.eval.report import format_table

THETA = 0.86
WINDOW = 0.10


def test_scale_stability(benchmark):
    sizes = (SYNTH_RECORDS, 3 * SYNTH_RECORDS)

    def sweep():
        table = {}
        for records in sizes:
            result = synthetic_error_figure(
                theta=THETA,
                window=WINDOW,
                records=records,
                distinct_values=records // 100,
                scan_count=conftest.SCAN_COUNT // 2,
                seed=1,
            )
            table[records] = result.max_abs_errors()
        return table

    table = run_once(benchmark, sweep)

    names = sorted(table[sizes[0]])
    rendered = format_table(
        ["N", *names],
        [
            (records, *(f"{table[records][n]:.1f}" for n in names))
            for records in sizes
        ],
        title=(
            f"Scale stability: worst |error| % at theta={THETA}, "
            f"K={WINDOW}, N/I=100"
        ),
    )
    write_result("scale_stability", rendered)

    small, large = table[sizes[0]], table[sizes[1]]
    # Ranking is preserved: EPFIS best at both sizes, OT worst at both.
    assert min(small, key=small.get) == min(large, key=large.get) == "EPFIS"
    assert max(small, key=small.get) == max(large, key=large.get)
    # Magnitudes stay within a factor of ~2 per algorithm.
    for name in names:
        lo, hi = sorted((small[name], large[name]))
        assert hi <= 2.5 * lo + 10.0, (name, small[name], large[name])
