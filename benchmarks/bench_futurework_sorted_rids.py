"""Future work (Section 6): indexes with sorted RIDs per key value.

The paper defers "indexes with sorted RIDs for a given key value".  Our
substrate supports both entry orders — insertion order (the paper's model)
via incremental index maintenance, and page-sorted RIDs via bulk build —
so this bench measures what the paper left open:

* how much sorting RIDs within each key improves the FPF curve (it turns
  each key's accesses into one monotone sweep, cutting small-buffer
  refetches), and
* whether EPFIS stays accurate when pointed at the sorted-RID trace
  (it should: LRU-Fit simulates whatever trace the index produces).
"""

import random

from conftest import (
    SCAN_COUNT,
    SYNTH_BUFFER_FLOOR,
    run_once,
    write_result,
)

from repro.buffer.stack import FetchCurve
from repro.estimators.epfis import EPFISEstimator, LRUFit
from repro.eval.buffer_grid import evaluation_buffer_grid
from repro.eval.experiment import run_error_behavior
from repro.eval.report import format_table
from repro.storage.index import Index
from repro.workload.scans import generate_scan_mix


def test_sorted_rid_variant(benchmark, synthetic_dataset_factory):
    dataset = synthetic_dataset_factory(theta=0.0, window=0.5)
    index = dataset.index

    def build_and_compare():
        # Bulk build orders duplicate-key RIDs by page: the sorted variant.
        sorted_index = Index.build(
            dataset.table, "key", name=f"{dataset.name}.sorted"
        )
        insertion_curve = FetchCurve.from_trace(index.page_sequence())
        sorted_curve = FetchCurve.from_trace(sorted_index.page_sequence())
        grid = evaluation_buffer_grid(
            index.table.page_count, floor=SYNTH_BUFFER_FLOOR
        )
        b1 = (insertion_curve.fetches(1), sorted_curve.fetches(1))
        fpf_rows = [
            (
                b,
                insertion_curve.fetches(b),
                sorted_curve.fetches(b),
                f"{(insertion_curve.fetches(b) - sorted_curve.fetches(b)) / insertion_curve.fetches(b):+.1%}",
            )
            for b in grid
        ]
        # EPFIS accuracy on the sorted-RID index.
        scans = generate_scan_mix(
            sorted_index, count=SCAN_COUNT, rng=random.Random(1)
        )
        estimator = EPFISEstimator.from_index(sorted_index)
        result = run_error_behavior(
            sorted_index, [estimator], scans, grid,
            dataset_name="sorted-RID",
        )
        return fpf_rows, 100.0 * result.curves[0].max_abs_error(), b1

    fpf_rows, epfis_worst, b1 = run_once(benchmark, build_and_compare)

    rendered = format_table(
        ["B", "F insertion-order", "F sorted-RIDs", "saved"],
        fpf_rows,
        title="Future work: sorted RIDs per key vs insertion order",
    )
    rendered += (
        f"\n\nF at B = 1: insertion order {b1[0]}, sorted RIDs {b1[1]}"
        f"\nEPFIS worst |error| on the sorted-RID index: "
        f"{epfis_worst:.1f}%"
    )
    write_result("futurework_sorted_rids", rendered)

    # Within-key sorting eliminates within-key page jumps, so the
    # single-buffer fetch count strictly improves.  Across the wider grid
    # the effect is mixed (sorting also *systematically separates*
    # cross-key reuses of the same page, which random insertion order
    # sometimes places close together) — that finding is the point of the
    # recorded table; no universal ordering is asserted.
    assert b1[1] < b1[0]
    # EPFIS remains accurate: the empirical method is agnostic to how the
    # trace was produced.
    assert epfis_worst <= 48.0
