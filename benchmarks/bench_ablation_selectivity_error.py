"""Ablation (beyond the paper): sensitivity to selectivity estimation error.

The paper's experiments hand every algorithm the *exact* selectivity and
measure only page-fetch modeling error.  Real optimizers feed estimators
histogram-derived selectivities.  This bench runs the same error-behaviour
experiment three ways — exact sigma, equi-depth-histogram sigma, and
equi-width-histogram sigma — quantifying how much of EPFIS's accuracy
survives realistic selectivity noise.
"""

import random

import conftest
from conftest import (
    SCAN_COUNT,
    SYNTH_BUFFER_FLOOR,
    run_once,
    write_result,
)

from repro.estimators.epfis import EPFISEstimator
from repro.eval.buffer_grid import evaluation_buffer_grid
from repro.eval.ground_truth import ScanTraceExtractor
from repro.eval.metrics import aggregate_relative_error
from repro.eval.report import format_table
from repro.workload.histogram import build_equi_depth, build_equi_width
from repro.workload.scans import generate_scan_mix
from repro.types import ScanSelectivity


def test_selectivity_error_sensitivity(benchmark, synthetic_dataset_factory):
    dataset = synthetic_dataset_factory(theta=0.86, window=0.5)
    index = dataset.index
    estimator = EPFISEstimator.from_index(index)
    extractor = ScanTraceExtractor(index)
    grid = evaluation_buffer_grid(
        index.table.page_count, floor=SYNTH_BUFFER_FLOOR
    )
    scans = generate_scan_mix(index, count=SCAN_COUNT, rng=random.Random(1))

    sources = {
        "exact": lambda scan: scan.range_selectivity,
    }
    for name, builder in (
        ("equi-depth(20)", build_equi_depth),
        ("equi-width(20)", build_equi_width),
    ):
        histogram = builder(index, buckets=20)
        sources[name] = (
            lambda scan, h=histogram: h.estimate_range(scan.key_range)
        )

    def sweep():
        actuals_by_scan = [
            extractor.actual_fetches(scan, list(grid)) for scan in scans
        ]
        table = {}
        for source_name, sigma_of in sources.items():
            sigmas = [sigma_of(scan) for scan in scans]
            worst = 0.0
            for b in grid:
                estimates = [
                    estimator.estimate(ScanSelectivity(sigma), b)
                    for sigma in sigmas
                ]
                actuals = [by_scan[b] for by_scan in actuals_by_scan]
                error = aggregate_relative_error(estimates, actuals)
                worst = max(worst, abs(error))
            table[source_name] = 100.0 * worst
        return table

    table = run_once(benchmark, sweep)

    rendered = format_table(
        ["selectivity source", "EPFIS max |error| %"],
        [(name, f"{value:.1f}") for name, value in table.items()],
        title="Ablation: exact vs histogram-estimated selectivities",
    )
    write_result("ablation_selectivity_error", rendered)

    # Histogram noise must not destroy EPFIS's accuracy: within a handful
    # of points of the exact-sigma run.
    for name in ("equi-depth(20)", "equi-width(20)"):
        assert table[name] <= table["exact"] + 15.0, table
