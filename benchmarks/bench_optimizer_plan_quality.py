"""Beyond the paper: does better page-fetch estimation pick better plans?

The paper motivates EPFIS by access-path selection (Section 2) but never
closes the loop.  This bench does: for a workload of random scans, each
estimator drives the table-scan vs index-scan choice, and the chosen plan's
*actual* cost (exact LRU simulation) is compared to the best achievable.
The metric is regret: extra pages fetched relative to always choosing
optimally.
"""

import random

from conftest import SCAN_COUNT, run_once, write_result

from repro.eval.buffer_grid import evaluation_buffer_grid
from repro.eval.figures import paper_estimators
from repro.eval.ground_truth import ScanTraceExtractor
from repro.eval.report import format_table
from repro.workload.scans import generate_scan_mix

import conftest


def test_plan_choice_regret(benchmark, synthetic_dataset_factory):
    dataset = synthetic_dataset_factory(theta=0.0, window=0.5)
    index = dataset.index
    table_pages = index.table.page_count
    extractor = ScanTraceExtractor(index)
    estimators = paper_estimators(index)
    scans = generate_scan_mix(
        index, count=SCAN_COUNT, rng=random.Random(4)
    )
    grid = evaluation_buffer_grid(
        table_pages, floor=conftest.SYNTH_BUFFER_FLOOR
    )
    buffer_pages = list(grid)[len(grid) // 2]

    def sweep():
        actual_index_cost = [
            extractor.actual_fetches(scan, [buffer_pages])[buffer_pages]
            for scan in scans
        ]
        optimal = sum(
            min(table_pages, cost) for cost in actual_index_cost
        )
        regret = {}
        wrong = {}
        for estimator in estimators:
            total = 0
            mistakes = 0
            for scan, index_cost in zip(scans, actual_index_cost):
                predicted = estimator.estimate(
                    scan.selectivity(), buffer_pages
                )
                chosen_cost = (
                    index_cost if predicted <= table_pages else table_pages
                )
                total += chosen_cost
                if chosen_cost > min(index_cost, table_pages):
                    mistakes += 1
            regret[estimator.name] = (total - optimal) / optimal
            wrong[estimator.name] = mistakes
        return regret, wrong

    regret, wrong = run_once(benchmark, sweep)

    rendered = format_table(
        ["estimator", "regret %", "wrong choices", "scans"],
        [
            (name, f"{100 * regret[name]:.2f}", wrong[name], SCAN_COUNT)
            for name in sorted(regret)
        ],
        title=(
            "Plan-quality: extra actual pages fetched when each estimator "
            f"drives table-vs-index choice (B = {buffer_pages})"
        ),
    )
    write_result("optimizer_plan_quality", rendered)

    # Finding (recorded in the results file): near the table-scan
    # break-even point, plan quality is driven by the *sign* of the error,
    # not its magnitude — EPFIS's small-sigma correction deliberately
    # overestimates borderline scans, costing it a few table-scan
    # mischoices even though its error metric is far lower.  The robust
    # claims: EPFIS regret stays modest, and it is never the worst chooser.
    assert regret["EPFIS"] <= 0.25, regret
    assert regret["EPFIS"] < max(regret.values()), regret
