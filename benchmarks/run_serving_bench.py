#!/usr/bin/env python
"""Run the serving-tier benchmark and write BENCH_serving.json.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/run_serving_bench.py            # full run
    PYTHONPATH=src python benchmarks/run_serving_bench.py --smoke    # CI gate

The full run provisions tenant namespaces with fitted catalogs at
production breadth, replays one seeded request stream three ways —
one-call-per-request baseline at 8 clients (batching off), micro-
batched closed loop at the same 8 clients, open loop above capacity
with a small admission queue — and records p50/p99 latency, sustained
QPS, the batch-size histogram, and the truthful shed counts.  The
closed-loop modes run several interleaved repetitions and the speedup
gate compares medians.  Acceptance: batched throughput >= 2x the
one-call baseline (full runs), zero batched-vs-serial mismatches and
exact request accounting (every run), closed-loop p99 under the smoke
bound.  See src/repro/perf/serving.py.

``--smoke`` shrinks tenants and request count to a seconds-long
structural check — the mode the CI serving stage runs, which still
enforces the identity, accounting, and p99 gates.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.perf.serving import (  # noqa: E402 (path bootstrap above)
    BENCH_CLIENTS,
    run_serving_benchmark,
)


def main(argv=None) -> int:
    """Parse arguments, run the benchmark, print a summary."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_serving.json",
                        help="output JSON path (default: repo root)")
    parser.add_argument("--tenant-root", type=Path, default=None,
                        help="provision namespaces here instead of a "
                             "temporary directory")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--clients", type=int, default=BENCH_CLIENTS,
                        help="closed-loop client threads "
                             f"(default {BENCH_CLIENTS})")
    parser.add_argument("--repeats", type=int, default=None,
                        help="closed-loop repetitions per mode "
                             "(default: 5 full, 2 smoke)")
    parser.add_argument("--smoke", action="store_true",
                        help="small tenants and stream "
                             "(the CI structural check)")
    args = parser.parse_args(argv)

    document = run_serving_benchmark(
        out_path=args.out,
        tenant_root=args.tenant_root,
        seed=args.seed,
        clients=args.clients,
        repeats=args.repeats,
        smoke=args.smoke,
    )
    serial = document["serial"]
    unbatched = document["unbatched"]
    closed = document["closed_loop"]
    open_loop = document["open_loop"]
    identity = document["identity"]
    criteria = document["criteria"]
    print(
        f"serial engine reference: {serial['qps']:8.0f} qps "
        f"(p50 {serial['p50_ms']:.2f} ms, p99 {serial['p99_ms']:.2f} ms)"
    )
    print(
        f"one-call baseline ({criteria['clients']} clients): "
        f"{unbatched['sustained_qps']:8.0f} qps median of "
        f"{[round(q) for q in document['unbatched_qps_reps']]} "
        f"(p50 {unbatched['latency_ms']['p50']:.2f} ms, "
        f"p99 {unbatched['latency_ms']['p99']:.2f} ms)"
    )
    print(
        f"closed loop ({criteria['clients']} clients): "
        f"{closed['sustained_qps']:8.0f} qps median of "
        f"{[round(q) for q in document['closed_loop_qps_reps']]} "
        f"(p50 {closed['latency_ms']['p50']:.2f} ms, "
        f"p99 {closed['latency_ms']['p99']:.2f} ms, "
        f"mean batch {closed['server']['mean_batch_size']:.2f})"
    )
    print(
        f"open loop (target {open_loop['target_qps']:.0f} qps): "
        f"{open_loop['sustained_qps']:8.0f} qps sustained, "
        f"{open_loop['rejected']} shed, "
        f"accounted={open_loop['accounted']}"
    )
    print(
        f"identity: {identity['compared']} compared, "
        f"{identity['mismatches']} mismatches"
    )
    print(
        f"criteria passed: {criteria['passed']} "
        f"(speedup {criteria['speedup']}x, min {criteria['min_speedup']}x"
        f"{' [smoke: reported only]' if document['smoke'] else ''}; "
        f"p99 {criteria['p99_ms']} ms <= "
        f"{criteria['smoke_p99_bound_ms']} ms)  -> {args.out}"
    )
    return 0 if criteria["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
