#!/usr/bin/env python
"""Run the core kernel benchmark and write BENCH_core.json.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/run_core_bench.py            # full run
    PYTHONPATH=src python benchmarks/run_core_bench.py --smoke    # structure only

The full run takes a couple of minutes (five repeats of every kernel over
two 50,000-reference traces) and records the acceptance criteria: compact
>= 3x over baseline, sampled >= 10x within its documented 5% band error.
``--smoke`` shrinks everything for a sub-second structural check — the same
mode the tier-1 test suite exercises.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.perf.harness import (  # noqa: E402 (path bootstrap above)
    DEFAULT_PAGES,
    DEFAULT_TRACE_LENGTH,
    run_core_benchmark,
)


def main(argv=None) -> int:
    """Parse arguments, run the benchmark, print a one-line summary."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_core.json",
                        help="output JSON path (default: repo root)")
    parser.add_argument("--trace-length", type=int,
                        default=DEFAULT_TRACE_LENGTH)
    parser.add_argument("--pages", type=int, default=DEFAULT_PAGES)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny traces, one repeat (structural check)")
    args = parser.parse_args(argv)

    document = run_core_benchmark(
        out_path=args.out,
        trace_length=args.trace_length,
        pages=args.pages,
        repeats=args.repeats,
        smoke=args.smoke,
    )
    criteria = document["criteria"]
    kernels = document["traces"]["uniform"]["kernels"]
    for name, row in kernels.items():
        print(
            f"{name:9s} {row['median_ms']:9.2f} ms  "
            f"{row['speedup_vs_baseline']:6.2f}x  "
            f"err {row['max_rel_error_pct']:6.2f}%  "
            f"{'ok' if row['agrees_with_baseline'] else 'MISMATCH'}"
        )
    instrumentation = document.get("instrumentation")
    if instrumentation is not None:
        print(
            f"instrumentation overhead: "
            f"{instrumentation['overhead_pct']:+.2f}% "
            f"(bound {instrumentation['bound_pct']:.0f}%)  "
            f"{'ok' if instrumentation['ok'] else 'OVER BUDGET'}"
        )
    print(f"criteria passed: {criteria.get('passed')}  -> {args.out}")
    # The instrumentation bound is enforced even in smoke runs: the
    # overhead measurement uses its own fixed trace and stays meaningful
    # at smoke scale, unlike the kernel speedup criteria.
    if instrumentation is not None and not instrumentation["ok"]:
        return 1
    return 0 if criteria.get("passed") or args.smoke else 1


if __name__ == "__main__":
    sys.exit(main())
