"""Future work (Section 6): intra-query and multi-user buffer contention.

The paper's model gives each scan a dedicated LRU pool; real pools are
shared.  This bench quantifies the gap and evaluates the simplest
correction available to an optimizer — cost each of k concurrent scans at
B/k dedicated pages (``equal_share_estimate``):

* destructive contention: k disjoint scans share one pool; per-scan
  fetches exceed the dedicated-pool prediction, increasingly so with k,
* the equal-share heuristic recovers most of the gap,
* constructive sharing: concurrent scans of the *same* table can fetch
  fewer pages in total than dedicated pools would.
"""

import random

from conftest import run_once, write_result

from repro.datagen.synthetic import SyntheticSpec, build_synthetic_dataset
from repro.estimators.epfis import EPFISEstimator
from repro.eval.report import format_table
from repro.types import ScanSelectivity
from repro.workload.interleave import (
    equal_share_estimate,
    simulate_contention,
    simulate_shared_table_contention,
)

CONCURRENCY = (1, 2, 4)


def test_contention_overhead_and_correction(benchmark):
    # k disjoint "tables": independent datasets with identical shape.
    datasets = [
        build_synthetic_dataset(
            SyntheticSpec(
                records=20_000,
                distinct_values=200,
                records_per_page=40,
                window=0.5,
                seed=100 + i,
            )
        )
        for i in range(max(CONCURRENCY))
    ]
    pages = datasets[0].table.page_count
    buffer_pages = pages // 2
    sigma = 0.4
    estimators = [EPFISEstimator.from_index(d.index) for d in datasets]

    def scan_trace(dataset):
        keys = dataset.index.sorted_keys()
        start = keys[len(keys) // 4]
        stop = keys[len(keys) // 4 + int(sigma * len(keys)) - 1]
        from repro.storage.btree import KeyBound

        return dataset.index.page_sequence(
            KeyBound(start, True), KeyBound(stop, True)
        )

    def sweep():
        rows = []
        for k in CONCURRENCY:
            traces = [scan_trace(d) for d in datasets[:k]]
            shared = simulate_contention(
                traces, buffer_pages, schedule="round-robin"
            )
            naive_estimate = sum(
                est.estimate(ScanSelectivity(sigma), buffer_pages)
                for est in estimators[:k]
            )
            corrected = equal_share_estimate(
                estimators[0],
                [ScanSelectivity(sigma)] * k,
                buffer_pages,
            )
            rows.append(
                (
                    k,
                    shared.total_dedicated,
                    shared.total_fetches,
                    f"{100 * shared.contention_overhead:+.1f}%",
                    f"{naive_estimate:.0f}",
                    f"{corrected:.0f}",
                )
            )
        same_table = simulate_shared_table_contention(
            [scan_trace(datasets[0])] * 2, buffer_pages
        )
        return rows, same_table

    rows, same_table = run_once(benchmark, sweep)

    rendered = format_table(
        ["k scans", "dedicated F", "shared F", "overhead",
         "naive estimate", "B/k estimate"],
        rows,
        title=(
            f"Future work: disjoint scans sharing one LRU pool "
            f"(B = {buffer_pages} = T/2, sigma = {sigma})"
        ),
    )
    rendered += (
        "\n\nConstructive sharing (2 identical scans, same table): "
        f"dedicated {same_table.total_dedicated} fetches, shared "
        f"{same_table.total_fetches}."
    )
    write_result("futurework_contention", rendered)

    # Destructive contention grows with k...
    overheads = [
        (shared - dedicated) / dedicated
        for _k, dedicated, shared, *_ in rows
    ]
    assert overheads[0] == 0.0
    assert overheads[-1] > overheads[0]
    # ...and same-table sharing is constructive (never worse, here better).
    assert same_table.total_fetches < same_table.total_dedicated


