"""Ablation (beyond the paper): how LRU-specific is the FPF curve?

The paper models LRU because "most relational database systems" use it.
Many real systems actually run CLOCK (an LRU approximation) or FIFO.  This
bench compares exact full-scan fetch counts under the three policies across
the buffer grid: CLOCK should track LRU closely (validating the paper's
model for CLOCK-based systems), while FIFO can deviate more.
"""

from conftest import SYNTH_BUFFER_FLOOR, run_once, write_result

from repro.buffer.pool import simulate_fetches
from repro.eval.buffer_grid import evaluation_buffer_grid
from repro.eval.report import format_table

POLICIES = ("lru", "clock", "fifo")


def test_replacement_policy_fpf(benchmark, synthetic_dataset_factory):
    dataset = synthetic_dataset_factory(theta=0.0, window=0.2)
    index = dataset.index
    trace = index.page_sequence()
    grid = evaluation_buffer_grid(
        index.table.page_count, floor=SYNTH_BUFFER_FLOOR
    )

    def sweep():
        return {
            policy: [simulate_fetches(trace, b, policy) for b in grid]
            for policy in POLICIES
        }

    fetches = run_once(benchmark, sweep)

    rows = []
    max_clock_dev = 0.0
    for i, b in enumerate(grid):
        lru = fetches["lru"][i]
        clock = fetches["clock"][i]
        fifo = fetches["fifo"][i]
        max_clock_dev = max(max_clock_dev, abs(clock - lru) / lru)
        rows.append(
            (
                b,
                lru,
                clock,
                fifo,
                f"{100 * (clock - lru) / lru:+.1f}%",
                f"{100 * (fifo - lru) / lru:+.1f}%",
            )
        )
    rendered = format_table(
        ["B", "LRU", "CLOCK", "FIFO", "CLOCK vs LRU", "FIFO vs LRU"],
        rows,
        title="Ablation: full-scan fetches under LRU / CLOCK / FIFO",
    )
    write_result("ablation_replacement", rendered)

    # CLOCK approximates LRU well across the grid (worst deviation lands
    # near the curve knee and stays bounded), and everywhere tracks LRU
    # more closely than FIFO does: the paper's LRU model transfers to
    # CLOCK-managed pools.
    assert max_clock_dev < 0.25, max_clock_dev
    # In aggregate over the grid, CLOCK is a far better LRU proxy than
    # FIFO (pointwise comparisons can flip near the fully-cached tail,
    # where both deviations are tiny in absolute terms).
    clock_total = sum(
        abs(c - l) for c, l in zip(fetches["clock"], fetches["lru"])
    )
    fifo_total = sum(
        abs(f - l) for f, l in zip(fetches["fifo"], fetches["lru"])
    )
    assert clock_total < fifo_total, (clock_total, fifo_total)
    # No policy beats having the whole table resident.
    for policy in POLICIES:
        assert fetches[policy][-1] >= index.table.page_count
