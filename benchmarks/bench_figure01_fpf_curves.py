"""Figure 1: FPF curves for five GWL columns.

Paper exhibit: the number of page fetches F (in multiples of T) for a full
index scan as a function of buffer size B (as a fraction of T), for columns
CMAC.BRAN, CMAC.CEDT, INAP.APLD, INAP.MALD, INAP.UWID.

Expected shape: every curve decreases monotonically to F/T = 1; columns
with lower clustering factor C sit higher (more refetching) at small B.
"""

from conftest import run_once, write_result

from repro.datagen.gwl import FIGURE1_COLUMNS
from repro.eval.figures import figure1_fpf_curves
from repro.eval.report import ascii_chart, format_table


def test_figure01_fpf_curves(benchmark, gwl_db):
    series = run_once(benchmark, lambda: figure1_fpf_curves(gwl_db))

    chart = ascii_chart(
        {s.column: list(s.points) for s in series},
        width=70,
        height=22,
        title="Figure 1: FPF curves (X = B/T, Y = F/T)",
        x_label="B as fraction of T",
        y_label="F in multiples of T",
    )
    rows = []
    for s in series:
        c = gwl_db.column(s.column)
        rows.append(
            (
                s.column,
                s.table_pages,
                f"{s.points[0][1]:.2f}",
                f"{s.points[len(s.points) // 2][1]:.2f}",
                f"{s.points[-1][1]:.2f}",
                f"{100 * c.measured_c:.1f}%",
            )
        )
    table = format_table(
        ["column", "T", "F/T @2%T", "F/T @50%T", "F/T @100%T", "C"],
        rows,
        title="Figure 1 summary points",
    )
    write_result("figure01_fpf_curves", chart + "\n\n" + table)

    # Shape assertions: monotone decreasing, terminal value 1.
    for s in series:
        ys = [y for _x, y in s.points]
        assert all(a >= b - 1e-9 for a, b in zip(ys, ys[1:])), s.column
        assert abs(ys[-1] - 1.0) < 0.02, s.column
    assert {s.column for s in series} == set(FIGURE1_COLUMNS)

    # Ordering by clustering: the least clustered of the five (CMAC.BRAN)
    # must fetch more than the most clustered (CAGD-level columns are not
    # in this figure; INAP.UWID at C=90.8% is) at small buffer sizes.
    by_name = {s.column: s for s in series}
    assert by_name["CMAC.BRAN"].points[1][1] > by_name["INAP.UWID"].points[1][1]
