"""Future work (Section 6): RID-list operations, index ANDing and ORing.

The paper's plans fetch data pages *during* the index scan; a RID-list plan
first collects qualifying RIDs (possibly from several indexes), sorts them
by page, and then fetches each page exactly once.  This bench builds a
two-index table and measures:

* actual fetches of the LRU scan plan vs the sorted-RID plan across buffer
  sizes (the RID plan is flat; the scan plan depends on B — the crossover
  is the optimizer-relevant result),
* accuracy of the Yao-based :class:`SortedRIDEstimator` for single-index,
  ANDed, and ORed RID lists.
"""

import random

from conftest import run_once, write_result

from repro.access.ridlist import (
    SortedRIDEstimator,
    and_rid_lists,
    fetch_pages_sorted,
    or_rid_lists,
    rid_list_for_range,
)
from repro.buffer.stack import FetchCurve
from repro.estimators.epfis import EPFISEstimator
from repro.eval.report import format_table
from repro.storage.index import Index
from repro.storage.table import Table
from repro.types import ScanSelectivity
from repro.workload.predicates import KeyRange


def _build_two_index_table(records=40_000, rpp=40, seed=5):
    rng = random.Random(seed)
    table = Table("orders", ("a", "b"), records_per_page=rpp)
    index_a = Index("orders.a", table, "a")
    index_b = Index("orders.b", table, "b")
    a_values = [i % 400 for i in range(records)]
    b_values = [i % 250 for i in range(records)]
    rng.shuffle(a_values)
    rng.shuffle(b_values)
    for a, b in zip(a_values, b_values):
        rid = table.insert((a, b))
        index_a.add(a, rid)
        index_b.add(b, rid)
    return table, index_a, index_b


def test_ridlist_plans(benchmark):
    table, index_a, index_b = _build_two_index_table()
    range_a = KeyRange.between(0, 79)    # 20% of a's values
    range_b = KeyRange.between(0, 49)    # 20% of b's values

    def sweep():
        list_a = rid_list_for_range(index_a, range_a)
        list_b = rid_list_for_range(index_b, range_b)
        anded = and_rid_lists(list_a, list_b)
        orred = or_rid_lists(list_a, list_b)

        # Scan plan vs RID plan across buffer sizes (index a only).
        scan_trace = index_a.page_sequence(*range_a.bounds())
        scan_curve = FetchCurve.from_trace(scan_trace)
        rid_fetches = fetch_pages_sorted(list_a)
        pages = table.page_count
        plan_rows = []
        for fraction in (0.05, 0.1, 0.25, 0.5, 0.9):
            b = max(1, round(fraction * pages))
            plan_rows.append(
                (b, scan_curve.fetches(b), rid_fetches)
            )

        # Estimator accuracy for single / AND / OR lists.
        estimator = SortedRIDEstimator.from_index(index_a)
        sigma_a = len(list_a) / table.record_count
        sigma_b = len(list_b) / table.record_count
        accuracy_rows = [
            (
                "single(a)",
                fetch_pages_sorted(list_a),
                f"{estimator.estimate(ScanSelectivity(sigma_a), 1):.0f}",
            ),
            (
                "a AND b",
                fetch_pages_sorted(anded),
                f"{estimator.estimate_and([sigma_a, sigma_b]):.0f}",
            ),
            (
                "a OR b",
                fetch_pages_sorted(orred),
                f"{estimator.estimate_or([sigma_a, sigma_b]):.0f}",
            ),
        ]
        return plan_rows, accuracy_rows

    plan_rows, accuracy_rows = run_once(benchmark, sweep)

    rendered = format_table(
        ["B", "LRU scan plan F", "sorted-RID plan F"],
        plan_rows,
        title="Future work: index scan vs RID-list sort plan (20% scan)",
    )
    rendered += "\n\n" + format_table(
        ["RID list", "actual distinct pages", "Yao estimate"],
        accuracy_rows,
        title="Sorted-RID estimator accuracy",
    )
    write_result("futurework_ridlist", rendered)

    # The RID plan is buffer-independent and never worse than the scan
    # plan's small-buffer cost.
    rid_fetches = plan_rows[0][2]
    assert all(r[2] == rid_fetches for r in plan_rows)
    assert rid_fetches <= plan_rows[0][1]
    # Yao tracks the actuals within 10% on this uniform data.
    for _name, actual, predicted in accuracy_rows:
        assert abs(float(predicted) - actual) <= 0.10 * actual, (
            _name, actual, predicted,
        )
