"""Ablation (Section 4.1 claim): estimation error vs segment count.

"The experiments show that the estimation errors do not change very much
when the number of line segments is greater than five.  Hence, we use six
line segments to approximate the FPF curves."

This bench sweeps the segment budget 1..10 and reports the worst EPFIS
error per budget on a moderately clustered synthetic dataset, asserting the
paper's claim: improvements flatten beyond ~5 segments.
"""

import random

from conftest import (
    SCAN_COUNT,
    SYNTH_BUFFER_FLOOR,
    run_once,
    write_result,
)

from repro.estimators.epfis import EPFISEstimator, LRUFitConfig
from repro.eval.buffer_grid import evaluation_buffer_grid
from repro.eval.experiment import run_error_behavior
from repro.eval.report import format_table
from repro.workload.scans import generate_scan_mix

SEGMENT_BUDGETS = (1, 2, 3, 4, 5, 6, 8, 10)


def test_segment_count_sensitivity(benchmark, synthetic_dataset_factory):
    dataset = synthetic_dataset_factory(theta=0.0, window=0.1)
    index = dataset.index
    grid = evaluation_buffer_grid(
        index.table.page_count, floor=SYNTH_BUFFER_FLOOR
    )
    scans = generate_scan_mix(index, count=SCAN_COUNT, rng=random.Random(1))

    def sweep():
        worst = {}
        for segments in SEGMENT_BUDGETS:
            estimator = EPFISEstimator.from_index(
                index, LRUFitConfig(segments=segments)
            )
            result = run_error_behavior(index, [estimator], scans, grid)
            worst[segments] = 100.0 * result.curves[0].max_abs_error()
        return worst

    worst = run_once(benchmark, sweep)

    rendered = format_table(
        ["segments", "max |error| %"],
        [(s, f"{worst[s]:.1f}") for s in SEGMENT_BUDGETS],
        title="Ablation: EPFIS error vs number of line segments",
    )
    write_result("ablation_segments", rendered)

    # The paper's claim: beyond five segments the error stops improving
    # much.  Compare the best coarse fit (<=2 segments) against 6, and 6
    # against 10: big gain first, marginal gain after.
    assert worst[6] <= worst[1] + 1e-9
    assert abs(worst[6] - worst[10]) <= max(5.0, 0.3 * worst[6])
    # Six segments keeps EPFIS within its paper band.
    assert worst[6] <= 48.0
