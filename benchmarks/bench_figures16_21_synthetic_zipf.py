"""Figures 16-21: synthetic error behaviour, 80-20 skew (theta = 0.86).

Paper exhibits: same K grid as Figures 10-15 but with the generalized Zipf
(80-20) duplicate distribution.  Also regenerates the Section 5.2 summary
(paper maxima: EPFIS 48%, SD 97.6%, OT 2453.1%, DC 1994.8%, ML 94.9%)
across both synthetic figure groups.
"""

import pytest
from bench_figures10_15_synthetic_uniform import (
    RESULTS as UNIFORM_RESULTS,
    render_synthetic_figure,
    run_synthetic_figure,
)
import conftest
from conftest import run_once, write_result, write_result_json

from repro.eval.figures import SYNTHETIC_FIGURES, max_error_summary
from repro.eval.report import format_table

THETA = 0.86
FIGURES = {
    fig: params
    for fig, params in SYNTHETIC_FIGURES.items()
    if params[0] == THETA
}

RESULTS = {}


@pytest.mark.parametrize("figure,params", sorted(FIGURES.items()))
def test_synthetic_zipf_figure(
    benchmark, synthetic_dataset_factory, figure, params
):
    theta, window = params
    result = run_once(
        benchmark,
        lambda: run_synthetic_figure(synthetic_dataset_factory, theta, window),
    )
    RESULTS[figure] = result
    write_result(
        f"figure{figure:02d}_synthetic_theta{theta}_K{window}",
        render_synthetic_figure(figure, result),
    )
    write_result_json(
        f"figure{figure:02d}_synthetic_theta{theta}_K{window}", result
    )

    worst = result.max_abs_errors()
    assert worst["EPFIS"] <= min(worst.values()) + 1e-9, worst
    assert worst["EPFIS"] <= conftest.EPFIS_SYNTH_BAND, worst


def test_synthetic_max_error_summary(benchmark, synthetic_dataset_factory):
    """The Section 5.2 summary across all available synthetic figures."""
    results = dict(UNIFORM_RESULTS)
    results.update(RESULTS)
    if not results:  # -k selection ran only this test: compute one group
        for figure, (theta, window) in sorted(FIGURES.items()):
            results[figure] = run_synthetic_figure(
                synthetic_dataset_factory, theta, window
            )
    summary = run_once(
        benchmark, lambda: max_error_summary(list(results.values()))
    )
    paper = {"EPFIS": 48.0, "SD": 97.6, "OT": 2453.1, "DC": 1994.8,
             "ML": 94.9}
    rendered = format_table(
        ["algorithm", "max |error| % (repro)", "max |error| % (paper)"],
        [
            (name, f"{summary[name]:.1f}", paper[name])
            for name in ("EPFIS", "ML", "DC", "SD", "OT")
        ],
        title="Section 5.2: worst-case errors across Figures 10-21",
    )
    write_result("section5_2_synthetic_max_errors", rendered)

    assert summary["EPFIS"] <= conftest.EPFIS_SYNTH_BAND
    assert summary["EPFIS"] <= min(summary.values())
    assert max(summary["OT"], summary["DC"]) > 100.0
