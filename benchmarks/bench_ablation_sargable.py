"""Ablation (Section 4.2): the urn-model sargable-predicate correction.

The paper proposes F = (1 - (1 - 1/Q)^k) * (corrected estimate) for
index-sargable predicates but never evaluates S < 1 experimentally.  This
bench does: small scans with aggressive predicates (where k is small and
the urn factor bites) with the correction on vs off.
"""

import dataclasses
import random

from conftest import (
    SCAN_COUNT,
    SYNTH_BUFFER_FLOOR,
    run_once,
    write_result,
)

from repro.estimators.epfis import EPFISEstimator, LRUFit
from repro.eval.buffer_grid import evaluation_buffer_grid
from repro.eval.experiment import run_error_behavior
from repro.eval.report import format_table
from repro.workload.predicates import HashSamplePredicate
from repro.workload.scans import generate_scan_mix

SELECTIVITIES = (0.05, 0.25, 1.0)


def test_sargable_urn_model(benchmark, synthetic_dataset_factory):
    dataset = synthetic_dataset_factory(theta=0.0, window=0.5)
    index = dataset.index
    stats = LRUFit().run(index)
    grid = evaluation_buffer_grid(
        index.table.page_count, floor=SYNTH_BUFFER_FLOOR
    )

    def sweep():
        table = {}
        for s in SELECTIVITIES:
            predicate = None if s == 1.0 else HashSamplePredicate(s, seed=3)
            scans = [
                dataclasses.replace(scan, sargable=predicate)
                for scan in generate_scan_mix(
                    index, count=SCAN_COUNT, small_probability=1.0,
                    rng=random.Random(1),
                )
            ]
            for label, options in (
                ("urn on", dict(apply_sargable=True)),
                ("urn off", dict(apply_sargable=False)),
            ):
                estimator = EPFISEstimator.from_statistics(stats, **options)
                result = run_error_behavior(index, [estimator], scans, grid)
                table[(s, label)] = 100.0 * result.curves[0].max_abs_error()
        return table

    table = run_once(benchmark, sweep)

    rendered = format_table(
        ["S", "urn correction", "max |error| % (small scans)"],
        [
            (s, label, f"{value:.1f}")
            for (s, label), value in sorted(table.items())
        ],
        title="Ablation: sargable-predicate urn model on/off",
    )
    write_result("ablation_sargable", rendered)

    # With S = 1 the correction is a no-op.
    assert table[(1.0, "urn on")] == table[(1.0, "urn off")]
    # With moderate filtering the urn model must improve the estimates.
    assert table[(0.25, "urn on")] < table[(0.25, "urn off")]
    # With very aggressive filtering the estimate is dominated by the
    # fetches <= qualifying-records clamp, so the urn model can at best
    # tie — but it must never hurt.
    assert table[(0.05, "urn on")] <= table[(0.05, "urn off")] + 1e-9
