"""Ablation (our extension): the smooth correction ramp vs the paper's gate.

Motivated by the scatter-diagnostics finding: EPFIS's per-scan variance
comes largely from the nu indicator switching at phi = 3*sigma.  This bench
compares the paper's Est-IO against :class:`SmoothEPFISEstimator` (same
statistics, same Cardenas term, only the gate replaced by a continuous
ramp) on three clustering regimes, reporting both the aggregate worst
error and the per-scan scatter spread.

Expected: the smooth variant narrows the per-scan spread without giving up
the aggregate-metric accuracy that makes EPFIS dominate.
"""

import random

from conftest import (
    SCAN_COUNT,
    SYNTH_BUFFER_FLOOR,
    run_once,
    write_result,
)

from repro.estimators.epfis import EPFISEstimator, LRUFit
from repro.estimators.epfis_smooth import SmoothEPFISEstimator
from repro.eval.buffer_grid import evaluation_buffer_grid
from repro.eval.experiment import run_error_behavior
from repro.eval.ground_truth import ScanTraceExtractor
from repro.eval.report import format_table
from repro.eval.scatter import summarize_scatter
from repro.workload.scans import generate_scan_mix

WINDOWS = (0.1, 0.5, 1.0)


def test_smooth_correction(benchmark, synthetic_dataset_factory):
    def sweep():
        rows = []
        for window in WINDOWS:
            dataset = synthetic_dataset_factory(0.0, window)
            index = dataset.index
            stats = LRUFit().run(index)
            paper = EPFISEstimator.from_statistics(stats)
            smooth = SmoothEPFISEstimator.from_statistics(stats)
            grid = evaluation_buffer_grid(
                index.table.page_count, floor=SYNTH_BUFFER_FLOOR
            )
            scans = generate_scan_mix(
                index, count=SCAN_COUNT, rng=random.Random(1)
            )

            result = run_error_behavior(
                index, [paper, smooth], scans, grid
            )
            worst = {
                c.estimator: 100.0 * c.max_abs_error()
                for c in result.curves
            }

            extractor = ScanTraceExtractor(index)
            buffer_pages = list(grid)[len(grid) // 2]
            actuals = [
                extractor.actual_fetches(s, [buffer_pages])[buffer_pages]
                for s in scans
            ]
            spreads = {}
            for estimator in (paper, smooth):
                estimates = [
                    estimator.estimate(s.selectivity(), buffer_pages)
                    for s in scans
                ]
                summary = summarize_scatter(estimates, actuals)
                spreads[estimator.name] = summary.p90 - summary.p10
            rows.append(
                (
                    window,
                    f"{worst['EPFIS']:.1f}",
                    f"{worst['EPFIS-smooth']:.1f}",
                    f"{spreads['EPFIS']:.2f}",
                    f"{spreads['EPFIS-smooth']:.2f}",
                )
            )
        return rows

    rows = run_once(benchmark, sweep)

    rendered = format_table(
        ["K", "paper worst %", "smooth worst %",
         "paper p90-p10", "smooth p90-p10"],
        rows,
        title="Ablation: the paper's nu gate vs a smooth correction ramp",
    )
    write_result("ablation_smooth_correction", rendered)

    for _window, paper_worst, smooth_worst, paper_spread, smooth_spread in rows:
        # The smooth variant never gives up much aggregate accuracy...
        assert float(smooth_worst) <= float(paper_worst) * 1.3 + 5.0, rows
        # ...and never widens the per-scan spread.
        assert float(smooth_spread) <= float(paper_spread) + 0.05, rows
