"""Table 2: GWL table shapes (pages, records/page).

Paper exhibit: CMAC 774x20, CAGD 1093x104, INAP 1945x76, PLON 4857x123.
The bench reports the built (scaled) shapes next to the paper's, asserting
the records/page is exact and the page count matches the scale factor.
"""

from conftest import GWL_SCALE, run_once, write_result

from repro.datagen.gwl import GWL_TABLES
from repro.eval.figures import table2_rows
from repro.eval.report import format_table


def test_table02_gwl_tables(benchmark, gwl_db):
    rows = run_once(benchmark, lambda: table2_rows(gwl_db))

    rendered = format_table(
        ["table", "pages (built)", "records/page (built)",
         "pages (paper)", "records/page (paper)"],
        [
            (
                name,
                pages,
                rpp,
                GWL_TABLES[name].pages,
                GWL_TABLES[name].records_per_page,
            )
            for name, pages, rpp in rows
        ],
        title=f"Table 2 (scale = {GWL_SCALE})",
    )
    write_result("table02_gwl_tables", rendered)

    assert len(rows) == 4
    for name, pages, rpp in rows:
        spec = GWL_TABLES[name]
        assert rpp == spec.records_per_page
        assert pages == max(4, round(spec.pages * GWL_SCALE))
