"""Mechanism check: why the FPF curve bends where it does.

The paper treats the FPF curve as an empirical artifact to be fitted; this
bench verifies the *mechanism* connecting the generator to the curve: the
window placer concentrates LRU reuse depths near the window size (in
pages), so the curve's knee — the buffer size where fetches collapse
toward the compulsory floor — must track ceil(K*T).  This is both a
validation of the data generator and an explanation of the fitted knots'
positions.
"""

from conftest import run_once, write_result

from repro.buffer.stack import FetchCurve
from repro.datagen.synthetic import SyntheticSpec, build_synthetic_dataset
from repro.eval.report import format_table
from repro.trace.locality import summarize_locality

WINDOWS = (0.05, 0.1, 0.2, 0.4)
RECORDS = 20_000


def test_window_sets_reuse_depth_and_knee(benchmark):
    def sweep():
        rows = []
        for window in WINDOWS:
            dataset = build_synthetic_dataset(
                SyntheticSpec(
                    records=RECORDS,
                    distinct_values=RECORDS // 100,
                    records_per_page=40,
                    window=window,
                    noise=0.0,
                    seed=31,
                )
            )
            trace = dataset.index.page_sequence()
            pages = dataset.table.page_count
            window_pages = max(1, round(window * pages))
            summary = summarize_locality(trace)
            curve = FetchCurve.from_trace(trace)
            # The knee: smallest B whose fetch count is within 10% of the
            # compulsory floor.
            floor = curve.distinct_pages
            knee = curve.min_buffer_for(int(1.1 * floor))
            rows.append(
                (
                    window,
                    window_pages,
                    summary.median_reuse_depth,
                    summary.depth_p90,
                    knee,
                )
            )
        return rows

    rows = run_once(benchmark, sweep)

    rendered = format_table(
        ["K", "window pages", "reuse depth p50", "reuse depth p90",
         "FPF knee (B @ 1.1x floor)"],
        rows,
        title="Mechanism: window size -> reuse depth -> FPF knee",
    )
    write_result("locality_mechanism", rendered)

    for window, window_pages, _p50, p90, knee in rows:
        # Reuse depth concentrates at or below ~2x the window size...
        assert p90 <= 2.5 * window_pages, rows
        # ...and the knee lands in the same neighbourhood.
        assert 0.3 * window_pages <= knee <= 3.0 * window_pages, rows
    # Both reuse depth and knee grow with K.
    knees = [r[4] for r in rows]
    assert knees == sorted(knees), rows
