"""Table 3: GWL column cardinalities and clustering factors.

Paper exhibit: eight columns with cardinalities from 60 (INAP.UWID) to
437,654 (PLON.CLID) and clustering factors C from 23.6% to 99.6%.  The
simulated database is calibrated so its *measured* C (computed exactly as
LRU-Fit computes it) matches the paper's; this bench is the verification.
"""

from conftest import GWL_SCALE, run_once, write_result

from repro.datagen.gwl import GWL_COLUMNS
from repro.eval.figures import table3_rows
from repro.eval.report import format_table


def test_table03_gwl_columns(benchmark, gwl_db):
    rows = run_once(benchmark, lambda: table3_rows(gwl_db))

    rendered = format_table(
        ["column", "card (built)", "card (paper)", "C built (%)",
         "C paper (%)", "|dC| (pp)"],
        [
            (
                name,
                card,
                GWL_COLUMNS[name].cardinality,
                f"{measured:.1f}",
                f"{target:.1f}",
                f"{abs(measured - target):.1f}",
            )
            for name, card, measured, target in rows
        ],
        title=f"Table 3 (scale = {GWL_SCALE})",
    )
    write_result("table03_gwl_columns", rendered)

    assert len(rows) == 8
    for name, _card, measured, target in rows:
        assert abs(measured - target) <= 6.0, (
            f"{name}: measured C {measured:.1f}% vs paper {target:.1f}%"
        )
