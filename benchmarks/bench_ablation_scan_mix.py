"""Ablation (Section 5 claim): behaviour under different scan mixes.

"We ran experiments involving only small scans, only large scans, and only
full scans. ... In all these experiments, the results were very similar.
A general trend was that the algorithms other than Algorithm EPFIS
performed worse as the scan size was made larger."
"""

import random

from conftest import (
    SCAN_COUNT,
    SYNTH_BUFFER_FLOOR,
    run_once,
    write_result,
)

from repro.eval.buffer_grid import evaluation_buffer_grid
from repro.eval.experiment import run_error_behavior
from repro.eval.figures import paper_estimators
from repro.eval.report import format_table
from repro.workload.scans import generate_scan_mix

MIXES = {
    "small-only": dict(small_probability=1.0, large_probability=0.0),
    "mixed-50-50": dict(small_probability=0.5, large_probability=0.5),
    "large-only": dict(small_probability=0.0, large_probability=1.0),
    "full-only": dict(small_probability=0.0, large_probability=0.0),
}


def test_scan_mix_trend(benchmark, synthetic_dataset_factory):
    dataset = synthetic_dataset_factory(theta=0.0, window=0.5)
    index = dataset.index
    grid = evaluation_buffer_grid(
        index.table.page_count, floor=SYNTH_BUFFER_FLOOR
    )
    estimators = paper_estimators(index)

    def sweep():
        table = {}
        for mix_name, probabilities in MIXES.items():
            scans = generate_scan_mix(
                index, count=SCAN_COUNT, rng=random.Random(1),
                **probabilities,
            )
            result = run_error_behavior(index, estimators, scans, grid)
            table[mix_name] = result.max_abs_errors()
        return table

    table = run_once(benchmark, sweep)

    names = [e.name for e in estimators]
    rendered = format_table(
        ["mix", *names],
        [
            (mix, *(f"{table[mix][n]:.1f}" for n in names))
            for mix in MIXES
        ],
        title="Ablation: worst |error| % per algorithm, by scan mix",
    )
    write_result("ablation_scan_mix", rendered)

    # EPFIS dominates under the paper's mixed workload and under large and
    # full-only mixes.  Finding (recorded in the results file): under a
    # small-only mix on mid-clustered data the sigma-correction's Cardenas
    # term — which assumes records scatter over the *whole* table — can
    # overshoot when the window scheme concentrates a key range in a page
    # band, letting ML edge ahead; EPFIS stays within ~1.25x of the best.
    for mix in ("mixed-50-50", "large-only", "full-only"):
        worst = table[mix]
        assert worst["EPFIS"] <= min(worst.values()) + 1e-9, (mix, worst)
    small = table["small-only"]
    assert small["EPFIS"] <= 1.25 * min(small.values()), small

    # The baselines' errors grow (in aggregate) from small-only to
    # large-only scans.
    degraded = [
        n
        for n in ("ML", "DC", "SD", "OT")
        if table["large-only"][n] > table["small-only"][n]
    ]
    assert len(degraded) >= 2, table
