"""Ablation (beyond the paper): statistics staleness under churn.

LRU-Fit runs "periodically" as part of statistics collection; between runs
the table keeps changing and the stored FPF curve goes stale.  This bench
mutates a table after fitting — growth by appends (10/30/60%) and logical
deletion of 30% of entries — and compares estimates from the stale catalog
record vs a re-fit against exact ground truth, quantifying how quickly the
empirical model decays under each kind of churn.
"""

import random

from conftest import SYNTH_BUFFER_FLOOR, run_once, write_result

from repro.datagen.synthetic import (
    SyntheticSpec,
    append_records,
    build_synthetic_dataset,
    delete_records,
)
from repro.estimators.epfis import EPFISEstimator, LRUFit
from repro.eval.buffer_grid import evaluation_buffer_grid
from repro.eval.experiment import run_error_behavior
from repro.eval.report import format_table
from repro.workload.scans import generate_scan_mix

GROWTH_STEPS = (0.10, 0.30, 0.60)


def test_statistics_staleness(benchmark):
    spec = SyntheticSpec(
        records=25_000,
        distinct_values=250,
        records_per_page=40,
        window=0.3,
        seed=77,
    )

    def measure(label, mutate):
        dataset = build_synthetic_dataset(spec)
        stale_estimator = EPFISEstimator(LRUFit().run(dataset.index))
        mutate(dataset)
        fresh_estimator = EPFISEstimator(LRUFit().run(dataset.index))

        index = dataset.index
        grid = evaluation_buffer_grid(
            index.table.page_count, floor=SYNTH_BUFFER_FLOOR
        )
        scans = generate_scan_mix(index, count=60, rng=random.Random(3))
        result = run_error_behavior(
            index, [stale_estimator, fresh_estimator], scans, grid
        )
        stale_curve, fresh_curve = result.curves
        return (
            label,
            f"{100 * stale_curve.max_abs_error():.1f}",
            f"{100 * fresh_curve.max_abs_error():.1f}",
        )

    def sweep():
        rows = []
        for growth in GROWTH_STEPS:
            rows.append(
                measure(
                    f"append {growth:.0%}",
                    lambda d, g=growth: append_records(
                        d, round(g * spec.records), rng=random.Random(7)
                    ),
                )
            )
        rows.append(
            measure(
                "delete 30%",
                lambda d: delete_records(
                    d, round(0.3 * spec.records), rng=random.Random(9)
                ),
            )
        )
        return rows

    rows = run_once(benchmark, sweep)

    rendered = format_table(
        ["churn since fit", "stale stats max |error| %",
         "re-fit max |error| %"],
        rows,
        title="Ablation: EPFIS accuracy as statistics go stale",
    )
    write_result("ablation_staleness", rendered)

    # Re-fitting always restores accuracy to the usual band...
    for _label, _stale, fresh in rows:
        assert float(fresh) <= 48.0
    # ...and append staleness costs accuracy monotonically-ish: the
    # 60%-grown table is served worse by stale statistics than the
    # 10%-grown one.
    append_rows = rows[: len(GROWTH_STEPS)]
    assert float(append_rows[-1][1]) > float(append_rows[0][1])


