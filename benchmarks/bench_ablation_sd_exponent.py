"""Ablation (Section 3.3 erratum): Algorithm SD's Cardenas exponent.

The paper prints U = sigma * I * (T * (1 - (1 - 1/T)^(T/I))); the
dimensionally natural quantity would use D = N/I records per key.  This
bench runs SD under both readings on datasets with very different N/T and
records-per-key, reporting which reading tracks ground truth better.
"""

import random

from conftest import (
    SCAN_COUNT,
    SYNTH_BUFFER_FLOOR,
    run_once,
    write_result,
)

from repro.estimators.sd import SDEstimator
from repro.eval.buffer_grid import evaluation_buffer_grid
from repro.eval.experiment import run_error_behavior
from repro.eval.report import format_table
from repro.workload.scans import generate_scan_mix

EXPONENTS = ("literal", "records-per-key")


def test_sd_exponent_ablation(benchmark, synthetic_dataset_factory):
    results = {}

    def sweep():
        for theta, window in ((0.0, 0.2), (0.0, 1.0)):
            dataset = synthetic_dataset_factory(theta, window)
            index = dataset.index
            grid = evaluation_buffer_grid(
                index.table.page_count, floor=SYNTH_BUFFER_FLOOR
            )
            scans = generate_scan_mix(
                index, count=SCAN_COUNT, rng=random.Random(1)
            )
            for exponent in EXPONENTS:
                estimator = SDEstimator.from_index(index, exponent=exponent)
                result = run_error_behavior(index, [estimator], scans, grid)
                results[(window, exponent)] = (
                    100.0 * result.curves[0].max_abs_error()
                )
        return results

    run_once(benchmark, sweep)

    rendered = format_table(
        ["K", "exponent", "max |error| %"],
        [
            (window, exponent, f"{value:.1f}")
            for (window, exponent), value in sorted(results.items())
        ],
        title="Ablation: Algorithm SD with T/I (printed) vs N/I exponent",
    )
    write_result("ablation_sd_exponent", rendered)

    # Both variants produce finite, sane errors; the comparison itself is
    # the deliverable (recorded in the results file / EXPERIMENTS.md).
    for value in results.values():
        assert value < 10_000.0
