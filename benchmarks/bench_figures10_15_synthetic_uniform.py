"""Figures 10-15: synthetic error behaviour, uniform duplicates (theta = 0).

Paper exhibits: error metric vs buffer size for window parameters
K in {0, 0.05, 0.10, 0.20, 0.50, 1.0} at R = 40 records/page, uniform
(theta = 0) duplicate distribution.  Headline: EPFIS dominates at every K;
OT and DC exceed the plotted range (~100%) on weakly clustered data.
"""

import pytest
import conftest
from conftest import (
    SCAN_COUNT,
    SYNTH_BUFFER_FLOOR,
    run_once,
    write_result,
    write_result_json,
)

from repro.eval.buffer_grid import evaluation_buffer_grid
from repro.eval.experiment import run_error_behavior
from repro.eval.figures import SYNTHETIC_FIGURES, paper_estimators
from repro.eval.report import ascii_chart, format_table
from repro.workload.scans import generate_scan_mix

import random

THETA = 0.0
FIGURES = {
    fig: params
    for fig, params in SYNTHETIC_FIGURES.items()
    if params[0] == THETA
}

RESULTS = {}


def run_synthetic_figure(dataset_factory, theta, window):
    dataset = dataset_factory(theta, window)
    index = dataset.index
    grid = evaluation_buffer_grid(
        index.table.page_count, floor=SYNTH_BUFFER_FLOOR
    )
    scans = generate_scan_mix(
        index, count=SCAN_COUNT, rng=random.Random(1)
    )
    return run_error_behavior(
        index,
        paper_estimators(index),
        scans,
        grid,
        dataset_name=f"theta={theta}, K={window}",
    )


def render_synthetic_figure(figure, result):
    percents = result.buffer_grid.percents()
    chart = ascii_chart(
        {
            c.estimator: [
                (p, 100.0 * e) for p, (_b, e) in zip(percents, c.points)
            ]
            for c in result.curves
        },
        width=70,
        height=20,
        title=f"Figure {figure}: error behaviour for {result.dataset}",
        x_label="buffer size (% of T)",
        y_label="error (%)",
    )
    table = format_table(
        ["algorithm", "max |error| %", "mean error %"],
        [
            (
                c.estimator,
                f"{100 * c.max_abs_error():.1f}",
                f"{100 * sum(e for _b, e in c.points) / len(c.points):+.1f}",
            )
            for c in result.curves
        ],
    )
    return chart + "\n\n" + table


@pytest.mark.parametrize("figure,params", sorted(FIGURES.items()))
def test_synthetic_uniform_figure(
    benchmark, synthetic_dataset_factory, figure, params
):
    theta, window = params
    result = run_once(
        benchmark,
        lambda: run_synthetic_figure(synthetic_dataset_factory, theta, window),
    )
    RESULTS[figure] = result
    write_result(
        f"figure{figure:02d}_synthetic_theta{theta}_K{window}",
        render_synthetic_figure(figure, result),
    )
    write_result_json(
        f"figure{figure:02d}_synthetic_theta{theta}_K{window}", result
    )

    worst = result.max_abs_errors()
    assert worst["EPFIS"] <= min(worst.values()) + 1e-9, worst
    assert worst["EPFIS"] <= conftest.EPFIS_SYNTH_BAND, worst
