"""Shared configuration for the reproduction benches.

Every bench regenerates one exhibit (table or figure) of the paper and
writes its rendered output to ``benchmarks/results/<exhibit>.txt`` so the
reproduction is reviewable after a plain ``pytest benchmarks/
--benchmark-only`` run (pytest captures stdout; the files are the durable
record, and EXPERIMENTS.md summarizes them).

Scaling knobs (environment variables):

==========================  =============================================
Variable                    Meaning (default)
==========================  =============================================
``REPRO_GWL_SCALE``         GWL database scale factor (0.08)
``REPRO_SYNTH_RECORDS``     synthetic N (40,000; paper: 1,000,000)
``REPRO_SCANS``             scans per error experiment (120; paper: 200)
``REPRO_PAPER_SCALE=1``     force full paper sizes (slow: hours)
==========================  =============================================

Scaled runs preserve every dimensionless quantity the experiments depend
on (N/I, records/page, B/T grid fractions, scan-size mix); see DESIGN.md.
"""

from __future__ import annotations

import os
import random
from pathlib import Path

import pytest

from repro.datagen.gwl import build_gwl_database
from repro.datagen.synthetic import SyntheticSpec, build_synthetic_dataset

RESULTS_DIR = Path(__file__).parent / "results"

_PAPER = os.environ.get("REPRO_PAPER_SCALE") == "1"

#: GWL scale: 0.08 keeps the whole suite at minutes; 1.0 is the paper.
GWL_SCALE = 1.0 if _PAPER else float(os.environ.get("REPRO_GWL_SCALE", "0.08"))

#: Synthetic N (the paper's is 10^6 with I = 10^4; N/I = 100 is preserved).
SYNTH_RECORDS = (
    1_000_000 if _PAPER else int(os.environ.get("REPRO_SYNTH_RECORDS", "40000"))
)
SYNTH_DISTINCT = max(10, SYNTH_RECORDS // 100)

#: Scans per error-behaviour experiment (paper: 200).
SCAN_COUNT = 200 if _PAPER else int(os.environ.get("REPRO_SCANS", "120"))

#: The paper's 300-page buffer floor, scaled with the data so the grid
#: covers the same B/T fractions as the published figures.
GWL_BUFFER_FLOOR = max(2, round(300 * GWL_SCALE))
SYNTH_BUFFER_FLOOR = max(2, round(300 * SYNTH_RECORDS / 1_000_000))

#: EPFIS worst-case error bands asserted by the figure benches.  At paper
#: scale these are the paper's own numbers (20% on GWL, 48% on synthetic);
#: scaled runs get modest headroom because coarser FPF grids and lumpier
#: Zipf duplicate counts add a few points of approximation error.
EPFIS_GWL_BAND = 20.0 if _PAPER else 35.0
EPFIS_SYNTH_BAND = 48.0 if _PAPER else 60.0


def write_result(name: str, text: str) -> Path:
    """Persist one exhibit's rendering under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


def write_result_json(name: str, result) -> Path:
    """Persist an ErrorBehaviorResult as machine-readable JSON."""
    from repro.eval.export import save_result_json

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    save_result_json(result, path)
    return path


def run_once(benchmark, fn):
    """Time ``fn`` exactly once (experiments are too big to repeat)."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)


@pytest.fixture(scope="session")
def gwl_db():
    """The full 8-column simulated GWL database (built once per session)."""
    return build_gwl_database(scale=GWL_SCALE, seed=0, tolerance=0.02)


@pytest.fixture(scope="session")
def synthetic_dataset_factory():
    """Builds (and caches) synthetic datasets for the figure benches."""
    cache = {}

    def build(theta: float, window: float, records_per_page: int = 40):
        key = (theta, window, records_per_page)
        if key not in cache:
            spec = SyntheticSpec(
                records=SYNTH_RECORDS,
                distinct_values=SYNTH_DISTINCT,
                records_per_page=records_per_page,
                theta=theta,
                window=window,
                seed=1,
            )
            cache[key] = build_synthetic_dataset(spec)
        return cache[key]

    return build


@pytest.fixture()
def scan_rng():
    return random.Random(1)
