#!/usr/bin/env python3
"""End-to-end query: estimate, choose a plan, execute it, audit the bill.

The full life of one query, exactly as a DBMS would run it:

1. statistics collection (LRU-Fit) fills the catalog,
2. the optimizer costs a table scan vs an index scan using EPFIS,
3. the chosen physical plan executes through a real LRU buffer pool,
4. the counted page fetches are compared against the estimate.

Run:  python examples/end_to_end_query.py
"""

import random

from repro import (
    EPFISEstimator,
    SyntheticSpec,
    build_synthetic_dataset,
)
from repro.eval.report import format_table
from repro.executor import QueryExecutor, plan_from_choice
from repro.optimizer.access_path import choose_access_plan
from repro.workload.scans import KeyDistribution, ScanKind, generate_scan


def main() -> None:
    dataset = build_synthetic_dataset(
        SyntheticSpec(
            records=50_000,
            distinct_values=500,
            records_per_page=40,
            window=0.3,
            seed=21,
        )
    )
    table, index = dataset.table, dataset.index
    buffer_pages = table.page_count // 2

    # 1. statistics collection
    estimator = EPFISEstimator.from_index(index)
    print(
        f"catalog: T={table.page_count}, N={table.record_count}, "
        f"C={estimator.statistics.clustering_factor:.2f}; "
        f"buffer={buffer_pages} pages\n"
    )

    rows = []
    rng = random.Random(9)
    distribution = KeyDistribution.from_index(index)
    for kind in (ScanKind.SMALL, ScanKind.LARGE, ScanKind.FULL):
        scan = generate_scan(distribution, kind, rng)

        # 2. plan choice
        choice = choose_access_plan(
            table, scan, [(index, estimator)], buffer_pages
        )

        # 3. execution (index pages excluded so the bill matches the
        #    estimator's data-page scope)
        plan = plan_from_choice(
            choice, table, scan, [(index, estimator)]
        )
        if hasattr(plan, "charge_index_pages"):
            import dataclasses

            plan = dataclasses.replace(plan, charge_index_pages=False)
        executor = QueryExecutor(buffer_pages)
        result_rows, stats = executor.execute(plan)

        # 4. audit
        estimate = choice.chosen.page_fetches
        rows.append(
            (
                scan.kind.value,
                f"{scan.range_selectivity:.3f}",
                choice.chosen.description,
                f"{estimate:.0f}",
                stats.data_page_fetches,
                len(result_rows),
            )
        )

    print(
        format_table(
            ["scan", "sigma", "chosen plan", "estimated F", "actual F",
             "rows"],
            rows,
            title="One query, three sizes: estimate vs executed cost",
        )
    )
    print(
        "\nThe executor bills exactly the quantity the estimator predicts "
        "(data-page\nfetches from a cold LRU pool), so the audit closes the "
        "loop the paper opens."
    )


if __name__ == "__main__":
    main()
