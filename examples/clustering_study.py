#!/usr/bin/env python3
"""Clustering study: how index disorder shapes the FPF curve.

Reproduces the intuition behind the paper's Figure 1 on synthetic data:
sweeping the window parameter K from 0 (perfectly clustered) to 1 (random
placement) and showing, for each K,

* the clustering factor C that LRU-Fit measures, and
* the full-index-scan page-fetch (FPF) curve — rendered as one ASCII chart.

The takeaway the paper builds on: F is extremely sensitive to B for
unclustered indexes and flat for clustered ones, so a single "cluster
ratio" number cannot capture the curve — you need the curve itself.

Run:  python examples/clustering_study.py
"""

from repro import LRUFit, SyntheticSpec, build_synthetic_dataset
from repro.buffer.stack import FetchCurve
from repro.eval.report import ascii_chart, format_table

WINDOWS = (0.0, 0.05, 0.2, 0.5, 1.0)


def main() -> None:
    curves = {}
    rows = []
    for window in WINDOWS:
        dataset = build_synthetic_dataset(
            SyntheticSpec(
                records=40_000,
                distinct_values=400,
                records_per_page=40,
                window=window,
                seed=6,
            )
        )
        index = dataset.index
        pages = index.table.page_count
        stats = LRUFit().run(index)
        exact = FetchCurve.from_trace(index.page_sequence())

        points = []
        for percent in range(2, 101, 2):
            b = max(1, round(pages * percent / 100))
            points.append((percent, exact.fetches(b) / pages))
        curves[f"K={window}"] = points
        rows.append(
            (
                window,
                f"{stats.clustering_factor:.3f}",
                exact.fetches(max(1, pages // 100)),
                exact.fetches(pages // 2),
                exact.fetches(pages),
            )
        )

    print(
        ascii_chart(
            curves,
            width=72,
            height=24,
            title="FPF curves by window parameter K (X = B as % of T, "
            "Y = F in multiples of T)",
            x_label="B (% of T)",
            y_label="F / T",
        )
    )
    print()
    print(
        format_table(
            ["K", "C (LRU-Fit)", "F @1%T", "F @50%T", "F @100%T"],
            rows,
            title="Clustering factor and sample fetch counts",
        )
    )


if __name__ == "__main__":
    main()
