#!/usr/bin/env python3
"""Index-sargable predicates on a composite index (the Section 2 example).

"Let an index be defined on columns a and b, with a as the major column.
... the predicate b = 5, where b is not the major column of the index, is
an index-sargable predicate."

This example builds that exact setup, runs the scan with and without the
predicate, and compares EPFIS's urn-model estimate (Section 4.2) against
the true fetch counts.

Run:  python examples/sargable_predicates.py
"""

import random

from repro import EPFISEstimator, ScanSelectivity
from repro.buffer.stack import FetchCurve
from repro.eval.report import format_table
from repro.storage.composite import (
    CompositeIndex,
    MinorColumnPredicate,
    major_range,
)
from repro.storage.table import Table


def build_ab_table(records=40_000, majors=400, minors=20, rpp=40, seed=3):
    """A table whose composite index (a, b) has a as the major column."""
    rng = random.Random(seed)
    table = Table("orders", ("a", "b"), records_per_page=rpp)
    rows = [
        (rng.randrange(majors), rng.randrange(minors))
        for _ in range(records)
    ]
    rows.sort(key=lambda row: (row[0], rng.random()))  # cluster by a, loosely
    # Shuffle lightly so the index is not perfectly clustered.
    for i in range(0, records - 50, 50):
        block = rows[i: i + 50]
        rng.shuffle(block)
        rows[i: i + 50] = block
    rng.shuffle(rows)
    for row in rows:
        table.insert(row)
    index = CompositeIndex.build(table, ("a", "b"), name="orders.ab")
    return table, index


def main() -> None:
    table, index = build_ab_table()
    estimator = EPFISEstimator.from_index(index)
    buffer_pages = table.page_count // 3
    print(
        f"table: {table.page_count} pages; composite index on (a, b); "
        f"buffer {buffer_pages} pages\n"
    )

    # Start/stop conditions on the major column: 40 <= a < 60 (sigma).
    key_range = major_range(index, low=40, high=60, high_inclusive=False)
    in_range = list(index.entries(*key_range.bounds()))
    sigma = len(in_range) / index.entry_count

    # The sargable predicate: b = 5 (S).
    predicate = MinorColumnPredicate.equals(index, "b", 5)

    rows = []
    for label, entries, selectivity in (
        (
            "40 <= a < 60",
            in_range,
            ScanSelectivity(sigma),
        ),
        (
            "40 <= a < 60 AND b = 5",
            [e for e in in_range if predicate.qualifies(e)],
            ScanSelectivity(sigma, predicate.selectivity),
        ),
    ):
        trace = [e.rid.page for e in entries]
        actual = FetchCurve.from_trace(trace).fetches(buffer_pages)
        estimate = estimator.estimate(selectivity, buffer_pages)
        rows.append(
            (
                label,
                len(entries),
                f"{estimate:.0f}",
                actual,
                f"{(estimate - actual) / actual:+.1%}",
            )
        )

    print(
        format_table(
            ["scan", "qualifying records", "EPFIS estimate", "actual F",
             "error"],
            rows,
            title=(
                "Section 2's example: start/stop on the major column, "
                "sargable predicate on the minor"
            ),
        )
    )
    print(
        f"\nsigma = {sigma:.3f}, S = {predicate.selectivity:.3f}; the "
        "predicate is evaluated on index\nentries, so qualifying records "
        "shrink the fetch count before any page is read —\nthe effect the "
        "urn model of Section 4.2 estimates."
    )


if __name__ == "__main__":
    main()
