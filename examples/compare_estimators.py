#!/usr/bin/env python3
"""Estimator shoot-out: a miniature of the paper's Section 5 evaluation.

Builds one synthetic dataset, generates the paper's mixed scan workload,
and reports each algorithm's error metric across the buffer grid — the
same experiment the benchmark suite runs per figure, sized to finish in
seconds.

Run:  python examples/compare_estimators.py [window]
  window: optional K in [0, 1] controlling clustering (default 0.5)
"""

import random
import sys

from repro import SyntheticSpec, build_synthetic_dataset
from repro.eval.buffer_grid import evaluation_buffer_grid
from repro.eval.experiment import run_error_behavior
from repro.eval.figures import paper_estimators
from repro.eval.report import ascii_chart, format_table
from repro.workload.scans import generate_scan_mix


def main() -> None:
    window = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    dataset = build_synthetic_dataset(
        SyntheticSpec(
            records=40_000,
            distinct_values=400,
            records_per_page=40,
            theta=0.86,
            window=window,
            seed=12,
        )
    )
    index = dataset.index
    grid = evaluation_buffer_grid(index.table.page_count, floor=12)
    scans = generate_scan_mix(index, count=100, rng=random.Random(2))

    result = run_error_behavior(
        index, paper_estimators(index), scans, grid,
        dataset_name=f"theta=0.86, K={window}",
    )

    percents = grid.percents()
    print(
        ascii_chart(
            {
                c.estimator: [
                    (p, 100 * e) for p, (_b, e) in zip(percents, c.points)
                ]
                for c in result.curves
            },
            width=72,
            height=20,
            title=f"Error behaviour, {result.dataset} "
            f"({result.scan_count} scans)",
            x_label="buffer size (% of T)",
            y_label="error (%)",
        )
    )
    print()
    print(
        format_table(
            ["algorithm", "max |error| %", "mean error %"],
            [
                (
                    c.estimator,
                    f"{100 * c.max_abs_error():.1f}",
                    f"{100 * sum(e for _b, e in c.points) / len(c.points):+.1f}",
                )
                for c in result.curves
            ],
            title="Worst-case and mean error per algorithm",
        )
    )
    print(f"\n(experiment took {result.elapsed_seconds:.1f}s)")


if __name__ == "__main__":
    main()
