#!/usr/bin/env python3
"""Quickstart: estimate page fetches for an index scan in five steps.

This walks the whole EPFIS pipeline on a small synthetic table:

1. generate a table + B-tree index with a controlled degree of clustering,
2. run LRU-Fit (the one-time statistics pass),
3. look at what landed in the catalog record,
4. ask Est-IO for page-fetch estimates at different buffer sizes,
5. compare against exact LRU simulation.

Run:  python examples/quickstart.py
"""

from repro import (
    EPFISEstimator,
    LRUFit,
    ScanSelectivity,
    SyntheticSpec,
    build_synthetic_dataset,
)
from repro.eval.ground_truth import ScanTraceExtractor
from repro.eval.report import format_table
from repro.workload.predicates import KeyRange
from repro.workload.scans import ScanKind, ScanSpec


def main() -> None:
    # 1. A 100k-record table, 40 records/page, with records placed at
    #    random (window parameter K = 1): a thoroughly unclustered index,
    #    the case where buffer size matters most.
    spec = SyntheticSpec(
        records=100_000,
        distinct_values=1_000,
        records_per_page=40,
        theta=0.0,
        window=1.0,
        seed=42,
    )
    dataset = build_synthetic_dataset(spec)
    table, index = dataset.table, dataset.index
    print(f"table: {table.page_count} pages, {table.record_count} records")

    # 2. LRU-Fit: one pass over the index entries simulates LRU pools of
    #    every size simultaneously and fits the six-segment FPF curve.
    stats = LRUFit().run(index)
    print(
        f"LRU-Fit: clustering factor C = {stats.clustering_factor:.3f}, "
        f"modeled B in [{stats.b_min}, {stats.b_max}], "
        f"{stats.fpf_curve.segment_count} segments"
    )

    # 3. The catalog record is all the optimizer ever needs.
    print("fitted FPF knots (B, F):")
    for b, f in stats.fpf_curve.knots:
        print(f"  B = {int(b):5d}  ->  F = {int(f)}")

    # 4 + 5. Estimates vs exact simulation for a 10%-selectivity scan.
    estimator = EPFISEstimator.from_statistics(stats)
    extractor = ScanTraceExtractor(index)
    keys = index.sorted_keys()
    scan = ScanSpec(
        key_range=KeyRange.between(keys[100], keys[199]),  # ~10% of keys
        kind=ScanKind.SMALL,
        target_fraction=0.1,
        selected_records=index.count_in_range(
            *KeyRange.between(keys[100], keys[199]).bounds()
        ),
        total_records=index.entry_count,
    )
    sigma = scan.range_selectivity
    print(f"\nscan: {scan.key_range.describe()}  (sigma = {sigma:.3f})")

    buffer_sizes = [25, 100, 400, 1_000, 2_000]
    actuals = extractor.actual_fetches(scan, buffer_sizes)
    rows = []
    for b in buffer_sizes:
        estimate = estimator.estimate(ScanSelectivity(sigma), b)
        actual = actuals[b]
        rows.append(
            (b, f"{estimate:.0f}", actual,
             f"{(estimate - actual) / actual:+.1%}")
        )
    print()
    print(
        format_table(
            ["buffer pages", "EPFIS estimate", "actual (exact LRU)", "error"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
