#!/usr/bin/env python3
"""Access-path selection: the optimizer scenario from Section 2.

A query restricts a table by a key range and may require sorted output.
The optimizer must choose between a full table scan and a (partial) index
scan — and its choice is only as good as its page-fetch estimate.  This
example runs the same query workload through EPFIS and the naive
perfectly-clustered / perfectly-unclustered estimators, then compares the
plans they pick against the actual cheapest plan (exact LRU simulation).

Run:  python examples/access_path_selection.py
"""

import random

from repro import (
    EPFISEstimator,
    PerfectlyClusteredEstimator,
    PerfectlyUnclusteredEstimator,
    SyntheticSpec,
    build_synthetic_dataset,
)
from repro.eval.ground_truth import ScanTraceExtractor
from repro.eval.report import format_table
from repro.optimizer.access_path import choose_access_plan
from repro.workload.scans import generate_scan_mix


def main() -> None:
    dataset = build_synthetic_dataset(
        SyntheticSpec(
            records=60_000,
            distinct_values=600,
            records_per_page=40,
            window=0.3,
            seed=8,
        )
    )
    table, index = dataset.table, dataset.index
    buffer_pages = table.page_count // 3
    print(
        f"table: {table.page_count} pages; buffer: {buffer_pages} pages\n"
    )

    estimators = {
        "EPFIS": EPFISEstimator.from_index(index),
        "clustered": PerfectlyClusteredEstimator.from_index(index),
        "unclustered": PerfectlyUnclusteredEstimator.from_index(index),
    }
    extractor = ScanTraceExtractor(index)
    scans = generate_scan_mix(index, count=60, rng=random.Random(3))

    totals = {name: 0.0 for name in estimators}
    mistakes = {name: 0 for name in estimators}
    optimal_total = 0.0

    for scan in scans:
        actual_index_cost = extractor.actual_fetches(scan, [buffer_pages])[
            buffer_pages
        ]
        best = min(actual_index_cost, table.page_count)
        optimal_total += best
        for name, estimator in estimators.items():
            choice = choose_access_plan(
                table, scan, [(index, estimator)], buffer_pages
            )
            took_index = choice.chosen.description.startswith("index")
            cost = actual_index_cost if took_index else table.page_count
            totals[name] += cost
            if cost > best:
                mistakes[name] += 1

    rows = []
    for name in estimators:
        regret = (totals[name] - optimal_total) / optimal_total
        rows.append(
            (name, f"{totals[name]:.0f}", f"{regret:+.1%}",
             f"{mistakes[name]}/{len(scans)}")
        )
    rows.append(("(oracle)", f"{optimal_total:.0f}", "+0.0%", "0"))
    print(
        format_table(
            ["estimator", "actual pages fetched", "regret",
             "wrong plan choices"],
            rows,
            title="Plan quality over 60 random scans",
        )
    )
    print(
        "\nThe naive estimators systematically pick the wrong side of the "
        "table-scan\nbreak-even point; EPFIS's buffer-aware estimates keep "
        "the realized cost near\nthe oracle's."
    )


if __name__ == "__main__":
    main()
