#!/usr/bin/env python3
"""Multi-user contention: what happens when scans share the buffer pool.

The paper's Section 6 lists "intra-query contention, and multi-user
contention" as future work.  This example uses the contention substrate to
show both faces of sharing:

* destructive: concurrent scans over *different* tables evict each other's
  working sets, so each fetches more than the dedicated-pool model
  predicts — and the simple B/k equal-share correction recovers most of
  the gap;
* constructive: concurrent scans over the *same* table share fetched
  pages, costing less than dedicated pools in total.

Run:  python examples/multiuser_contention.py
"""

from repro import (
    EPFISEstimator,
    ScanSelectivity,
    SyntheticSpec,
    build_synthetic_dataset,
)
from repro.eval.report import format_table
from repro.storage.btree import KeyBound
from repro.workload.interleave import (
    equal_share_estimate,
    simulate_contention,
    simulate_shared_table_contention,
)


def middle_scan_trace(dataset, sigma: float):
    """The page trace of a contiguous scan over ``sigma`` of the keys."""
    keys = dataset.index.sorted_keys()
    start = keys[len(keys) // 4]
    stop = keys[min(len(keys) - 1, len(keys) // 4 + int(sigma * len(keys)))]
    return dataset.index.page_sequence(
        KeyBound(start, True), KeyBound(stop, True)
    )


def main() -> None:
    sigma = 0.4
    datasets = [
        build_synthetic_dataset(
            SyntheticSpec(
                records=20_000,
                distinct_values=200,
                records_per_page=40,
                window=0.5,
                seed=200 + i,
            )
        )
        for i in range(4)
    ]
    buffer_pages = datasets[0].table.page_count // 2
    estimator = EPFISEstimator.from_index(datasets[0].index)

    print(
        f"4 tables of {datasets[0].table.page_count} pages; shared pool of "
        f"{buffer_pages} pages; each scan covers sigma = {sigma}\n"
    )

    rows = []
    for k in (1, 2, 3, 4):
        traces = [middle_scan_trace(d, sigma) for d in datasets[:k]]
        shared = simulate_contention(traces, buffer_pages)
        naive = k * estimator.estimate(ScanSelectivity(sigma), buffer_pages)
        corrected = equal_share_estimate(
            estimator, [ScanSelectivity(sigma)] * k, buffer_pages
        )
        rows.append(
            (
                k,
                shared.total_dedicated,
                shared.total_fetches,
                f"{100 * shared.contention_overhead:+.0f}%",
                f"{naive:.0f}",
                f"{corrected:.0f}",
            )
        )
    print(
        format_table(
            ["scans", "dedicated F", "shared F", "overhead",
             "naive estimate", "B/k estimate"],
            rows,
            title="Destructive contention: disjoint tables, one LRU pool",
        )
    )

    trace = middle_scan_trace(datasets[0], sigma)
    same = simulate_shared_table_contention([trace, trace], buffer_pages)
    print(
        "\nConstructive sharing (two identical scans, same table): "
        f"dedicated pools fetch {same.total_dedicated} pages in total, the "
        f"shared pool only {same.total_fetches} — the second scan rides "
        "the first one's I/O."
    )


if __name__ == "__main__":
    main()
