#!/usr/bin/env python3
"""Catalog workflow: statistics collection and query compilation as two
separate phases, the way a real DBMS runs EPFIS.

Phase 1 (statistics collection, e.g. a nightly RUNSTATS): run LRU-Fit on
each index and persist the results to a catalog file.

Phase 2 (query compilation, any time later, no data access): point an
EstimationEngine at the catalog file and ask for estimates by
(index name, estimator name).  The engine reloads the catalog if the file
changes, binds registry estimators lazily, and caches the bindings — the
baselines (ML / DC / SD / OT) reconstruct from the same records, so the
one statistics pass serves all five algorithms.

Run:  python examples/catalog_workflow.py
"""

import tempfile
from pathlib import Path

from repro import (
    EstimationEngine,
    LRUFit,
    ScanSelectivity,
    SyntheticSpec,
    SystemCatalog,
    build_synthetic_dataset,
)
from repro.estimators import PAPER_ESTIMATOR_NAMES
from repro.eval.report import format_table


def collect_statistics(catalog_path: Path) -> None:
    """Phase 1: the only phase that touches data."""
    print("phase 1: statistics collection")
    catalog = SystemCatalog()
    for window, name in ((0.05, "orders.custkey"), (0.8, "orders.comment")):
        dataset = build_synthetic_dataset(
            SyntheticSpec(
                records=30_000,
                distinct_values=300,
                records_per_page=40,
                window=window,
                seed=4,
                name=name,
            )
        )
        stats = LRUFit().run(dataset.index)
        catalog.put(stats)
        print(
            f"  {name}: T={stats.table_pages}, C={stats.clustering_factor:.2f},"
            f" {stats.fpf_curve.segment_count} segments -> catalog"
        )
    catalog.save(catalog_path)
    print(f"  saved to {catalog_path}\n")


def compile_queries(catalog_path: Path) -> None:
    """Phase 2: estimates served from catalog records only."""
    print("phase 2: query compilation (no data access)")
    engine = EstimationEngine(catalog_path)
    selectivity = ScanSelectivity(range_selectivity=0.08)
    rows = []
    for name in engine.index_names():
        table_pages = engine.statistics(name).table_pages
        for buffer_pages in (table_pages // 10, table_pages // 2):
            estimates = [
                engine.estimate(
                    name, estimator, selectivity, buffer_pages
                )
                for estimator in PAPER_ESTIMATOR_NAMES
            ]
            rows.append(
                (name, buffer_pages, *(f"{e:.0f}" for e in estimates))
            )
    print(
        format_table(
            ["index", "B", "EPFIS", "ML", "DC", "SD", "OT"],
            rows,
            title="Estimated page fetches for an 8%-selectivity scan",
        )
    )
    calls = sum(m["calls"] for m in engine.metrics().values())
    print(
        f"\n{calls} estimator calls over "
        f"{engine.cached_estimators()} cached bindings"
    )
    print(
        "\nNote how only EPFIS, ML and SD respond to the buffer size at "
        "all, and how\nestimates diverge on the unclustered index — the "
        "spread the paper's Figures 2-21\nquantify."
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        catalog_path = Path(tmp) / "system_catalog.json"
        collect_statistics(catalog_path)
        compile_queries(catalog_path)


if __name__ == "__main__":
    main()
