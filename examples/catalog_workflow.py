#!/usr/bin/env python3
"""Catalog workflow: statistics collection and query compilation as two
separate phases, the way a real DBMS runs EPFIS.

Phase 1 (statistics collection, e.g. a nightly RUNSTATS): run LRU-Fit on
each index and persist the results to a catalog file.

Phase 2 (query compilation, any time later, no data access): load the
catalog, rebuild the estimators from the records alone, and cost scans.
The baselines (ML / DC / SD / OT) reconstruct from the same records — the
one statistics pass serves all five algorithms.

Run:  python examples/catalog_workflow.py
"""

import tempfile
from pathlib import Path

from repro import (
    DCEstimator,
    EPFISEstimator,
    LRUFit,
    MackertLohmanEstimator,
    OTEstimator,
    SDEstimator,
    ScanSelectivity,
    SyntheticSpec,
    SystemCatalog,
    build_synthetic_dataset,
)
from repro.eval.report import format_table


def collect_statistics(catalog_path: Path) -> None:
    """Phase 1: the only phase that touches data."""
    print("phase 1: statistics collection")
    catalog = SystemCatalog()
    for window, name in ((0.05, "orders.custkey"), (0.8, "orders.comment")):
        dataset = build_synthetic_dataset(
            SyntheticSpec(
                records=30_000,
                distinct_values=300,
                records_per_page=40,
                window=window,
                seed=4,
                name=name,
            )
        )
        stats = LRUFit().run(dataset.index)
        catalog.put(stats)
        print(
            f"  {name}: T={stats.table_pages}, C={stats.clustering_factor:.2f},"
            f" {stats.fpf_curve.segment_count} segments -> catalog"
        )
    catalog.save(catalog_path)
    print(f"  saved to {catalog_path}\n")


def compile_queries(catalog_path: Path) -> None:
    """Phase 2: estimates from catalog records only."""
    print("phase 2: query compilation (no data access)")
    catalog = SystemCatalog.load(catalog_path)
    selectivity = ScanSelectivity(range_selectivity=0.08)
    rows = []
    for name in catalog:
        stats = catalog.get(name)
        estimators = [
            EPFISEstimator.from_statistics(stats),
            MackertLohmanEstimator.from_statistics(stats),
            DCEstimator.from_statistics(stats),
            SDEstimator.from_statistics(stats),
            OTEstimator.from_statistics(stats),
        ]
        for buffer_pages in (stats.table_pages // 10, stats.table_pages // 2):
            rows.append(
                (
                    name,
                    buffer_pages,
                    *(f"{e.estimate(selectivity, buffer_pages):.0f}"
                      for e in estimators),
                )
            )
    print(
        format_table(
            ["index", "B", "EPFIS", "ML", "DC", "SD", "OT"],
            rows,
            title="Estimated page fetches for an 8%-selectivity scan",
        )
    )
    print(
        "\nNote how only EPFIS, ML and SD respond to the buffer size at "
        "all, and how\nestimates diverge on the unclustered index — the "
        "spread the paper's Figures 2-21\nquantify."
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        catalog_path = Path(tmp) / "system_catalog.json"
        collect_statistics(catalog_path)
        compile_queries(catalog_path)


if __name__ == "__main__":
    main()
