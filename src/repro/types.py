"""Small shared value types used across the :mod:`repro` subpackages.

These are deliberately lightweight: plain dataclasses and ``NewType`` aliases
so that signatures throughout the library read like the paper's notation
(Table 1 of Swami & Schiefer).

Notation mapping (paper -> code):

=====================  =====================================================
Paper                  Code
=====================  =====================================================
``B``                  ``buffer_pages`` / ``BufferSize``
``T``                  ``table_pages`` (:attr:`TableShape.pages`)
``N``                  ``record_count`` (:attr:`TableShape.records`)
``I``                  ``distinct_keys``
``A``                  pages *accessed* (:func:`repro.trace.distinct_pages`)
``F``                  pages *fetched* (estimator outputs, ground truth)
``sigma``              selectivity of start/stop conditions
``S``                  selectivity of index-sargable predicates
``C`` / ``CR``         clustering factor / cluster ratio
=====================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NewType

#: Identifier of a data page within a table's heap file (0-based).
PageId = NewType("PageId", int)

#: Number of buffer-pool slots available to a scan.
BufferSize = NewType("BufferSize", int)


@dataclass(frozen=True)
class RID:
    """Record identifier: the physical address of a record.

    A RID names a slot on a data page, exactly as in System R style storage.
    Only the page component matters for page-fetch estimation, but carrying
    the slot keeps the storage engine honest (RIDs resolve to real records).
    """

    page: int
    slot: int

    def __post_init__(self) -> None:
        if self.page < 0:
            raise ValueError(f"RID page must be >= 0, got {self.page}")
        if self.slot < 0:
            raise ValueError(f"RID slot must be >= 0, got {self.slot}")


@dataclass(frozen=True)
class TableShape:
    """The physical shape of a table: the paper's ``T``, ``N`` pair.

    ``records_per_page`` is the paper's ``R`` when occupancy is uniform; for
    irregular tables it is the mean occupancy.
    """

    pages: int
    records: int

    def __post_init__(self) -> None:
        if self.pages <= 0:
            raise ValueError(f"pages must be positive, got {self.pages}")
        if self.records <= 0:
            raise ValueError(f"records must be positive, got {self.records}")
        if self.records < self.pages:
            raise ValueError(
                "a table cannot have fewer records than pages "
                f"(records={self.records}, pages={self.pages})"
            )

    @property
    def records_per_page(self) -> float:
        """Mean records per page (the paper's ``R``)."""
        return self.records / self.pages


@dataclass(frozen=True)
class ScanSelectivity:
    """Selectivities applied to an index scan (paper's sigma and S).

    ``range_selectivity`` (sigma) comes from start/stop key conditions and
    restricts which index entries are visited.  ``sargable_selectivity`` (S)
    comes from index-sargable predicates evaluated on visited entries; only
    qualifying records cause data-page fetches.
    """

    range_selectivity: float
    sargable_selectivity: float = 1.0

    def __post_init__(self) -> None:
        for name, value in (
            ("range_selectivity", self.range_selectivity),
            ("sargable_selectivity", self.sargable_selectivity),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    @property
    def combined(self) -> float:
        """Fraction of all records that qualify: ``sigma * S``."""
        return self.range_selectivity * self.sargable_selectivity
