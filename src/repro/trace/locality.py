"""Locality diagnostics for page-reference traces.

The FPF curve is the integral view of a trace's locality; these helpers
expose the differential view — run lengths, reuse fractions, and the
reuse-distance histogram — which explains *why* a curve bends where it
does (a knee at B = w means the trace's reuses concentrate at depth <= w).
Used by data-generation tests (the window placer should concentrate reuse
depth near the window size) and available for ad-hoc analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.buffer.stack import stack_distances
from repro.errors import TraceError


def run_lengths(trace: Sequence[int]) -> List[int]:
    """Lengths of maximal constant-page runs, in trace order."""
    if not len(trace):
        raise TraceError("empty trace has no runs")
    lengths: List[int] = []
    current = 1
    for previous, page in zip(trace, trace[1:]):
        if page == previous:
            current += 1
        else:
            lengths.append(current)
            current = 1
    lengths.append(current)
    return lengths


def reuse_distance_histogram(trace: Sequence[int]) -> Dict[int, int]:
    """Map LRU reuse depth -> number of reuses at that depth."""
    distances, _cold = stack_distances(trace)
    histogram: Dict[int, int] = {}
    for d in distances:
        histogram[d] = histogram.get(d, 0) + 1
    return histogram


@dataclass(frozen=True)
class LocalitySummary:
    """Compact locality profile of one trace."""

    references: int
    distinct_pages: int
    mean_run_length: float
    #: Fraction of references that reuse a previously seen page.
    reuse_fraction: float
    #: Median reuse depth (0 when the trace never reuses a page).
    median_reuse_depth: int
    #: Smallest buffer capturing >= 90% of reuses as hits.
    depth_p90: int

    def describe(self) -> str:
        """One-line human-readable profile."""
        return (
            f"{self.references} refs over {self.distinct_pages} pages, "
            f"mean run {self.mean_run_length:.2f}, "
            f"reuse {self.reuse_fraction:.0%}, "
            f"depth p50/p90 = {self.median_reuse_depth}/{self.depth_p90}"
        )


def summarize_locality(trace: Sequence[int]) -> LocalitySummary:
    """Build the :class:`LocalitySummary` for ``trace``."""
    if not len(trace):
        raise TraceError("empty trace has no locality profile")
    distances, cold = stack_distances(trace)
    lengths = run_lengths(trace)
    reuses = len(distances)
    ordered = sorted(distances)

    def depth_at(fraction: float) -> int:
        if not ordered:
            return 0
        index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1)))
        return ordered[index]

    return LocalitySummary(
        references=len(trace),
        distinct_pages=cold,
        mean_run_length=sum(lengths) / len(lengths),
        reuse_fraction=reuses / len(trace),
        median_reuse_depth=depth_at(0.5),
        depth_p90=depth_at(0.9),
    )


def locality_by_window(
    traces: Dict[float, Sequence[int]]
) -> List[Tuple[float, LocalitySummary]]:
    """Summaries for several traces keyed by a parameter (e.g. K)."""
    return [
        (key, summarize_locality(trace))
        for key, trace in sorted(traces.items())
    ]
