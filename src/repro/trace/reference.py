"""The :class:`ReferenceTrace` value type and streaming trace analysis.

A reference trace is the ordered sequence of data-page numbers touched by an
index scan.  It is immutable, sliceable (partial scans are contiguous
sub-traces of the full index-order trace), and caches its fetch curves so
that repeated buffer-size queries cost one stack-distance pass per kernel.

For traces too large to materialize, :func:`streaming_fetch_curve` feeds
chunks straight into a kernel stream (see :mod:`repro.buffer.kernels`) and
returns the same queryable curve without ever holding the full sequence.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple, Union

from repro.buffer.kernels import StackDistanceKernel, resolve_kernel
from repro.buffer.stack import FetchCurve
from repro.errors import TraceError
from repro.storage.btree import KeyBound
from repro.storage.index import Index

KernelSpec = Union[str, StackDistanceKernel, None]


def streaming_fetch_curve(
    chunks: Iterable[Sequence[int]], kernel: KernelSpec = None
) -> FetchCurve:
    """Analyze a chunked trace without materializing it.

    ``chunks`` is any iterable of page-number sequences (for example a
    generator reading one index leaf at a time); ``kernel`` is a kernel
    name, instance, or ``None`` for the default.  Returns the kernel's
    fetch curve — exact for exact kernels, an
    :class:`~repro.buffer.kernels.ApproximateFetchCurve` for ``sampled``.
    """
    stream = resolve_kernel(kernel).stream()
    for chunk in chunks:
        stream.feed(chunk)
    return stream.finish()


class ReferenceTrace:
    """An immutable page-reference sequence with cached LRU analysis."""

    __slots__ = ("_pages", "_curves")

    def __init__(self, pages: Sequence[int]) -> None:
        if not len(pages):
            raise TraceError("a reference trace must contain at least one page")
        if any(p < 0 for p in pages):
            raise TraceError("page numbers must be >= 0")
        self._pages: Tuple[int, ...] = tuple(pages)
        self._curves: Dict[str, FetchCurve] = {}

    @classmethod
    def from_index(
        cls,
        index: Index,
        start: Optional[KeyBound] = None,
        stop: Optional[KeyBound] = None,
    ) -> "ReferenceTrace":
        """The reference string of a (partial) scan on ``index``."""
        pages = index.page_sequence(start, stop)
        if not pages:
            raise TraceError(
                f"index {index.name!r} scan over "
                f"[{start!r}, {stop!r}] selects no entries"
            )
        return cls(pages)

    @property
    def pages(self) -> Tuple[int, ...]:
        """The page numbers as an immutable tuple."""
        return self._pages

    def __len__(self) -> int:
        """Number of references — one per record examined (paper's sigma*N)."""
        return len(self._pages)

    def __iter__(self) -> Iterator[int]:
        return iter(self._pages)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return ReferenceTrace(self._pages[item])
        return self._pages[item]

    def subtrace(self, start: int, stop: int) -> "ReferenceTrace":
        """The contiguous sub-trace covering references [start, stop)."""
        if not 0 <= start < stop <= len(self._pages):
            raise TraceError(
                f"invalid subtrace [{start}, {stop}) of a trace with "
                f"{len(self._pages)} references"
            )
        return ReferenceTrace(self._pages[start:stop])

    def fetch_curve(self, kernel: KernelSpec = None) -> FetchCurve:
        """The ``B -> F(B)`` function (one pass per kernel, then cached).

        ``kernel`` selects a registered stack-distance kernel by name or
        instance; ``None`` means the default exact kernel.  Curves are
        cached per kernel name, so alternating queries don't re-analyze.
        """
        resolved = resolve_kernel(kernel)
        cached = self._curves.get(resolved.name)
        if cached is None:
            cached = resolved.analyze(self._pages)
            self._curves[resolved.name] = cached
        return cached

    def fetches(self, buffer_pages: int, kernel: KernelSpec = None) -> int:
        """LRU fetches for this trace at the given buffer size."""
        return self.fetch_curve(kernel).fetches(buffer_pages)

    @property
    def distinct_pages(self) -> int:
        """The paper's ``A``: pages accessed at least once."""
        return self.fetch_curve().distinct_pages

    def __repr__(self) -> str:
        return (
            f"ReferenceTrace({len(self._pages)} refs, "
            f"first={self._pages[0]}, last={self._pages[-1]})"
        )
