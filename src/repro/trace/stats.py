"""Trace- and index-level statistics used by the baseline algorithms.

* :func:`jump_count` / :func:`fetches_with_single_buffer` — Algorithm SD's
  ``J`` can be computed directly: with a one-page buffer, every transition
  to a different page is a fetch.
* :func:`key_page_spans` / :func:`dc_cluster_count` — Algorithm DC's cluster
  counter ``CC`` walks keys in order and compares each key's first page with
  the previous key's last page.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, List, Sequence, Tuple

from repro.buffer.lru import LRUBufferPool
from repro.errors import TraceError
from repro.storage.index import Index

#: The paper's smallest modeled buffer size ("In our experiments, we set
#: B_sml = 12"), chosen "to avoid the large effects on page fetches due to
#: too small a buffer size".
B_SML_DEFAULT = 12


def min_modeled_buffer(table_pages: int, b_sml: int = B_SML_DEFAULT) -> int:
    """LRU-Fit's ``B_min = max(0.01 * T, B_sml)``, clamped into [1, T]."""
    if table_pages < 1:
        raise TraceError(f"table_pages must be >= 1, got {table_pages}")
    b_min = max(math.ceil(0.01 * table_pages), b_sml)
    return max(1, min(b_min, table_pages))


def clustering_factor(
    trace: Sequence[int], table_pages: int, b_sml: int = B_SML_DEFAULT
) -> float:
    """The paper's clustering factor ``C = (N - F_min) / (N - T)``.

    ``F_min`` is the fetch count of a full index scan with the smallest
    modeled buffer ``B_min``.  ``C ~ 0`` means records are located at random
    on pages; ``C -> 1`` means the index order matches page order.  For the
    degenerate ``N == T`` (one record per page, every scan fetches exactly
    N pages regardless of order) the index is perfectly clustered by
    convention and 1.0 is returned.
    """
    n = len(trace)
    if not n:
        raise TraceError("empty trace has no clustering factor")
    if n <= table_pages:
        return 1.0
    b_min = min_modeled_buffer(table_pages, b_sml)
    f_min = LRUBufferPool(b_min).run(trace)
    c = (n - f_min) / (n - table_pages)
    # Float guard: F_min is bounded by [T, N] so C is in [0, 1] already,
    # but noisy inputs (e.g. traces touching fewer than T pages) can push
    # F_min below T; clamp to keep the documented contract.
    return min(1.0, max(0.0, c))


def distinct_pages(trace: Iterable[int]) -> int:
    """The paper's ``A``: number of different pages in the trace."""
    return len(set(trace))


def jump_count(trace: Sequence[int]) -> int:
    """Adjacent transitions where the page changes."""
    return sum(1 for a, b in zip(trace, trace[1:]) if a != b)


def fetches_with_single_buffer(trace: Sequence[int]) -> int:
    """Exact fetches with ``B = 1``: one plus the number of jumps."""
    if not len(trace):
        raise TraceError("empty trace has no fetch count")
    return 1 + jump_count(trace)


def key_page_spans(index: Index) -> List[Tuple[Any, int, int]]:
    """Per distinct key (in key order): ``(key, first_page, last_page)``.

    "First" and "last" follow the stored entry order within the key, which
    is what an index-sequence scan observes.
    """
    spans: List[Tuple[Any, int, int]] = []
    current_key: Any = None
    have_key = False
    first_page = last_page = -1
    for entry in index.entries():
        if not have_key or entry.key != current_key:
            if have_key:
                spans.append((current_key, first_page, last_page))
            current_key = entry.key
            have_key = True
            first_page = entry.rid.page
        last_page = entry.rid.page
    if have_key:
        spans.append((current_key, first_page, last_page))
    return spans


def dc_cluster_count(index: Index, count_first_key: bool = True) -> int:
    """Algorithm DC's cluster counter ``CC`` (Section 3.2).

    ``CC`` is incremented when "the first page containing the records of the
    next key value is the same or a higher page than the last page
    containing the records of the previous key value".  The paper does not
    say how the very first key is treated; since ``CC/I`` is meant to reach
    1 for a perfectly clustered index, we count the first key as clustered
    by default (``count_first_key=True``).
    """
    spans = key_page_spans(index)
    if not spans:
        return 0
    cc = 1 if count_first_key else 0
    for (_k1, _first1, last_prev), (_k2, first_next, _last2) in zip(
        spans, spans[1:]
    ):
        if first_next >= last_prev:
            cc += 1
    return cc
