"""Page-reference traces extracted from index scans.

The single input shared by every algorithm in the paper is the sequence of
data-page numbers visited when index entries are read in key order.  This
subpackage turns an :class:`repro.storage.Index` (plus optional start/stop
key conditions) into a :class:`ReferenceTrace` and computes the trace-level
statistics the baseline algorithms need (jump counts, the DC cluster
counter).
"""

from repro.trace.locality import (
    LocalitySummary,
    locality_by_window,
    reuse_distance_histogram,
    run_lengths,
    summarize_locality,
)
from repro.trace.paper_scale import (
    PAPER_SCALE_PAGES,
    PAPER_SCALE_REFS,
    PaperScaleSpec,
    PaperScaleTrace,
    paper_scale_source,
)
from repro.trace.reference import ReferenceTrace
from repro.trace.stats import (
    B_SML_DEFAULT,
    clustering_factor,
    dc_cluster_count,
    distinct_pages,
    fetches_with_single_buffer,
    jump_count,
    key_page_spans,
    min_modeled_buffer,
)

__all__ = [
    "B_SML_DEFAULT",
    "LocalitySummary",
    "PAPER_SCALE_PAGES",
    "PAPER_SCALE_REFS",
    "PaperScaleSpec",
    "PaperScaleTrace",
    "ReferenceTrace",
    "paper_scale_source",
    "clustering_factor",
    "dc_cluster_count",
    "distinct_pages",
    "fetches_with_single_buffer",
    "jump_count",
    "key_page_spans",
    "locality_by_window",
    "min_modeled_buffer",
    "reuse_distance_histogram",
    "run_lengths",
    "summarize_locality",
]
