"""The estimation engine: the serving side of the EPFIS split.

The paper separates statistics *collection* (LRU-Fit, run while "statistics
are being gathered for other purposes") from statistics *consumption*
(Est-IO, run on every optimizer call).  :class:`EstimationEngine` is the
consumption side packaged as one long-lived object, the way a query
compiler would hold it:

* it reads catalog records through a :class:`~repro.catalog.CatalogStore`
  (or a plain in-memory :class:`~repro.catalog.SystemCatalog`),
* it resolves ``(index_name, estimator_name)`` to a *bound* estimator via
  the estimator registry, caching the binding in a bounded LRU so repeated
  compilations of the same shape pay construction cost once,
* it invalidates those bindings exactly when the underlying statistics
  change (the store's generation counter moves),
* it counts calls, estimates, and wall-clock latency per estimator, the
  observability hook a high-traffic deployment graphs first,
* and — when configured with a ``fallback_chain`` and/or a
  ``breaker_policy`` — it serves in *degraded mode*: a failing estimator
  trips a per-name circuit breaker and the next chain member answers
  instead, so the optimizer never sees an exception as long as any
  member can produce an estimate (see DESIGN.md, "Resilience
  architecture").
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.catalog.catalog import IndexStatistics, SystemCatalog
from repro.catalog.store import CatalogStore
from repro.errors import EngineError, ReproError
from repro.estimators.base import PageFetchEstimator
from repro.estimators.registry import available_estimators, get_estimator
from repro.obs import instruments
from repro.obs.metrics import (
    NS_TO_SECONDS,
    MetricsRegistry,
    global_registry,
)
from repro.obs.tracing import span as obs_span
from repro.resilience.breaker import BreakerPolicy, CircuitBreaker
from repro.types import ScanSelectivity

#: Bound (index, estimator) pairs kept alive per engine.
DEFAULT_ESTIMATOR_CACHE = 256


def _bind_engine_families(registry: MetricsRegistry) -> Dict[str, object]:
    """Resolve the per-estimator serving families on ``registry`` once."""
    return {
        "latency": instruments.engine_call_latency(registry),
        "estimates": instruments.engine_estimates(registry),
        "errors": instruments.engine_errors(registry),
        "degraded": instruments.engine_degraded_serves(registry),
    }


@dataclass
class EstimatorCallStats:
    """Serving counters for one estimator name.

    ``errors`` counts calls that raised; ``degraded_serves`` counts
    requests that *asked* for this estimator but were answered by a
    fallback-chain member instead.  Both stay zero outside degraded-mode
    configurations.
    """

    calls: int = 0
    estimates: int = 0
    seconds: float = 0.0
    errors: int = 0
    degraded_serves: int = 0

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict copy (for logging/metrics export)."""
        mean_us = (
            1e6 * self.seconds / self.calls if self.calls else 0.0
        )
        return {
            "calls": self.calls,
            "estimates": self.estimates,
            "seconds": self.seconds,
            "mean_call_us": mean_us,
            "errors": self.errors,
            "degraded_serves": self.degraded_serves,
        }


@dataclass(frozen=True)
class _CacheKey:
    index_name: str
    estimator_name: str
    options: Tuple[Tuple[str, object], ...] = field(default=())
    #: Replacement policy of the catalog record the binding was built
    #: from.  Keying on it means refitting an index under another policy
    #: (same name, same generation for in-memory catalogs) can never
    #: serve an estimator bound to the old policy's curve.
    policy: str = "lru"


class EstimationEngine:
    """Answer page-fetch queries from catalog statistics, by name.

    ``catalog`` may be a :class:`~repro.catalog.SystemCatalog` (static
    in-memory statistics), a :class:`~repro.catalog.CatalogStore`
    (file-backed, auto-reloading — including the resilient subclass), or
    a path (wrapped in a store).

    ``fallback_chain`` names registry estimators tried, in order, when a
    requested estimator fails (the requested name is always tried
    first); ``breaker_policy`` adds a per-estimator circuit breaker so a
    repeatedly failing member is skipped until its cooldown elapses.
    With neither configured the engine behaves exactly as before:
    estimator exceptions propagate unchanged.
    """

    def __init__(
        self,
        catalog: Union[SystemCatalog, CatalogStore, str, Path],
        cache_size: int = DEFAULT_ESTIMATOR_CACHE,
        fallback_chain: Optional[Sequence[str]] = None,
        breaker_policy: Optional[BreakerPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if cache_size < 1:
            raise EngineError(f"cache_size must be >= 1, got {cache_size}")
        if isinstance(catalog, (str, Path)):
            catalog = CatalogStore(catalog)
        if not isinstance(catalog, (SystemCatalog, CatalogStore)):
            raise EngineError(
                f"catalog must be a SystemCatalog, CatalogStore, or path, "
                f"got {type(catalog).__name__}"
            )
        self._source = catalog
        self._cache_size = cache_size
        self._bound: "OrderedDict[_CacheKey, PageFetchEstimator]" = (
            OrderedDict()
        )
        self._bound_generation = -1
        # Serving counters live on a metrics registry: the engine's own
        # always-enabled one by default (``metrics()`` stays truthful
        # with no setup) or a caller-provided registry.  Latencies are
        # accumulated as integer nanoseconds inside the registry and
        # converted to seconds only in views/snapshots, so a nanosecond
        # can never vanish into a large float running total.  Every
        # record is mirrored onto the process-global registry (no-op
        # while it is disabled) so exports carry the engine families.
        self._registry = (
            registry if registry is not None else MetricsRegistry()
        )
        self._fam = _bind_engine_families(self._registry)
        shared = global_registry()
        self._fam_mirror = (
            _bind_engine_families(shared)
            if shared is not self._registry
            else None
        )
        if fallback_chain is not None:
            known = set(available_estimators())
            normalized = []
            for name in fallback_chain:
                key = str(name).lower()
                if key not in known:
                    raise EngineError(
                        f"unknown fallback estimator {name!r}; "
                        f"available: {', '.join(sorted(known))}"
                    )
                if key not in normalized:
                    normalized.append(key)
            fallback_chain = tuple(normalized)
        self._fallback: Optional[Tuple[str, ...]] = fallback_chain
        self._breaker_policy = breaker_policy
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._clock = clock

    # ------------------------------------------------------------------
    # Catalog access
    # ------------------------------------------------------------------
    @property
    def source(self) -> Union[SystemCatalog, CatalogStore]:
        """The catalog (or store) this engine serves from."""
        return self._source

    def catalog(self) -> SystemCatalog:
        """The current catalog snapshot (reloaded if file-backed)."""
        if isinstance(self._source, CatalogStore):
            return self._source.catalog()
        return self._source

    def statistics(self, index_name: str) -> IndexStatistics:
        """The catalog record for one index."""
        return self.catalog().get(index_name)

    def index_names(self) -> List[str]:
        """Sorted names of every index the engine can estimate for."""
        return list(self.catalog())

    def _sync_with_source(self) -> None:
        """Drop bound estimators when the backing statistics changed."""
        if isinstance(self._source, CatalogStore):
            self._source.catalog()  # refresh the stamp/generation
            generation = self._source.generation
            if generation != self._bound_generation:
                self._bound.clear()
                self._bound_generation = generation

    # ------------------------------------------------------------------
    # Estimator binding
    # ------------------------------------------------------------------
    def estimator(
        self, index_name: str, estimator_name: str, **options
    ) -> PageFetchEstimator:
        """The bound estimator for ``(index_name, estimator_name)``.

        Bindings are cached (LRU, ``cache_size`` entries) and rebuilt
        automatically after the catalog file changes; ``options`` are
        forwarded to the registry factory and participate in the cache
        key, as does the record's fitted ``policy`` (so an in-place
        refit under another replacement policy invalidates the binding
        even when no file generation ticked).
        """
        self._sync_with_source()
        stats = self.statistics(index_name)
        key = _CacheKey(
            index_name,
            estimator_name,
            tuple(sorted(options.items())),
            policy=stats.policy,
        )
        bound = self._bound.get(key)
        if bound is None:
            bound = get_estimator(estimator_name, stats, **options)
            self._bound[key] = bound
            while len(self._bound) > self._cache_size:
                self._bound.popitem(last=False)
        else:
            self._bound.move_to_end(key)
        return bound

    # ------------------------------------------------------------------
    # Degraded-mode serving
    # ------------------------------------------------------------------
    @property
    def fallback_chain(self) -> Optional[Tuple[str, ...]]:
        """The configured fallback estimator names (normalized)."""
        return self._fallback

    def _resilient(self) -> bool:
        return (
            self._fallback is not None
            or self._breaker_policy is not None
        )

    def _breaker_for(self, name: str) -> Optional[CircuitBreaker]:
        if self._breaker_policy is None:
            return None
        breaker = self._breakers.get(name)
        if breaker is None:
            breaker = CircuitBreaker(
                self._breaker_policy,
                clock=self._clock,
                registry=self._registry,
                name=name,
            )
            self._breakers[name] = breaker
        return breaker

    def _serve(
        self,
        index_name: str,
        estimator_name: str,
        options: dict,
        call: Callable[[PageFetchEstimator], Tuple[object, int]],
    ):
        """Run ``call`` against the first chain member that can answer.

        ``call`` maps a bound estimator to ``(result, estimate_count)``.
        Without resilience configured this is the legacy single-try
        path — exceptions propagate unchanged.
        """
        if not self._resilient():
            with obs_span(
                "engine-serve",
                index=index_name,
                estimator=estimator_name,
            ):
                bound = self.estimator(
                    index_name, estimator_name, **options
                )
                started = time.perf_counter_ns()
                result, count = call(bound)
                self._record(
                    estimator_name,
                    count,
                    time.perf_counter_ns() - started,
                )
            return result
        requested = estimator_name.lower()
        chain = [requested]
        chain.extend(
            name for name in (self._fallback or ()) if name != requested
        )
        last_error: Optional[Exception] = None
        skipped: List[str] = []
        for name in chain:
            breaker = self._breaker_for(name)
            if breaker is not None and not breaker.allow():
                skipped.append(name)
                continue
            try:
                with obs_span(
                    "engine-serve", index=index_name, estimator=name
                ):
                    bound = self.estimator(
                        index_name,
                        name,
                        **(options if name == requested else {}),
                    )
                    started = time.perf_counter_ns()
                    result, count = call(bound)
                    elapsed = time.perf_counter_ns() - started
            except ReproError as exc:
                last_error = exc
                self._count("errors", name)
                if breaker is not None:
                    breaker.record_failure()
                continue
            if breaker is not None:
                breaker.record_success()
            self._record(name, count, elapsed)
            if name != requested:
                self._count("degraded", requested)
            return result
        raise EngineError(
            f"no estimator in the chain {chain} could answer for index "
            f"{index_name!r}"
            + (f" (breaker-open: {skipped})" if skipped else "")
            + (f"; last error: {last_error}" if last_error else "")
        ) from last_error

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def estimate(
        self,
        index_name: str,
        estimator_name: str,
        selectivity: ScanSelectivity,
        buffer_pages: int,
        **options,
    ) -> float:
        """One page-fetch estimate (the optimizer's per-plan question)."""
        return self._serve(
            index_name,
            estimator_name,
            options,
            lambda bound: (bound.estimate(selectivity, buffer_pages), 1),
        )

    def estimate_many(
        self,
        index_name: str,
        estimator_name: str,
        pairs: Iterable[Tuple[ScanSelectivity, int]],
        **options,
    ) -> List[float]:
        """Batched estimates through the estimator's fast path."""
        pairs = list(pairs)
        return self._serve(
            index_name,
            estimator_name,
            options,
            lambda bound: (bound.estimate_many(pairs), len(pairs)),
        )

    def estimate_grid(
        self,
        index_name: str,
        estimator_name: str,
        selectivities: Sequence[ScanSelectivity],
        buffer_pages: Sequence[int],
        **options,
    ) -> List[List[float]]:
        """Cross-product estimates, one row per buffer size."""
        return self._serve(
            index_name,
            estimator_name,
            options,
            lambda bound: (
                bound.estimate_grid(selectivities, buffer_pages),
                len(selectivities) * len(buffer_pages),
            ),
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _count(self, family: str, estimator_name: str) -> None:
        name = estimator_name.lower()
        self._fam[family].labels(estimator=name).inc()
        if self._fam_mirror is not None:
            self._fam_mirror[family].labels(estimator=name).inc()

    def _record(
        self, estimator_name: str, estimates: int, elapsed_ns: int
    ) -> None:
        name = estimator_name.lower()
        for fams in (self._fam, self._fam_mirror):
            if fams is None:
                continue
            fams["latency"].labels(estimator=name).observe(elapsed_ns)
            if estimates:
                fams["estimates"].labels(estimator=name).inc(estimates)

    def _served_names(self) -> List[str]:
        names = set()
        for family in self._fam.values():
            names.update(key[0] for key in family.children())
        return sorted(names)

    def _stats_view(self, name: str) -> EstimatorCallStats:
        latency = self._fam["latency"].labels(estimator=name)
        return EstimatorCallStats(
            calls=latency.count,
            estimates=self._fam["estimates"].labels(
                estimator=name
            ).value,
            seconds=latency.sum * NS_TO_SECONDS,
            errors=self._fam["errors"].labels(estimator=name).value,
            degraded_serves=self._fam["degraded"].labels(
                estimator=name
            ).value,
        )

    def metrics(self) -> Dict[str, Dict[str, float]]:
        """Per-estimator serving counters, as plain dicts.

        A view over the engine's metrics registry shaped exactly like
        the pre-registry dicts (pinned by the equality tests); latency
        sums are exact integer nanoseconds underneath, converted to
        seconds here.
        """
        return {
            name: self._stats_view(name).snapshot()
            for name in self._served_names()
        }

    def breaker_states(self) -> Dict[str, str]:
        """Current circuit-breaker state per estimator name.

        Empty when no breaker policy is configured; states are
        ``closed``, ``open``, or ``half-open`` (the open → half-open
        transition happens lazily as the cooldown elapses).
        """
        return {
            name: breaker.state
            for name, breaker in sorted(self._breakers.items())
        }

    def resilience_metrics(self) -> Dict[str, object]:
        """One truthful roll-up of every degradation this engine saw.

        Combines per-estimator degraded serves and errors, breaker
        states, and — when the catalog source is a
        :class:`~repro.resilience.store.ResilientCatalogStore` — its
        retry/quarantine/stale-serve counters under ``"catalog"``.
        """
        rollup: Dict[str, object] = {
            "degraded_serves": sum(
                child.value
                for child in self._fam["degraded"].children().values()
            ),
            "errors": sum(
                child.value
                for child in self._fam["errors"].children().values()
            ),
            "breaker_state": self.breaker_states(),
        }
        store_metrics = getattr(self._source, "metrics", None)
        if callable(store_metrics):
            rollup["catalog"] = store_metrics()
        return rollup

    def cached_estimators(self) -> int:
        """Number of currently bound (index, estimator) pairs."""
        return len(self._bound)

    def reset_metrics(self) -> None:
        """Zero the serving counters (e.g. between load phases)."""
        for family in self._fam.values():
            family.clear()

    def __repr__(self) -> str:
        return (
            f"EstimationEngine(source={self._source!r}, "
            f"bound={len(self._bound)})"
        )
