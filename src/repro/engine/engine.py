"""The estimation engine: the serving side of the EPFIS split.

The paper separates statistics *collection* (LRU-Fit, run while "statistics
are being gathered for other purposes") from statistics *consumption*
(Est-IO, run on every optimizer call).  :class:`EstimationEngine` is the
consumption side packaged as one long-lived object, the way a query
compiler would hold it:

* it reads catalog records through a :class:`~repro.catalog.CatalogStore`
  (or a plain in-memory :class:`~repro.catalog.SystemCatalog`),
* it resolves ``(index_name, estimator_name)`` to a *bound* estimator via
  the estimator registry, caching the binding in a bounded LRU so repeated
  compilations of the same shape pay construction cost once,
* it invalidates those bindings exactly when the underlying statistics
  change (the store's generation counter moves),
* it counts calls, estimates, and wall-clock latency per estimator, the
  observability hook a high-traffic deployment graphs first.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from repro.catalog.catalog import IndexStatistics, SystemCatalog
from repro.catalog.store import CatalogStore
from repro.errors import EngineError
from repro.estimators.base import PageFetchEstimator
from repro.estimators.registry import get_estimator
from repro.types import ScanSelectivity

#: Bound (index, estimator) pairs kept alive per engine.
DEFAULT_ESTIMATOR_CACHE = 256


@dataclass
class EstimatorCallStats:
    """Serving counters for one estimator name."""

    calls: int = 0
    estimates: int = 0
    seconds: float = 0.0

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict copy (for logging/metrics export)."""
        mean_us = (
            1e6 * self.seconds / self.calls if self.calls else 0.0
        )
        return {
            "calls": self.calls,
            "estimates": self.estimates,
            "seconds": self.seconds,
            "mean_call_us": mean_us,
        }


@dataclass(frozen=True)
class _CacheKey:
    index_name: str
    estimator_name: str
    options: Tuple[Tuple[str, object], ...] = field(default=())


class EstimationEngine:
    """Answer page-fetch queries from catalog statistics, by name.

    ``catalog`` may be a :class:`~repro.catalog.SystemCatalog` (static
    in-memory statistics), a :class:`~repro.catalog.CatalogStore`
    (file-backed, auto-reloading), or a path (wrapped in a store).
    """

    def __init__(
        self,
        catalog: Union[SystemCatalog, CatalogStore, str, Path],
        cache_size: int = DEFAULT_ESTIMATOR_CACHE,
    ) -> None:
        if cache_size < 1:
            raise EngineError(f"cache_size must be >= 1, got {cache_size}")
        if isinstance(catalog, (str, Path)):
            catalog = CatalogStore(catalog)
        if not isinstance(catalog, (SystemCatalog, CatalogStore)):
            raise EngineError(
                f"catalog must be a SystemCatalog, CatalogStore, or path, "
                f"got {type(catalog).__name__}"
            )
        self._source = catalog
        self._cache_size = cache_size
        self._bound: "OrderedDict[_CacheKey, PageFetchEstimator]" = (
            OrderedDict()
        )
        self._bound_generation = -1
        self._metrics: Dict[str, EstimatorCallStats] = {}

    # ------------------------------------------------------------------
    # Catalog access
    # ------------------------------------------------------------------
    @property
    def source(self) -> Union[SystemCatalog, CatalogStore]:
        """The catalog (or store) this engine serves from."""
        return self._source

    def catalog(self) -> SystemCatalog:
        """The current catalog snapshot (reloaded if file-backed)."""
        if isinstance(self._source, CatalogStore):
            return self._source.catalog()
        return self._source

    def statistics(self, index_name: str) -> IndexStatistics:
        """The catalog record for one index."""
        return self.catalog().get(index_name)

    def index_names(self) -> List[str]:
        """Sorted names of every index the engine can estimate for."""
        return list(self.catalog())

    def _sync_with_source(self) -> None:
        """Drop bound estimators when the backing statistics changed."""
        if isinstance(self._source, CatalogStore):
            self._source.catalog()  # refresh the stamp/generation
            generation = self._source.generation
            if generation != self._bound_generation:
                self._bound.clear()
                self._bound_generation = generation

    # ------------------------------------------------------------------
    # Estimator binding
    # ------------------------------------------------------------------
    def estimator(
        self, index_name: str, estimator_name: str, **options
    ) -> PageFetchEstimator:
        """The bound estimator for ``(index_name, estimator_name)``.

        Bindings are cached (LRU, ``cache_size`` entries) and rebuilt
        automatically after the catalog file changes; ``options`` are
        forwarded to the registry factory and participate in the cache
        key.
        """
        self._sync_with_source()
        key = _CacheKey(
            index_name, estimator_name, tuple(sorted(options.items()))
        )
        bound = self._bound.get(key)
        if bound is None:
            stats = self.statistics(index_name)
            bound = get_estimator(estimator_name, stats, **options)
            self._bound[key] = bound
            while len(self._bound) > self._cache_size:
                self._bound.popitem(last=False)
        else:
            self._bound.move_to_end(key)
        return bound

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def estimate(
        self,
        index_name: str,
        estimator_name: str,
        selectivity: ScanSelectivity,
        buffer_pages: int,
        **options,
    ) -> float:
        """One page-fetch estimate (the optimizer's per-plan question)."""
        bound = self.estimator(index_name, estimator_name, **options)
        started = time.perf_counter()
        result = bound.estimate(selectivity, buffer_pages)
        self._record(estimator_name, 1, time.perf_counter() - started)
        return result

    def estimate_many(
        self,
        index_name: str,
        estimator_name: str,
        pairs: Iterable[Tuple[ScanSelectivity, int]],
        **options,
    ) -> List[float]:
        """Batched estimates through the estimator's fast path."""
        bound = self.estimator(index_name, estimator_name, **options)
        pairs = list(pairs)
        started = time.perf_counter()
        results = bound.estimate_many(pairs)
        self._record(
            estimator_name, len(pairs), time.perf_counter() - started
        )
        return results

    def estimate_grid(
        self,
        index_name: str,
        estimator_name: str,
        selectivities: Sequence[ScanSelectivity],
        buffer_pages: Sequence[int],
        **options,
    ) -> List[List[float]]:
        """Cross-product estimates, one row per buffer size."""
        bound = self.estimator(index_name, estimator_name, **options)
        started = time.perf_counter()
        results = bound.estimate_grid(selectivities, buffer_pages)
        self._record(
            estimator_name,
            len(selectivities) * len(buffer_pages),
            time.perf_counter() - started,
        )
        return results

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _record(self, estimator_name: str, estimates: int, seconds: float
                ) -> None:
        stats = self._metrics.setdefault(
            estimator_name.lower(), EstimatorCallStats()
        )
        stats.calls += 1
        stats.estimates += estimates
        stats.seconds += seconds

    def metrics(self) -> Dict[str, Dict[str, float]]:
        """Per-estimator serving counters, as plain dicts."""
        return {
            name: stats.snapshot()
            for name, stats in sorted(self._metrics.items())
        }

    def cached_estimators(self) -> int:
        """Number of currently bound (index, estimator) pairs."""
        return len(self._bound)

    def reset_metrics(self) -> None:
        """Zero the serving counters (e.g. between load phases)."""
        self._metrics.clear()

    def __repr__(self) -> str:
        return (
            f"EstimationEngine(source={self._source!r}, "
            f"bound={len(self._bound)})"
        )
