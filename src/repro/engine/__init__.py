"""Estimation serving: catalog records in, page-fetch estimates out.

The engine is the query-compilation half of the paper packaged for a
long-running process: a :class:`EstimationEngine` holds a catalog (file or
in-memory), binds named estimators to per-index statistics through the
estimator registry, caches the bindings, and counts per-estimator calls
and latency.  See DESIGN.md, "Estimation serving architecture".
"""

from repro.engine.engine import (
    DEFAULT_ESTIMATOR_CACHE,
    EstimationEngine,
    EstimatorCallStats,
)

__all__ = [
    "DEFAULT_ESTIMATOR_CACHE",
    "EstimationEngine",
    "EstimatorCallStats",
]
