"""Table-aware index wrapper: the object every estimator consumes.

An :class:`Index` ties a :class:`~repro.storage.btree.BTreeIndex` to the
table and column it indexes.  Its central product is the *index-order page
reference sequence* — "A full scan of all the index entries produces the
sequence of page numbers as stored in the index" (Section 4.1) — which
LRU-Fit, the cluster-ratio baselines, and the ground-truth simulator all
work from.

Duplicate-key entry order
-------------------------
Within one key value, entries are kept in the order they were added to the
index (see :mod:`repro.storage.btree`).  Generators that control clustering
add entries at record-creation time via :meth:`Index.add`;
:meth:`Index.build` bulk-builds from an existing table in physical order,
which yields the "sorted RIDs per key" variant the paper defers to future
work — useful as an ablation, so both paths are provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import BTreeError
from repro.storage.btree import BTreeIndex, KeyBound
from repro.storage.table import Table
from repro.types import RID


@dataclass(frozen=True)
class IndexEntry:
    """One leaf entry: a key value and the RID of a record holding it."""

    key: Any
    rid: RID


class Index:
    """A named B-tree index over one column of a table."""

    def __init__(
        self,
        name: str,
        table: Table,
        column: str,
        fanout: int = 64,
    ) -> None:
        table.column_index(column)  # validates the column exists
        self._name = name
        self._table = table
        self._column = column
        self._btree = BTreeIndex(fanout=fanout)

    @classmethod
    def build(
        cls,
        table: Table,
        column: str,
        name: Optional[str] = None,
        fanout: int = 64,
    ) -> "Index":
        """Bulk-build from ``table`` in physical scan order.

        Note: this orders duplicate-key RIDs by page (ascending), i.e. the
        sorted-RID variant.  Use incremental :meth:`add` during data
        generation to preserve creation order instead.
        """
        index = cls(name or f"{table.name}.{column}", table, column, fanout)
        col = table.column_index(column)
        for rid, row in table.scan():
            index.add(row[col], rid)
        return index

    @property
    def name(self) -> str:
        """The index's display name."""
        return self._name

    @property
    def table(self) -> Table:
        """The table this index covers."""
        return self._table

    @property
    def column(self) -> str:
        """The indexed column name."""
        return self._column

    @property
    def btree(self) -> BTreeIndex:
        """The underlying B+-tree."""
        return self._btree

    @property
    def entry_count(self) -> int:
        """Number of index entries (equals N when complete)."""
        return len(self._btree)

    def add(self, key: Any, rid: RID) -> None:
        """Add one entry (called while records are being created)."""
        self._btree.insert(key, rid)

    def remove(self, key: Any, rid: RID) -> None:
        """Remove the entry for ``(key, rid)``.

        Index maintenance only — the heap record itself is untouched
        (real systems mark slots dead and reclaim lazily; page-fetch
        estimation cares only about which entries a scan visits).
        """
        self._btree.delete(key, rid)

    def check_complete(self) -> None:
        """Verify the index covers every record of its table exactly once."""
        if len(self._btree) != self._table.record_count:
            raise BTreeError(
                f"index {self._name!r} has {len(self._btree)} entries but "
                f"table {self._table.name!r} has "
                f"{self._table.record_count} records"
            )

    # ------------------------------------------------------------------
    # Entry iteration
    # ------------------------------------------------------------------
    def entries(
        self,
        start: Optional[KeyBound] = None,
        stop: Optional[KeyBound] = None,
    ) -> Iterator[IndexEntry]:
        """Entries in key order, optionally restricted to a key range."""
        for key, rid in self._btree.range(start, stop):
            yield IndexEntry(key, rid)

    def page_sequence(
        self,
        start: Optional[KeyBound] = None,
        stop: Optional[KeyBound] = None,
    ) -> List[int]:
        """Data-page numbers in index order — the scan's reference string."""
        return [rid.page for _key, rid in self._btree.range(start, stop)]

    # ------------------------------------------------------------------
    # Statistics (the paper's I, per-key counts, range cardinalities)
    # ------------------------------------------------------------------
    def distinct_key_count(self) -> int:
        """The paper's ``I``."""
        return self._btree.distinct_key_count()

    def key_counts(self) -> Dict[Any, int]:
        """Map each distinct key to its number of records (duplicates)."""
        counts: Dict[Any, int] = {}
        for key, _rid in self._btree.items():
            counts[key] = counts.get(key, 0) + 1
        return counts

    def sorted_keys(self) -> List[Any]:
        """Distinct keys in ascending order."""
        return list(self._btree.keys())

    def count_in_range(
        self,
        start: Optional[KeyBound] = None,
        stop: Optional[KeyBound] = None,
    ) -> int:
        """Number of entries with keys in the range (exact cardinality)."""
        return sum(1 for _ in self._btree.range(start, stop))

    def __repr__(self) -> str:
        return (
            f"Index({self._name!r}, table={self._table.name!r}, "
            f"column={self._column!r}, entries={self.entry_count})"
        )
