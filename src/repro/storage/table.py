"""Tables: a named schema over a heap file.

Rows are plain tuples aligned with the schema's column names.  The table is
what the optimizer ultimately costs access plans against: a full table scan
fetches exactly ``pages`` pages (Section 2), while index scans go through
:class:`repro.storage.index.Index` and the buffer model.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence, Tuple

from repro.errors import StorageError
from repro.storage.heapfile import HeapFile
from repro.types import RID, TableShape


class Table:
    """A named, schema-carrying heap table."""

    def __init__(
        self, name: str, columns: Sequence[str], records_per_page: int
    ) -> None:
        if not name:
            raise StorageError("table name must be non-empty")
        if not columns:
            raise StorageError(f"table {name!r} must have at least one column")
        if len(set(columns)) != len(columns):
            raise StorageError(
                f"table {name!r} has duplicate column names: {list(columns)}"
            )
        self._name = name
        self._columns: Tuple[str, ...] = tuple(columns)
        self._heap = HeapFile(records_per_page)

    @property
    def name(self) -> str:
        """The table name."""
        return self._name

    @property
    def columns(self) -> Tuple[str, ...]:
        """Column names in schema order."""
        return self._columns

    @property
    def heap(self) -> HeapFile:
        """The underlying heap file (placement-aware generators use this)."""
        return self._heap

    @property
    def page_count(self) -> int:
        """Allocated pages (the paper's T)."""
        return self._heap.page_count

    @property
    def record_count(self) -> int:
        """Stored records (the paper's N)."""
        return self._heap.record_count

    @property
    def records_per_page(self) -> int:
        """Page capacity in slots."""
        return self._heap.records_per_page

    def shape(self) -> TableShape:
        """The paper's ``(T, N)`` pair for this table."""
        return TableShape(pages=self.page_count, records=self.record_count)

    def column_index(self, column: str) -> int:
        """Position of ``column`` in the schema."""
        try:
            return self._columns.index(column)
        except ValueError:
            raise StorageError(
                f"table {self._name!r} has no column {column!r}; "
                f"columns are {list(self._columns)}"
            ) from None

    def _check_row(self, row: Sequence[Any]) -> Tuple[Any, ...]:
        if len(row) != len(self._columns):
            raise StorageError(
                f"row arity {len(row)} does not match schema arity "
                f"{len(self._columns)} of table {self._name!r}"
            )
        return tuple(row)

    def insert(self, row: Sequence[Any]) -> RID:
        """Append ``row`` at the heap tail; return its RID."""
        return self._heap.append(self._check_row(row))

    def place(self, page_id: int, row: Sequence[Any]) -> RID:
        """Insert ``row`` on a specific page (clustering generators)."""
        return self._heap.place(page_id, self._check_row(row))

    def get(self, rid: RID) -> Tuple[Any, ...]:
        """Resolve a RID to its row tuple."""
        return self._heap.get(rid)

    def value(self, rid: RID, column: str) -> Any:
        """The value of ``column`` in the record at ``rid``."""
        return self.get(rid)[self.column_index(column)]

    def scan(self) -> Iterator[Tuple[RID, Tuple[Any, ...]]]:
        """Full table scan in physical order."""
        return self._heap.scan()

    def column_values(self, column: str) -> Iterator[Any]:
        """All values of ``column`` in physical order."""
        idx = self.column_index(column)
        for _rid, row in self._heap.scan():
            yield row[idx]

    def __repr__(self) -> str:
        return (
            f"Table({self._name!r}, columns={list(self._columns)}, "
            f"pages={self.page_count}, records={self.record_count})"
        )
