"""A slotted data page.

Pages are the unit of buffering and of fetch counting throughout the paper:
a page is "accessed" when at least one of its records is examined, and
"fetched" when it must be read from disk into the buffer pool.  This class
models the slot directory only — record payloads are arbitrary Python
objects, because nothing in the estimation problem depends on byte layout.
"""

from __future__ import annotations

from typing import Any, Iterator, List

from repro.errors import PageFullError, RecordNotFoundError


class Page:
    """A fixed-capacity slotted page holding record payloads."""

    __slots__ = ("_page_id", "_capacity", "_records")

    def __init__(self, page_id: int, capacity: int) -> None:
        if page_id < 0:
            raise ValueError(f"page_id must be >= 0, got {page_id}")
        if capacity < 1:
            raise ValueError(f"page capacity must be >= 1, got {capacity}")
        self._page_id = page_id
        self._capacity = capacity
        self._records: List[Any] = []

    @property
    def page_id(self) -> int:
        """This page's id within its heap file."""
        return self._page_id

    @property
    def capacity(self) -> int:
        """Maximum number of record slots on this page."""
        return self._capacity

    @property
    def record_count(self) -> int:
        """Occupied slots."""
        return len(self._records)

    @property
    def is_full(self) -> bool:
        """True when no slot is free."""
        return len(self._records) >= self._capacity

    @property
    def is_empty(self) -> bool:
        """True when no record is stored."""
        return not self._records

    @property
    def free_slots(self) -> int:
        """Remaining free slots."""
        return self._capacity - len(self._records)

    def insert(self, record: Any) -> int:
        """Append ``record``; return its slot number."""
        if self.is_full:
            raise PageFullError(
                f"page {self._page_id} is full ({self._capacity} slots)"
            )
        self._records.append(record)
        return len(self._records) - 1

    def get(self, slot: int) -> Any:
        """Return the record stored at ``slot``."""
        if not 0 <= slot < len(self._records):
            raise RecordNotFoundError(
                f"page {self._page_id} has no record in slot {slot}"
            )
        return self._records[slot]

    def records(self) -> Iterator[Any]:
        """Iterate payloads in slot order."""
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return (
            f"Page(id={self._page_id}, {len(self._records)}/"
            f"{self._capacity} slots)"
        )
