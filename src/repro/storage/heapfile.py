"""A heap file: the page-structured storage behind a table.

Two insertion paths are provided:

* :meth:`HeapFile.append` — normal heap behaviour: fill the tail page, grow
  the file when it is full.
* :meth:`HeapFile.place` — targeted placement on a specific page.  The
  clustering generators (:mod:`repro.datagen.window`) need this: the degree
  of clustering between index order and page order is exactly what they
  control, so they must decide which page receives each record.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Tuple

from repro.errors import PageFullError, RecordNotFoundError, StorageError
from repro.storage.page import Page
from repro.types import RID


class HeapFile:
    """A growable sequence of fixed-capacity pages."""

    def __init__(self, records_per_page: int) -> None:
        if records_per_page < 1:
            raise StorageError(
                f"records_per_page must be >= 1, got {records_per_page}"
            )
        self._records_per_page = records_per_page
        self._pages: List[Page] = []
        self._record_count = 0

    @property
    def records_per_page(self) -> int:
        """Page capacity in slots (the paper's ``R`` for uniform tables)."""
        return self._records_per_page

    @property
    def page_count(self) -> int:
        """Number of allocated pages (the paper's ``T``)."""
        return len(self._pages)

    @property
    def record_count(self) -> int:
        """Number of stored records (the paper's ``N``)."""
        return self._record_count

    def _grow(self) -> Page:
        page = Page(len(self._pages), self._records_per_page)
        self._pages.append(page)
        return page

    def ensure_pages(self, count: int) -> None:
        """Pre-allocate pages so that at least ``count`` exist."""
        while len(self._pages) < count:
            self._grow()

    def append(self, record: Any) -> RID:
        """Insert ``record`` at the end of the file; return its RID."""
        if not self._pages or self._pages[-1].is_full:
            page = self._grow()
        else:
            page = self._pages[-1]
        slot = page.insert(record)
        self._record_count += 1
        return RID(page.page_id, slot)

    def place(self, page_id: int, record: Any) -> RID:
        """Insert ``record`` on the specific page ``page_id``.

        The page must already exist (see :meth:`ensure_pages`) and have a
        free slot; :class:`PageFullError` propagates otherwise so callers
        implementing placement policies can react.
        """
        page = self.page(page_id)
        slot = page.insert(record)
        self._record_count += 1
        return RID(page_id, slot)

    def page(self, page_id: int) -> Page:
        """Return the :class:`Page` object with id ``page_id``."""
        if not 0 <= page_id < len(self._pages):
            raise RecordNotFoundError(
                f"heap file has no page {page_id} "
                f"(page count {len(self._pages)})"
            )
        return self._pages[page_id]

    def page_is_full(self, page_id: int) -> bool:
        """True when ``page_id`` has no free slots."""
        return self.page(page_id).is_full

    def get(self, rid: RID) -> Any:
        """Resolve a RID to its record payload."""
        return self.page(rid.page).get(rid.slot)

    def scan(self) -> Iterator[Tuple[RID, Any]]:
        """Iterate every record in physical (page, slot) order."""
        for page in self._pages:
            page_id = page.page_id
            for slot, record in enumerate(page.records()):
                yield RID(page_id, slot), record

    def occupancy(self) -> List[int]:
        """Records per page, in page order (diagnostics and tests)."""
        return [page.record_count for page in self._pages]
