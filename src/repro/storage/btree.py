"""A B+-tree index over ``(key, RID)`` entries.

This is a real tree — splitting leaves and interior nodes, uniform depth,
linked leaves — not a sorted-list stand-in.  Entries with equal keys are
kept in insertion order (the paper's "indexes with sorted RIDs for a given
key value" is explicitly future work in Section 6, so insertion order is the
faithful behaviour), implemented by tagging each entry with a monotonically
increasing sequence number and ordering on ``(key, seq)``.

Keys may be any mutually comparable Python values (ints, floats, strings,
tuples).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import BTreeError
from repro.types import RID

#: Internal ordering key: (user key, insertion sequence number).
_OrderKey = Tuple[Any, int]


class _LeafNode:
    __slots__ = ("order_keys", "rids", "next_leaf")

    def __init__(self) -> None:
        self.order_keys: List[_OrderKey] = []
        self.rids: List[RID] = []
        self.next_leaf: Optional["_LeafNode"] = None


class _InteriorNode:
    __slots__ = ("separators", "children")

    def __init__(self) -> None:
        # children[i] holds entries with order key < separators[i];
        # children[-1] holds the rest.  len(children) == len(separators) + 1.
        self.separators: List[_OrderKey] = []
        self.children: List[Any] = []


@dataclass(frozen=True)
class KeyBound:
    """One end of a key range: a value plus inclusivity."""

    value: Any
    inclusive: bool = True


class BTreeIndex:
    """A B+-tree mapping keys to RIDs with ordered and range iteration."""

    def __init__(self, fanout: int = 64) -> None:
        if fanout < 4:
            raise BTreeError(f"fanout must be >= 4, got {fanout}")
        self._fanout = fanout
        self._root: Any = _LeafNode()
        self._height = 1
        self._size = 0
        self._next_seq = 0

    @property
    def fanout(self) -> int:
        """Maximum entries (leaf) / children (interior) per node."""
        return self._fanout

    @property
    def height(self) -> int:
        """Number of levels including the leaf level."""
        return self._height

    def __len__(self) -> int:
        """Number of stored entries."""
        return self._size

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, key: Any, rid: RID) -> None:
        """Insert an entry; duplicates of ``key`` keep insertion order."""
        order_key = (key, self._next_seq)
        self._next_seq += 1
        split = self._insert_into(self._root, order_key, rid)
        if split is not None:
            separator, new_child = split
            new_root = _InteriorNode()
            new_root.separators = [separator]
            new_root.children = [self._root, new_child]
            self._root = new_root
            self._height += 1
        self._size += 1

    def _insert_into(
        self, node: Any, order_key: _OrderKey, rid: RID
    ) -> Optional[Tuple[_OrderKey, Any]]:
        """Insert recursively; return ``(separator, right_sibling)`` on split."""
        if isinstance(node, _LeafNode):
            pos = bisect_right(node.order_keys, order_key)
            node.order_keys.insert(pos, order_key)
            node.rids.insert(pos, rid)
            if len(node.order_keys) > self._fanout:
                return self._split_leaf(node)
            return None

        child_pos = bisect_right(node.separators, order_key)
        split = self._insert_into(node.children[child_pos], order_key, rid)
        if split is None:
            return None
        separator, new_child = split
        node.separators.insert(child_pos, separator)
        node.children.insert(child_pos + 1, new_child)
        if len(node.children) > self._fanout:
            return self._split_interior(node)
        return None

    def _split_leaf(self, leaf: _LeafNode) -> Tuple[_OrderKey, _LeafNode]:
        mid = len(leaf.order_keys) // 2
        right = _LeafNode()
        right.order_keys = leaf.order_keys[mid:]
        right.rids = leaf.rids[mid:]
        del leaf.order_keys[mid:]
        del leaf.rids[mid:]
        right.next_leaf = leaf.next_leaf
        leaf.next_leaf = right
        return right.order_keys[0], right

    def _split_interior(
        self, node: _InteriorNode
    ) -> Tuple[_OrderKey, _InteriorNode]:
        mid = len(node.separators) // 2
        separator = node.separators[mid]
        right = _InteriorNode()
        right.separators = node.separators[mid + 1:]
        right.children = node.children[mid + 1:]
        del node.separators[mid:]
        del node.children[mid + 1:]
        return separator, right

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    @property
    def _min_fill(self) -> int:
        """Minimum entries (leaf) / children (interior) in non-root nodes."""
        return self._fanout // 2

    def delete(self, key: Any, rid: RID) -> None:
        """Remove one entry matching ``(key, rid)``.

        With duplicate keys pointing at the same RID, the earliest-inserted
        match is removed.  Raises :class:`BTreeError` when no entry
        matches.  Underflowing nodes borrow from or merge with siblings,
        keeping the tree balanced (uniform depth, minimum fill).
        """
        if not self._delete_from(self._root, key, rid):
            raise BTreeError(f"no entry ({key!r}, {rid}) in the index")
        # Collapse a root that lost all separators.
        while (
            isinstance(self._root, _InteriorNode)
            and len(self._root.children) == 1
        ):
            self._root = self._root.children[0]
            self._height -= 1
        self._size -= 1

    def _key_child_span(self, node: _InteriorNode, key: Any):
        """Child indexes that may hold entries with ``key``."""
        lo = bisect_right(node.separators, (key, -1))
        hi = bisect_right(node.separators, (key, self._next_seq))
        return range(lo, hi + 1)

    def _delete_from(self, node: Any, key: Any, rid: RID) -> bool:
        if isinstance(node, _LeafNode):
            lo = bisect_left(node.order_keys, (key, -1))
            hi = bisect_right(node.order_keys, (key, self._next_seq))
            for i in range(lo, hi):
                if node.rids[i] == rid:
                    del node.order_keys[i]
                    del node.rids[i]
                    return True
            return False

        for child_index in self._key_child_span(node, key):
            child = node.children[child_index]
            if self._delete_from(child, key, rid):
                self._rebalance(node, child_index)
                return True
        return False

    def _node_size(self, node: Any) -> int:
        if isinstance(node, _LeafNode):
            return len(node.order_keys)
        return len(node.children)

    def _rebalance(self, parent: _InteriorNode, index: int) -> None:
        """Fix a possibly underflowing ``parent.children[index]``."""
        child = parent.children[index]
        if self._node_size(child) >= self._min_fill:
            return
        if index > 0 and self._node_size(
            parent.children[index - 1]
        ) > self._min_fill:
            self._borrow_from_left(parent, index)
        elif index + 1 < len(parent.children) and self._node_size(
            parent.children[index + 1]
        ) > self._min_fill:
            self._borrow_from_right(parent, index)
        elif index > 0:
            self._merge_children(parent, index - 1)
        elif index + 1 < len(parent.children):
            self._merge_children(parent, index)
        # A root with a single child is collapsed by delete().

    def _borrow_from_left(self, parent: _InteriorNode, index: int) -> None:
        left = parent.children[index - 1]
        child = parent.children[index]
        if isinstance(child, _LeafNode):
            child.order_keys.insert(0, left.order_keys.pop())
            child.rids.insert(0, left.rids.pop())
            parent.separators[index - 1] = child.order_keys[0]
        else:
            # Rotate through the separator.
            child.separators.insert(0, parent.separators[index - 1])
            child.children.insert(0, left.children.pop())
            parent.separators[index - 1] = left.separators.pop()

    def _borrow_from_right(self, parent: _InteriorNode, index: int) -> None:
        right = parent.children[index + 1]
        child = parent.children[index]
        if isinstance(child, _LeafNode):
            child.order_keys.append(right.order_keys.pop(0))
            child.rids.append(right.rids.pop(0))
            parent.separators[index] = right.order_keys[0]
        else:
            child.separators.append(parent.separators[index])
            child.children.append(right.children.pop(0))
            parent.separators[index] = right.separators.pop(0)

    def _merge_children(self, parent: _InteriorNode, left_index: int) -> None:
        """Merge ``children[left_index + 1]`` into ``children[left_index]``."""
        left = parent.children[left_index]
        right = parent.children[left_index + 1]
        if isinstance(left, _LeafNode):
            left.order_keys.extend(right.order_keys)
            left.rids.extend(right.rids)
            left.next_leaf = right.next_leaf
        else:
            left.separators.append(parent.separators[left_index])
            left.separators.extend(right.separators)
            left.children.extend(right.children)
        del parent.separators[left_index]
        del parent.children[left_index + 1]

    # ------------------------------------------------------------------
    # Search and iteration
    # ------------------------------------------------------------------
    def _leftmost_leaf(self) -> _LeafNode:
        node = self._root
        while isinstance(node, _InteriorNode):
            node = node.children[0]
        return node

    def _find_leaf(self, order_key: _OrderKey) -> _LeafNode:
        node = self._root
        while isinstance(node, _InteriorNode):
            node = node.children[bisect_right(node.separators, order_key)]
        return node

    def items(self) -> Iterator[Tuple[Any, RID]]:
        """All ``(key, rid)`` entries in key order (full index scan)."""
        leaf: Optional[_LeafNode] = self._leftmost_leaf()
        while leaf is not None:
            for (key, _seq), rid in zip(leaf.order_keys, leaf.rids):
                yield key, rid
            leaf = leaf.next_leaf

    def range(
        self,
        start: Optional[KeyBound] = None,
        stop: Optional[KeyBound] = None,
    ) -> Iterator[Tuple[Any, RID]]:
        """Entries with keys in the given range, in key order.

        ``start``/``stop`` of ``None`` mean unbounded on that side, so
        ``range()`` is a full index scan.
        """
        if start is None:
            leaf: Optional[_LeafNode] = self._leftmost_leaf()
            pos = 0
        else:
            # Inclusive start: seek the first entry with key >= value, i.e.
            # order key >= (value, -1).  Exclusive: first key > value, i.e.
            # order key > (value, max_seq).
            if start.inclusive:
                probe: _OrderKey = (start.value, -1)
                leaf = self._find_leaf(probe)
                pos = bisect_left(leaf.order_keys, probe)
            else:
                probe = (start.value, self._next_seq)
                leaf = self._find_leaf(probe)
                pos = bisect_right(leaf.order_keys, probe)
            if pos >= len(leaf.order_keys):
                leaf = leaf.next_leaf
                pos = 0

        while leaf is not None:
            order_keys = leaf.order_keys
            rids = leaf.rids
            for i in range(pos, len(order_keys)):
                key = order_keys[i][0]
                if stop is not None:
                    if stop.inclusive:
                        if key > stop.value:
                            return
                    elif key >= stop.value:
                        return
                yield key, rids[i]
            leaf = leaf.next_leaf
            pos = 0

    def search(self, key: Any) -> List[RID]:
        """All RIDs stored under exactly ``key`` (insertion order)."""
        return [
            rid
            for _key, rid in self.range(KeyBound(key, True), KeyBound(key, True))
        ]

    def leaf_count(self) -> int:
        """Number of leaf nodes (index 'pages' at the leaf level)."""
        return sum(1 for _ in self._iter_leaves())

    def range_with_leaves(
        self,
        start: Optional[KeyBound] = None,
        stop: Optional[KeyBound] = None,
    ) -> Iterator[Tuple[int, Any, RID]]:
        """Like :meth:`range`, but also yields a leaf ordinal per entry.

        The ordinal identifies which leaf node (index page) the entry lives
        on, numbering leaves left to right.  Used by the executor to charge
        index-page I/O: a range scan touches one run of consecutive leaves.
        Ordinals are recomputed per call (O(height) amortized via the leaf
        chain), so they stay correct across inserts.
        """
        ordinals: dict = {}
        for i, leaf in enumerate(self._iter_leaves()):
            ordinals[id(leaf)] = i

        if start is None:
            leaf: Optional[_LeafNode] = self._leftmost_leaf()
            pos = 0
        else:
            if start.inclusive:
                probe: _OrderKey = (start.value, -1)
                leaf = self._find_leaf(probe)
                pos = bisect_left(leaf.order_keys, probe)
            else:
                probe = (start.value, self._next_seq)
                leaf = self._find_leaf(probe)
                pos = bisect_right(leaf.order_keys, probe)
            if pos >= len(leaf.order_keys):
                leaf = leaf.next_leaf
                pos = 0

        while leaf is not None:
            ordinal = ordinals[id(leaf)]
            order_keys = leaf.order_keys
            rids = leaf.rids
            for i in range(pos, len(order_keys)):
                key = order_keys[i][0]
                if stop is not None:
                    if stop.inclusive:
                        if key > stop.value:
                            return
                    elif key >= stop.value:
                        return
                yield ordinal, key, rids[i]
            leaf = leaf.next_leaf
            pos = 0

    def keys(self) -> Iterator[Any]:
        """Distinct keys in ascending order."""
        previous_set = False
        previous: Any = None
        for key, _rid in self.items():
            if not previous_set or key != previous:
                yield key
                previous = key
                previous_set = True

    def distinct_key_count(self) -> int:
        """The paper's ``I``: number of distinct key values in the index."""
        return sum(1 for _ in self.keys())

    # ------------------------------------------------------------------
    # Invariant checking (used heavily by the property tests)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`BTreeError` if any structural invariant is broken."""
        leaf_depths: List[int] = []
        self._validate_node(self._root, None, None, 1, leaf_depths)
        if len(set(leaf_depths)) > 1:
            raise BTreeError(f"leaves at differing depths: {set(leaf_depths)}")
        if leaf_depths and leaf_depths[0] != self._height:
            raise BTreeError(
                f"height {self._height} does not match leaf depth "
                f"{leaf_depths[0]}"
            )
        # Leaf chain must visit exactly the sorted entries.
        chained = [ok for leaf in self._iter_leaves() for ok in leaf.order_keys]
        if chained != sorted(chained):
            raise BTreeError("leaf chain is not globally sorted")
        if len(chained) != self._size:
            raise BTreeError(
                f"size {self._size} != entries reachable via leaf chain "
                f"{len(chained)}"
            )

    def _iter_leaves(self) -> Iterator[_LeafNode]:
        leaf: Optional[_LeafNode] = self._leftmost_leaf()
        while leaf is not None:
            yield leaf
            leaf = leaf.next_leaf

    def _validate_node(
        self,
        node: Any,
        lo: Optional[_OrderKey],
        hi: Optional[_OrderKey],
        depth: int,
        leaf_depths: List[int],
    ) -> None:
        if isinstance(node, _LeafNode):
            if node.order_keys != sorted(node.order_keys):
                raise BTreeError("leaf entries out of order")
            for order_key in node.order_keys:
                if lo is not None and order_key < lo:
                    raise BTreeError(f"leaf entry {order_key} below bound {lo}")
                if hi is not None and order_key >= hi:
                    raise BTreeError(f"leaf entry {order_key} >= bound {hi}")
            leaf_depths.append(depth)
            return
        if len(node.children) != len(node.separators) + 1:
            raise BTreeError("interior child/separator arity mismatch")
        if node.separators != sorted(node.separators):
            raise BTreeError("interior separators out of order")
        bounds = [lo, *node.separators, hi]
        for child, (child_lo, child_hi) in zip(
            node.children, zip(bounds[:-1], bounds[1:])
        ):
            self._validate_node(child, child_lo, child_hi, depth + 1, leaf_depths)
