"""Page-structured storage engine used as the substrate for index scans.

The paper assumes a System R-style host: tables stored in page-structured
heap files, B-tree indexes whose leaf entries map key values to RIDs, and an
optimizer that asks "how many data pages will this index scan fetch?".  This
subpackage builds that substrate for real:

* :class:`~repro.storage.page.Page` — a slotted data page.
* :class:`~repro.storage.heapfile.HeapFile` — a growable sequence of pages
  with direct placement support (needed by the clustering generators).
* :class:`~repro.storage.table.Table` — schema + heap file + row access.
* :class:`~repro.storage.btree.BTreeIndex` — a genuine B-tree (splitting
  nodes, linked leaves) over ``(key, RID)`` entries with range scans.
* :class:`~repro.storage.index.Index` — a table-aware wrapper that iterates
  index entries in key order, the input to every estimator in the paper.
"""

from repro.storage.btree import BTreeIndex
from repro.storage.composite import (
    MAX_SENTINEL,
    MIN_SENTINEL,
    CompositeIndex,
    MinorColumnPredicate,
    major_range,
)
from repro.storage.heapfile import HeapFile
from repro.storage.index import Index, IndexEntry
from repro.storage.page import Page
from repro.storage.table import Table

__all__ = [
    "BTreeIndex",
    "CompositeIndex",
    "HeapFile",
    "Index",
    "IndexEntry",
    "MAX_SENTINEL",
    "MIN_SENTINEL",
    "MinorColumnPredicate",
    "Page",
    "Table",
    "major_range",
]
