"""Composite (multi-column) indexes and major-column key ranges.

Section 2's running example: "Let an index be defined on columns a and b,
with a as the major column.  Starting and stopping conditions can be used
to limit the range of the index scan ... the predicate b = 5, where b is
not the major column of the index, is an index-sargable predicate."

A :class:`CompositeIndex` stores tuple keys ``(a, b, ...)`` in the same
B+-tree (tuple comparison gives the right lexicographic order).  Start and
stop conditions on the *major* column become tuple bounds via the
:data:`MIN_SENTINEL` / :data:`MAX_SENTINEL` extremes, and predicates on
minor columns are genuine index-sargable predicates: they are evaluated on
the visited entries' keys, before any data page is fetched.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

from repro.errors import StorageError, WorkloadError
from repro.storage.btree import KeyBound
from repro.storage.index import Index, IndexEntry
from repro.storage.table import Table
from repro.types import RID
from repro.workload.predicates import KeyRange, SargablePredicate


class _Extreme:
    """A value comparing below (or above) every ordinary key component."""

    __slots__ = ("_above", "_label")

    def __init__(self, above: bool, label: str) -> None:
        self._above = above
        self._label = label

    def __lt__(self, other: object) -> bool:
        if other is self:
            return False
        return not self._above

    def __gt__(self, other: object) -> bool:
        if other is self:
            return False
        return self._above

    def __le__(self, other: object) -> bool:
        return not self.__gt__(other)

    def __ge__(self, other: object) -> bool:
        return not self.__lt__(other)

    def __eq__(self, other: object) -> bool:
        return other is self

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        return self._label


#: Compares below every key component (used for inclusive lower bounds).
MIN_SENTINEL = _Extreme(above=False, label="<MIN>")
#: Compares above every key component (used for inclusive upper bounds).
MAX_SENTINEL = _Extreme(above=True, label="<MAX>")


class CompositeIndex(Index):
    """A B+-tree index over several columns, the first being major."""

    def __init__(
        self,
        name: str,
        table: Table,
        columns: Sequence[str],
        fanout: int = 64,
    ) -> None:
        if len(columns) < 2:
            raise StorageError(
                "a composite index needs >= 2 columns; use Index for one"
            )
        # Validate all columns up front; Index.__init__ checks the major.
        for column in columns:
            table.column_index(column)
        super().__init__(name, table, columns[0], fanout=fanout)
        self._columns: Tuple[str, ...] = tuple(columns)

    @property
    def columns(self) -> Tuple[str, ...]:
        """All indexed columns, major first."""
        return self._columns

    @classmethod
    def build(
        cls,
        table: Table,
        columns: Sequence[str],
        name: Optional[str] = None,
        fanout: int = 64,
    ) -> "CompositeIndex":
        """Bulk-build from ``table`` in physical scan order."""
        index = cls(
            name or f"{table.name}.{'_'.join(columns)}",
            table,
            columns,
            fanout=fanout,
        )
        positions = [table.column_index(c) for c in columns]
        for rid, row in table.scan():
            index.add(tuple(row[p] for p in positions), rid)
        return index

    def add(self, key: Any, rid: RID) -> None:
        """Add one entry; ``key`` must be a tuple over all indexed columns."""
        if not isinstance(key, tuple) or len(key) != len(self._columns):
            raise StorageError(
                f"composite key must be a {len(self._columns)}-tuple, "
                f"got {key!r}"
            )
        super().add(key, rid)

    def add_row(self, row: Sequence[Any], rid: RID) -> None:
        """Add an entry extracted from a full row tuple."""
        positions = [self.table.column_index(c) for c in self._columns]
        self.add(tuple(row[p] for p in positions), rid)


def major_range(
    index: CompositeIndex,
    low: Any = None,
    high: Any = None,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> KeyRange:
    """Start/stop conditions on the major column, as tuple bounds.

    An inclusive ``a >= low`` becomes the tuple bound ``(low, MIN, ...)``
    (below every real key with major value ``low``); an inclusive
    ``a <= high`` becomes ``(high, MAX, ...)``.  Exclusive bounds swap the
    sentinels.
    """
    width = len(index.columns)

    def tuple_bound(value: Any, sentinel: _Extreme) -> Tuple[Any, ...]:
        return (value,) + (sentinel,) * (width - 1)

    start = None
    if low is not None:
        sentinel = MIN_SENTINEL if low_inclusive else MAX_SENTINEL
        start = KeyBound(tuple_bound(low, sentinel), inclusive=True)
    stop = None
    if high is not None:
        sentinel = MAX_SENTINEL if high_inclusive else MIN_SENTINEL
        stop = KeyBound(tuple_bound(high, sentinel), inclusive=True)
    if start is not None and stop is not None and stop.value < start.value:
        # A logically empty range (e.g. exclusive low == high): canonicalize
        # to a degenerate range above every real key instead of tripping
        # KeyRange's inversion check.
        top = tuple_bound(MAX_SENTINEL, MAX_SENTINEL)
        return KeyRange(
            KeyBound(top, inclusive=False), KeyBound(top, inclusive=False)
        )
    return KeyRange(start, stop)


class MinorColumnPredicate(SargablePredicate):
    """An index-sargable predicate on a minor column of a composite index.

    ``predicate`` receives the minor column's value from the *entry key* —
    no data page is touched to evaluate it, which is exactly what makes it
    sargable.  ``selectivity`` is the paper's S; use :meth:`from_index`
    to derive it exactly.
    """

    def __init__(self, position: int, predicate, selectivity: float) -> None:
        if position < 1:
            raise WorkloadError(
                "position 0 is the major column; sargable predicates apply "
                "to minor columns (position >= 1)"
            )
        if not 0.0 <= selectivity <= 1.0:
            raise WorkloadError(
                f"selectivity must be in [0, 1], got {selectivity}"
            )
        self._position = position
        self._predicate = predicate
        self._selectivity = selectivity

    @classmethod
    def equals(
        cls, index: CompositeIndex, column: str, value: Any
    ) -> "MinorColumnPredicate":
        """The paper's ``b = 5`` example, with exact selectivity."""
        position = index.columns.index(column)
        if position == 0:
            raise WorkloadError(
                f"{column!r} is the major column; use start/stop conditions"
            )
        matching = sum(
            1 for entry in index.entries() if entry.key[position] == value
        )
        selectivity = matching / max(1, index.entry_count)
        return cls(position, lambda v: v == value, selectivity)

    @property
    def selectivity(self) -> float:
        """The fraction of entries whose minor value qualifies."""
        return self._selectivity

    @property
    def position(self) -> int:
        """The minor column's position within the composite key."""
        return self._position

    def qualifies(self, entry: IndexEntry) -> bool:
        """Evaluate the predicate on the entry key's minor component."""
        return bool(self._predicate(entry.key[self._position]))
