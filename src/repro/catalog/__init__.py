"""System catalog: persisted per-index statistics.

"This coordinate information can be stored in a system catalog entry
associated with the index for later use by Est-IO" (Section 4.1).  The
catalog holds one :class:`IndexStatistics` record per index — everything
Est-IO and the baseline estimators need at query-compilation time, with no
access to the data itself — and round-trips to JSON.  The wire format is
versioned (:data:`SCHEMA_VERSION`, with migration hooks for old files) and
saves are atomic; :class:`CatalogStore` serves snapshots of a catalog file
to long-lived readers, reloading when the file changes.
"""

from repro.catalog.catalog import (
    MIGRATIONS,
    SCHEMA_VERSION,
    IndexStatistics,
    SystemCatalog,
    migrate_payload,
    payload_version,
)
from repro.catalog.store import CatalogStore

__all__ = [
    "CatalogStore",
    "IndexStatistics",
    "MIGRATIONS",
    "SCHEMA_VERSION",
    "SystemCatalog",
    "migrate_payload",
    "payload_version",
]
