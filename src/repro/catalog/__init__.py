"""System catalog: persisted per-index statistics.

"This coordinate information can be stored in a system catalog entry
associated with the index for later use by Est-IO" (Section 4.1).  The
catalog holds one :class:`IndexStatistics` record per index — everything
Est-IO and the baseline estimators need at query-compilation time, with no
access to the data itself — and round-trips to JSON.
"""

from repro.catalog.catalog import IndexStatistics, SystemCatalog

__all__ = ["IndexStatistics", "SystemCatalog"]
