"""A reloading, caching view over a catalog file.

In the paper's deployment the catalog lives in the DBMS and is read by
every query compilation; here it lives in a JSON file that a statistics
pass rewrites periodically (atomically — see
:meth:`~repro.catalog.catalog.SystemCatalog.save`) while many serving
processes keep reading it.  :class:`CatalogStore` is the reader's side of
that contract:

* **content-stamped reload** — each access reads the file once and keys
  the parsed snapshot by ``(size, sha256)`` of the bytes actually read.
  An earlier revision stamped ``(mtime_ns, size, inode)`` from a separate
  ``stat(2)``; that was cheaper but had two real bugs: a same-size
  in-place rewrite landing within mtime granularity was invisible (stale
  statistics served forever), and the stat/parse pair could straddle a
  concurrent rewrite (TOCTOU).  Stamping the content itself closes both
  — the stamp and the parse always describe the same bytes.  Catalog
  files are small (KBs), so the read-per-access cost is negligible next
  to a JSON parse, and the parse still only happens on change;
* **bounded snapshot cache** — recently parsed snapshots are kept in a
  small LRU keyed by stamp, so a writer flapping between generations (or
  tests restoring a previous file) does not force a reparse per flip;
* **generation counter** — bumps whenever the served snapshot changes,
  letting downstream caches (the estimation engine's bound estimators)
  invalidate exactly when the statistics they were built from changed.

All filesystem access goes through a :class:`CatalogIO` object — the
seam the resilience layer's fault injector wraps (see
:mod:`repro.resilience.faults`) and the hook a test can replace without
monkeypatching globals.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from pathlib import Path
from typing import Iterator, Optional, Tuple, Union

from repro.catalog.catalog import (
    IndexStatistics,
    SystemCatalog,
    atomic_write_text,
)
from repro.errors import CatalogError

#: Parsed snapshots kept per store; catalogs are small, flapping is rare.
DEFAULT_SNAPSHOT_CACHE = 4

#: ``(size, sha256 hexdigest)`` of the file content.
_Stamp = Tuple[int, str]


class CatalogIO:
    """Real filesystem access used by :class:`CatalogStore`.

    Deliberately tiny: one read primitive, one atomic-write primitive,
    one rename primitive.  The resilience layer's
    :class:`~repro.resilience.faults.FaultInjector` subclasses this to
    inject deterministic failures on exactly these operations.
    """

    def read_bytes(self, path: Union[str, Path]) -> bytes:
        """The complete current content of ``path``."""
        return Path(path).read_bytes()

    def save_text(self, path: Union[str, Path], text: str) -> None:
        """Atomically replace ``path`` with ``text``."""
        atomic_write_text(path, text)

    def replace(
        self, src: Union[str, Path], dst: Union[str, Path]
    ) -> None:
        """Atomic rename (used to quarantine corrupt files)."""
        os.replace(src, dst)


class CatalogStore:
    """Serve :class:`SystemCatalog` snapshots from a file, reloading on
    change."""

    def __init__(
        self,
        path: Union[str, Path],
        cache_size: int = DEFAULT_SNAPSHOT_CACHE,
        io: Optional[CatalogIO] = None,
    ) -> None:
        if cache_size < 1:
            raise CatalogError(
                f"cache_size must be >= 1, got {cache_size}"
            )
        self._path = Path(path)
        self._cache_size = cache_size
        self._io = io or CatalogIO()
        self._snapshots: "OrderedDict[_Stamp, SystemCatalog]" = OrderedDict()
        self._current_stamp: Optional[_Stamp] = None
        self._generation = 0

    @property
    def path(self) -> Path:
        """The catalog file this store serves."""
        return self._path

    @property
    def io(self) -> CatalogIO:
        """The I/O object all file access goes through."""
        return self._io

    @property
    def generation(self) -> int:
        """Increments every time the served snapshot changes."""
        return self._generation

    def _read(self) -> Tuple[_Stamp, bytes]:
        """One read of the catalog file plus its content stamp.

        Raises :class:`~repro.errors.CatalogError` when the file does
        not exist; any other :class:`OSError` (the transient class)
        propagates for the caller — or a resilient subclass — to handle.
        """
        try:
            data = self._io.read_bytes(self._path)
        except FileNotFoundError:
            raise CatalogError(
                f"catalog file {str(self._path)!r} does not exist; run "
                f"statistics collection (e.g. `repro fit --catalog ...`) "
                f"first"
            ) from None
        return (len(data), hashlib.sha256(data).hexdigest()), data

    def _parse_and_cache(
        self, stamp: _Stamp, data: bytes
    ) -> SystemCatalog:
        """Serve the snapshot for ``(stamp, data)``, parsing on miss."""
        snapshot = self._snapshots.get(stamp)
        if snapshot is None:
            try:
                text = data.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise CatalogError(
                    f"catalog file {str(self._path)!r} is not valid "
                    f"UTF-8: {exc}"
                ) from exc
            snapshot = SystemCatalog.from_json(text)
            self._snapshots[stamp] = snapshot
            while len(self._snapshots) > self._cache_size:
                self._snapshots.popitem(last=False)
        else:
            self._snapshots.move_to_end(stamp)
        if stamp != self._current_stamp:
            self._current_stamp = stamp
            self._generation += 1
        return snapshot

    def catalog(self) -> SystemCatalog:
        """The current snapshot, reloaded iff the file changed on disk."""
        stamp, data = self._read()
        return self._parse_and_cache(stamp, data)

    def get(self, index_name: str) -> IndexStatistics:
        """Statistics for one index from the current snapshot."""
        return self.catalog().get(index_name)

    def __contains__(self, index_name: str) -> bool:
        return index_name in self.catalog()

    def __iter__(self) -> Iterator[str]:
        return iter(self.catalog())

    def __len__(self) -> int:
        return len(self.catalog())

    def invalidate(self) -> None:
        """Drop all cached snapshots; the next access reparses the file."""
        self._snapshots.clear()
        self._current_stamp = None
        self._generation += 1

    def save(self, catalog: SystemCatalog) -> None:
        """Atomically write ``catalog`` to this store's file.

        The write goes through this store's :class:`CatalogIO` (so
        injected write faults apply); the next :meth:`catalog` call
        picks the new file up through the normal stamp check (and bumps
        :attr:`generation` accordingly).
        """
        self._io.save_text(self._path, catalog.to_json())

    def __repr__(self) -> str:
        return (
            f"CatalogStore(path={str(self._path)!r}, "
            f"generation={self._generation})"
        )
