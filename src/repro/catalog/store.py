"""A reloading, caching view over a catalog file.

In the paper's deployment the catalog lives in the DBMS and is read by
every query compilation; here it lives in a JSON file that a statistics
pass rewrites periodically (atomically — see
:meth:`~repro.catalog.catalog.SystemCatalog.save`) while many serving
processes keep reading it.  :class:`CatalogStore` is the reader's side of
that contract:

* **mtime-based reload** — each access stats the file and reparses only
  when the ``(mtime_ns, size, inode)`` stamp changed, so steady-state
  reads cost one ``stat(2)``, not a JSON parse;
* **bounded snapshot cache** — recently parsed snapshots are kept in a
  small LRU keyed by stamp, so a writer flapping between generations (or
  tests restoring a previous file) does not force a reparse per flip;
* **generation counter** — bumps whenever the served snapshot changes,
  letting downstream caches (the estimation engine's bound estimators)
  invalidate exactly when the statistics they were built from changed.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from pathlib import Path
from typing import Iterator, Optional, Tuple, Union

from repro.catalog.catalog import IndexStatistics, SystemCatalog
from repro.errors import CatalogError

#: Parsed snapshots kept per store; catalogs are small, flapping is rare.
DEFAULT_SNAPSHOT_CACHE = 4

_Stamp = Tuple[int, int, int]


class CatalogStore:
    """Serve :class:`SystemCatalog` snapshots from a file, reloading on change."""

    def __init__(
        self,
        path: Union[str, Path],
        cache_size: int = DEFAULT_SNAPSHOT_CACHE,
    ) -> None:
        if cache_size < 1:
            raise CatalogError(
                f"cache_size must be >= 1, got {cache_size}"
            )
        self._path = Path(path)
        self._cache_size = cache_size
        self._snapshots: "OrderedDict[_Stamp, SystemCatalog]" = OrderedDict()
        self._current_stamp: Optional[_Stamp] = None
        self._generation = 0

    @property
    def path(self) -> Path:
        """The catalog file this store serves."""
        return self._path

    @property
    def generation(self) -> int:
        """Increments every time the served snapshot changes."""
        return self._generation

    def _stamp(self) -> _Stamp:
        try:
            info = os.stat(self._path)
        except FileNotFoundError:
            raise CatalogError(
                f"catalog file {str(self._path)!r} does not exist; run "
                f"statistics collection (e.g. `repro fit --catalog ...`) "
                f"first"
            ) from None
        return (info.st_mtime_ns, info.st_size, info.st_ino)

    def catalog(self) -> SystemCatalog:
        """The current snapshot, reloaded iff the file changed on disk."""
        stamp = self._stamp()
        snapshot = self._snapshots.get(stamp)
        if snapshot is None:
            snapshot = SystemCatalog.load(self._path)
            self._snapshots[stamp] = snapshot
            while len(self._snapshots) > self._cache_size:
                self._snapshots.popitem(last=False)
        else:
            self._snapshots.move_to_end(stamp)
        if stamp != self._current_stamp:
            self._current_stamp = stamp
            self._generation += 1
        return snapshot

    def get(self, index_name: str) -> IndexStatistics:
        """Statistics for one index from the current snapshot."""
        return self.catalog().get(index_name)

    def __contains__(self, index_name: str) -> bool:
        return index_name in self.catalog()

    def __iter__(self) -> Iterator[str]:
        return iter(self.catalog())

    def __len__(self) -> int:
        return len(self.catalog())

    def invalidate(self) -> None:
        """Drop all cached snapshots; the next access reparses the file."""
        self._snapshots.clear()
        self._current_stamp = None
        self._generation += 1

    def save(self, catalog: SystemCatalog) -> None:
        """Atomically write ``catalog`` to this store's file.

        The next :meth:`catalog` call picks the new file up through the
        normal stamp check (and bumps :attr:`generation` accordingly).
        """
        catalog.save(self._path)

    def __repr__(self) -> str:
        return (
            f"CatalogStore(path={str(self._path)!r}, "
            f"generation={self._generation})"
        )
