"""A reloading, caching view over a catalog file.

In the paper's deployment the catalog lives in the DBMS and is read by
every query compilation; here it lives in a JSON file that a statistics
pass rewrites periodically (atomically — see
:meth:`~repro.catalog.catalog.SystemCatalog.save`) while many serving
processes keep reading it.  :class:`CatalogStore` is the reader's side of
that contract:

* **content-stamped reload** — each access reads the file once and keys
  the parsed snapshot by ``(size, sha256)`` of the bytes actually read.
  An earlier revision stamped ``(mtime_ns, size, inode)`` from a separate
  ``stat(2)``; that was cheaper but had two real bugs: a same-size
  in-place rewrite landing within mtime granularity was invisible (stale
  statistics served forever), and the stat/parse pair could straddle a
  concurrent rewrite (TOCTOU).  Stamping the content itself closes both
  — the stamp and the parse always describe the same bytes.  Catalog
  files are small (KBs), so the read-per-access cost is negligible next
  to a JSON parse, and the parse still only happens on change;
* **bounded snapshot cache** — recently parsed snapshots are kept in a
  small LRU keyed by stamp, so a writer flapping between generations (or
  tests restoring a previous file) does not force a reparse per flip;
* **generation counter** — bumps whenever the served snapshot changes,
  letting downstream caches (the estimation engine's bound estimators)
  invalidate exactly when the statistics they were built from changed.

All filesystem access goes through a :class:`CatalogIO` object — the
seam the resilience layer's fault injector wraps (see
:mod:`repro.resilience.faults`) and the hook a test can replace without
monkeypatching globals.

With ``history > 0`` the store additionally keeps a **versioned
catalog history**: every :meth:`CatalogStore.save` first archives the
intended bytes as ``v<NNNNNNNN>.json`` under ``<path>.versions/`` and
only then publishes them to the main file, retaining the newest
``history`` versions.  :meth:`CatalogStore.versions` lists what is
retained, :meth:`CatalogStore.current_version` says which archived
version the main file's bytes currently match (``None`` after an
out-of-band edit or a torn publish), and
:meth:`CatalogStore.rollback` atomically restores an archived version
— the refresh controller's last-known-good recovery path.  Version
bookkeeping deliberately bypasses :class:`CatalogIO`: like quarantine
renames, the recovery machinery itself is not a chaos target, so an
injected fault on the *publish* can never corrupt the archive it will
be rolled back from.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

from repro.catalog.catalog import (
    IndexStatistics,
    SystemCatalog,
    atomic_write_text,
)
from repro.errors import CatalogError

#: Parsed snapshots kept per store; catalogs are small, flapping is rare.
DEFAULT_SNAPSHOT_CACHE = 4

#: Directory suffix holding archived catalog versions.
VERSIONS_SUFFIX = ".versions"

#: Archived version file name pattern (``v%08d.json``).
_VERSION_PREFIX = "v"
_VERSION_SUFFIX = ".json"

#: ``(size, sha256 hexdigest)`` of the file content.
_Stamp = Tuple[int, str]


class CatalogIO:
    """Real filesystem access used by :class:`CatalogStore`.

    Deliberately tiny: one read primitive, one atomic-write primitive,
    one rename primitive.  The resilience layer's
    :class:`~repro.resilience.faults.FaultInjector` subclasses this to
    inject deterministic failures on exactly these operations.
    """

    def read_bytes(self, path: Union[str, Path]) -> bytes:
        """The complete current content of ``path``."""
        return Path(path).read_bytes()

    def save_text(self, path: Union[str, Path], text: str) -> None:
        """Atomically replace ``path`` with ``text``."""
        atomic_write_text(path, text)

    def replace(
        self, src: Union[str, Path], dst: Union[str, Path]
    ) -> None:
        """Atomic rename (used to quarantine corrupt files)."""
        os.replace(src, dst)


class CatalogStore:
    """Serve :class:`SystemCatalog` snapshots from a file, reloading on
    change."""

    def __init__(
        self,
        path: Union[str, Path],
        cache_size: int = DEFAULT_SNAPSHOT_CACHE,
        io: Optional[CatalogIO] = None,
        history: int = 0,
    ) -> None:
        if cache_size < 1:
            raise CatalogError(
                f"cache_size must be >= 1, got {cache_size}"
            )
        if history < 0:
            raise CatalogError(
                f"history must be >= 0, got {history}"
            )
        self._path = Path(path)
        self._cache_size = cache_size
        self._io = io or CatalogIO()
        self._history = history
        self._snapshots: "OrderedDict[_Stamp, SystemCatalog]" = OrderedDict()
        self._current_stamp: Optional[_Stamp] = None
        self._generation = 0
        # In-process floor for version ids: never reuse an id this store
        # already assigned, even after retention pruned its file.
        self._next_version = 1

    @property
    def path(self) -> Path:
        """The catalog file this store serves."""
        return self._path

    @property
    def io(self) -> CatalogIO:
        """The I/O object all file access goes through."""
        return self._io

    @property
    def generation(self) -> int:
        """Increments every time the served snapshot changes."""
        return self._generation

    def _read(self) -> Tuple[_Stamp, bytes]:
        """One read of the catalog file plus its content stamp.

        Raises :class:`~repro.errors.CatalogError` when the file does
        not exist; any other :class:`OSError` (the transient class)
        propagates for the caller — or a resilient subclass — to handle.
        """
        try:
            data = self._io.read_bytes(self._path)
        except FileNotFoundError:
            raise CatalogError(
                f"catalog file {str(self._path)!r} does not exist; run "
                f"statistics collection (e.g. `repro fit --catalog ...`) "
                f"first"
            ) from None
        return (len(data), hashlib.sha256(data).hexdigest()), data

    def _parse_and_cache(
        self, stamp: _Stamp, data: bytes
    ) -> SystemCatalog:
        """Serve the snapshot for ``(stamp, data)``, parsing on miss."""
        snapshot = self._snapshots.get(stamp)
        if snapshot is None:
            try:
                text = data.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise CatalogError(
                    f"catalog file {str(self._path)!r} is not valid "
                    f"UTF-8: {exc}"
                ) from exc
            snapshot = SystemCatalog.from_json(text)
            self._snapshots[stamp] = snapshot
            while len(self._snapshots) > self._cache_size:
                self._snapshots.popitem(last=False)
        else:
            self._snapshots.move_to_end(stamp)
        if stamp != self._current_stamp:
            self._current_stamp = stamp
            self._generation += 1
        return snapshot

    def catalog(self) -> SystemCatalog:
        """The current snapshot, reloaded iff the file changed on disk."""
        stamp, data = self._read()
        return self._parse_and_cache(stamp, data)

    def get(self, index_name: str) -> IndexStatistics:
        """Statistics for one index from the current snapshot."""
        return self.catalog().get(index_name)

    def __contains__(self, index_name: str) -> bool:
        return index_name in self.catalog()

    def __iter__(self) -> Iterator[str]:
        return iter(self.catalog())

    def __len__(self) -> int:
        return len(self.catalog())

    def invalidate(self) -> None:
        """Drop all cached snapshots; the next access reparses the file."""
        self._snapshots.clear()
        self._current_stamp = None
        self._generation += 1

    def save(self, catalog: SystemCatalog) -> None:
        """Atomically write ``catalog`` to this store's file.

        The write goes through this store's :class:`CatalogIO` (so
        injected write faults apply); the next :meth:`catalog` call
        picks the new file up through the normal stamp check (and bumps
        :attr:`generation` accordingly).  With ``history > 0`` the
        intended bytes are archived as a new version *before* the
        publish — see :meth:`save_text`.
        """
        self.save_text(catalog.to_json())

    def save_text(self, text: str) -> Optional[int]:
        """Publish ``text`` as the catalog's new content.

        With ``history > 0``, the intended bytes are first archived
        (archive-then-publish: a version id labels a publish *attempt*,
        and the archive is durable even when the publish itself is torn
        or fails) and the oldest versions beyond the retention bound are
        pruned.  Returns the archived version id, or ``None`` when the
        store keeps no history.
        """
        version: Optional[int] = None
        if self._history > 0:
            version = self._archive_version(text)
        self._io.save_text(self._path, text)
        return version

    # ------------------------------------------------------------------
    # Versioned history
    # ------------------------------------------------------------------
    @property
    def history(self) -> int:
        """Retained version count (0 = no history kept)."""
        return self._history

    @property
    def versions_dir(self) -> Path:
        """Directory holding archived catalog versions."""
        return self._path.with_name(self._path.name + VERSIONS_SUFFIX)

    def version_path(self, version: int) -> Path:
        """The archive file for ``version``."""
        return self.versions_dir / (
            f"{_VERSION_PREFIX}{version:08d}{_VERSION_SUFFIX}"
        )

    def versions(self) -> List[int]:
        """Retained version ids, oldest first."""
        directory = self.versions_dir
        if not directory.is_dir():
            return []
        found = []
        for entry in directory.iterdir():
            name = entry.name
            if (
                name.startswith(_VERSION_PREFIX)
                and name.endswith(_VERSION_SUFFIX)
            ):
                digits = name[
                    len(_VERSION_PREFIX):-len(_VERSION_SUFFIX)
                ]
                if digits.isdigit():
                    found.append(int(digits))
        return sorted(found)

    def current_version(self) -> Optional[int]:
        """The archived version whose bytes the main file matches.

        ``None`` when no history is kept, the main file is missing, or
        its bytes match no retained version (an out-of-band edit, a torn
        publish, or a pre-history file).  Version bookkeeping reads the
        filesystem directly — deliberately not through :attr:`io` — so
        injected read faults cannot make recovery lie about where it
        stands.
        """
        try:
            current = hashlib.sha256(
                self._path.read_bytes()
            ).hexdigest()
        except OSError:
            return None
        for version in reversed(self.versions()):
            try:
                archived = self.version_path(version).read_bytes()
            except OSError:
                continue
            if hashlib.sha256(archived).hexdigest() == current:
                return version
        return None

    def load_version(self, version: int) -> SystemCatalog:
        """Parse one archived version (without touching the main file)."""
        path = self.version_path(version)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            raise CatalogError(
                f"catalog version {version} is not retained "
                f"(no file at {str(path)!r})"
            ) from None
        return SystemCatalog.from_json(text)

    def _archive_version(self, text: str) -> int:
        """Write ``text`` as the next version; prune beyond retention."""
        retained = self.versions()
        floor = retained[-1] + 1 if retained else 1
        version = max(self._next_version, floor)
        self._next_version = version + 1
        self.versions_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_text(self.version_path(version), text)
        self._prune(self._history)
        return version

    def _prune(self, keep: int) -> None:
        retained = self.versions()
        for stale in retained[: max(0, len(retained) - keep)]:
            try:
                self.version_path(stale).unlink()
            except OSError:
                pass

    def rollback(
        self, version: Optional[int] = None, prune: bool = True
    ) -> int:
        """Atomically restore an archived version to the main file.

        ``version`` defaults to the newest retained version below
        :meth:`current_version` (or the newest retained version outright
        when the main file matches none — the torn-publish case).  With
        ``prune`` (the default), versions newer than the target are
        dropped from the archive: they are abandoned publish attempts,
        and keeping them would make the next :meth:`save` look like a
        re-publish of a known-bad candidate.  The restore itself uses
        the plain atomic write — never the (possibly fault-injected)
        :class:`CatalogIO` — because rollback *is* the recovery path.
        Returns the restored version id.
        """
        if self._history < 1:
            raise CatalogError(
                "rollback needs a store with history > 0"
            )
        retained = self.versions()
        if version is None:
            current = self.current_version()
            candidates = (
                [v for v in retained if v < current]
                if current is not None
                else retained
            )
            if not candidates:
                raise CatalogError(
                    f"no retained version to roll back to "
                    f"(retained: {retained}, current: "
                    f"{self.current_version()})"
                )
            version = candidates[-1]
        if version not in retained:
            raise CatalogError(
                f"catalog version {version} is not retained "
                f"(retained: {retained})"
            )
        text = self.version_path(version).read_text(encoding="utf-8")
        atomic_write_text(self._path, text)
        if prune:
            for stale in retained:
                if stale > version:
                    try:
                        self.version_path(stale).unlink()
                    except OSError:
                        pass
        self.invalidate()
        return version

    def __repr__(self) -> str:
        return (
            f"CatalogStore(path={str(self._path)!r}, "
            f"generation={self._generation})"
        )
