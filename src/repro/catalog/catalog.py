"""Catalog records and their JSON persistence.

:class:`IndexStatistics` is the contract between statistics-collection time
(LRU-Fit, the cluster-ratio statistics passes) and query-compilation time
(Est-IO, the baseline estimators): a compact summary that fully determines
every estimate.  :class:`SystemCatalog` is a named collection of them with
file round-tripping, standing in for the host DBMS's catalog tables.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from repro.errors import CatalogError
from repro.fit.segments import PiecewiseLinear


@dataclass(frozen=True)
class IndexStatistics:
    """Everything stored in the catalog about one index.

    ======================  =================================================
    Field                   Paper quantity
    ======================  =================================================
    ``table_pages``         T
    ``table_records``       N
    ``distinct_keys``       I
    ``clustering_factor``   C = (N - F_min) / (N - T)
    ``fpf_curve``           six-segment approximation of the FPF curve
    ``b_min`` / ``b_max``   modeled buffer range
    ``f_min``               page fetches at B_min (C's numerator input)
    ``dc_cluster_count``    Algorithm DC's CC (optional; None if not gathered)
    ``fetches_b1``          F(B=1), Algorithm SD's J (optional)
    ``fetches_b3``          F(B=3), Algorithm OT's J (optional)
    ======================  =================================================
    """

    index_name: str
    table_pages: int
    table_records: int
    distinct_keys: int
    clustering_factor: float
    fpf_curve: PiecewiseLinear
    b_min: int
    b_max: int
    f_min: int
    dc_cluster_count: Optional[int] = None
    fetches_b1: Optional[int] = None
    fetches_b3: Optional[int] = None

    def __post_init__(self) -> None:
        if self.table_pages < 1:
            raise CatalogError(f"table_pages must be >= 1, got {self.table_pages}")
        if self.table_records < self.table_pages:
            raise CatalogError(
                f"table_records ({self.table_records}) < table_pages "
                f"({self.table_pages})"
            )
        if not 1 <= self.distinct_keys <= self.table_records:
            raise CatalogError(
                f"distinct_keys must be in [1, N], got {self.distinct_keys}"
            )
        if not 0.0 <= self.clustering_factor <= 1.0:
            raise CatalogError(
                f"clustering_factor must be in [0, 1], got "
                f"{self.clustering_factor}"
            )
        if not 1 <= self.b_min <= self.b_max:
            raise CatalogError(
                f"need 1 <= b_min <= b_max, got [{self.b_min}, {self.b_max}]"
            )

    def to_dict(self) -> dict:
        """JSON-ready dictionary form of this record."""
        return {
            "index_name": self.index_name,
            "table_pages": self.table_pages,
            "table_records": self.table_records,
            "distinct_keys": self.distinct_keys,
            "clustering_factor": self.clustering_factor,
            "fpf_curve": self.fpf_curve.to_pairs(),
            "b_min": self.b_min,
            "b_max": self.b_max,
            "f_min": self.f_min,
            "dc_cluster_count": self.dc_cluster_count,
            "fetches_b1": self.fetches_b1,
            "fetches_b3": self.fetches_b3,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IndexStatistics":
        """Rebuild a record from :meth:`to_dict` output."""
        try:
            return cls(
                index_name=data["index_name"],
                table_pages=data["table_pages"],
                table_records=data["table_records"],
                distinct_keys=data["distinct_keys"],
                clustering_factor=data["clustering_factor"],
                fpf_curve=PiecewiseLinear.from_pairs(data["fpf_curve"]),
                b_min=data["b_min"],
                b_max=data["b_max"],
                f_min=data["f_min"],
                dc_cluster_count=data.get("dc_cluster_count"),
                fetches_b1=data.get("fetches_b1"),
                fetches_b3=data.get("fetches_b3"),
            )
        except KeyError as missing:
            raise CatalogError(
                f"catalog record is missing field {missing}"
            ) from None


class SystemCatalog:
    """A named collection of :class:`IndexStatistics` with file persistence."""

    def __init__(self) -> None:
        self._entries: Dict[str, IndexStatistics] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, index_name: str) -> bool:
        return index_name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def put(self, stats: IndexStatistics) -> None:
        """Insert or replace the entry for ``stats.index_name``."""
        self._entries[stats.index_name] = stats

    def get(self, index_name: str) -> IndexStatistics:
        """Return the statistics stored for ``index_name``."""
        try:
            return self._entries[index_name]
        except KeyError:
            raise CatalogError(
                f"catalog has no statistics for index {index_name!r}; "
                f"known indexes: {sorted(self._entries)}"
            ) from None

    def remove(self, index_name: str) -> None:
        """Delete the entry for ``index_name``."""
        if index_name not in self._entries:
            raise CatalogError(
                f"cannot remove unknown index {index_name!r}"
            )
        del self._entries[index_name]

    def to_json(self, indent: int = 2) -> str:
        """Serialize the whole catalog to a JSON string."""
        payload = {
            name: stats.to_dict() for name, stats in self._entries.items()
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SystemCatalog":
        """Parse a catalog from :meth:`to_json` output."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CatalogError(f"invalid catalog JSON: {exc}") from exc
        catalog = cls()
        for name, record in payload.items():
            stats = IndexStatistics.from_dict(record)
            if stats.index_name != name:
                raise CatalogError(
                    f"catalog key {name!r} does not match record name "
                    f"{stats.index_name!r}"
                )
            catalog.put(stats)
        return catalog

    def save(self, path: Union[str, Path]) -> None:
        """Write the catalog to ``path`` as JSON."""
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SystemCatalog":
        """Read a catalog previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))
