"""Catalog records and their JSON persistence.

:class:`IndexStatistics` is the contract between statistics-collection time
(LRU-Fit, the cluster-ratio statistics passes) and query-compilation time
(Est-IO, the baseline estimators): a compact summary that fully determines
every estimate.  :class:`SystemCatalog` is a named collection of them with
file round-tripping, standing in for the host DBMS's catalog tables.

The wire format is versioned: files carry a top-level ``schema_version``
and an ``indexes`` mapping.  Version-0 files (the original unversioned
flat ``{name: record}`` mapping) migrate transparently on load via
:data:`MIGRATIONS`; saves are atomic (tmp file + ``os.replace``) so a
crash mid-save can never truncate the catalog serving concurrent readers.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, Optional, Union

from repro.errors import CatalogError
from repro.fit.segments import PiecewiseLinear

#: Current catalog wire-format version.  v0 = the unversioned flat
#: ``{name: record}`` mapping; v1 wraps it as
#: ``{"schema_version": 1, "indexes": {...}}``.
SCHEMA_VERSION = 1


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp + fsync + replace).

    The bytes are written to a temporary file in the destination
    directory, fsynced, and moved into place with ``os.replace`` —
    readers see either the old complete file or the new complete file,
    never a truncated hybrid.  The binary form exists for recovery
    paths that must restore a file *exactly* as captured, even when the
    captured bytes are not valid UTF-8 (e.g. restoring a pre-publish
    catalog that was already corrupt).
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent) or ".",
        prefix=path.name + ".",
        suffix=".tmp",
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp + fsync + replace).

    UTF-8 wrapper over :func:`atomic_write_bytes`.  Shared by catalog
    saves and LRU-Fit checkpoints.
    """
    atomic_write_bytes(path, text.encode("utf-8"))


@dataclass(frozen=True)
class IndexStatistics:
    """Everything stored in the catalog about one index.

    ======================  =================================================
    Field                   Paper quantity
    ======================  =================================================
    ``table_pages``         T
    ``table_records``       N
    ``distinct_keys``       I
    ``clustering_factor``   C = (N - F_min) / (N - T)
    ``fpf_curve``           six-segment approximation of the FPF curve
    ``b_min`` / ``b_max``   modeled buffer range
    ``f_min``               page fetches at B_min (C's numerator input)
    ``dc_cluster_count``    Algorithm DC's CC (optional; None if not gathered)
    ``fetches_b1``          F(B=1), Algorithm SD's J (optional)
    ``fetches_b3``          F(B=3), Algorithm OT's J (optional)
    ``policy``              replacement policy the curve was fitted under
    ======================  =================================================

    ``policy`` defaults to ``"lru"`` (the paper's model) and is carried
    on the wire only when it differs, so records written by older
    versions — and all LRU records, byte for byte — are unaffected; the
    reader tolerates its absence.  The engine keys estimator bindings on
    it, so a record refit under another policy never serves a stale
    LRU-bound estimator.
    """

    index_name: str
    table_pages: int
    table_records: int
    distinct_keys: int
    clustering_factor: float
    fpf_curve: PiecewiseLinear
    b_min: int
    b_max: int
    f_min: int
    dc_cluster_count: Optional[int] = None
    fetches_b1: Optional[int] = None
    fetches_b3: Optional[int] = None
    policy: str = "lru"

    def __post_init__(self) -> None:
        if not self.policy or not isinstance(self.policy, str):
            raise CatalogError(
                f"policy must be a non-empty string, got {self.policy!r}"
            )
        if self.table_pages < 1:
            raise CatalogError(f"table_pages must be >= 1, got {self.table_pages}")
        if self.table_records < self.table_pages:
            raise CatalogError(
                f"table_records ({self.table_records}) < table_pages "
                f"({self.table_pages})"
            )
        if not 1 <= self.distinct_keys <= self.table_records:
            raise CatalogError(
                f"distinct_keys must be in [1, N], got {self.distinct_keys}"
            )
        if not 0.0 <= self.clustering_factor <= 1.0:
            raise CatalogError(
                f"clustering_factor must be in [0, 1], got "
                f"{self.clustering_factor}"
            )
        if not 1 <= self.b_min <= self.b_max:
            raise CatalogError(
                f"need 1 <= b_min <= b_max, got [{self.b_min}, {self.b_max}]"
            )
        if not 1 <= self.f_min <= self.table_records:
            raise CatalogError(
                f"f_min must be in [1, N={self.table_records}], got "
                f"{self.f_min}: a scan fetches at least one page and at "
                f"most one per record"
            )
        if self.table_records > self.table_pages:
            # C is *defined* from f_min: C = (N - F_min)/(N - T), clamped
            # to [0, 1] (LRU-Fit clamps when f_min falls outside [T, N]).
            # Tolerate one record of rounding so hand-written records with
            # a rounded f_min still validate, but reject anything farther —
            # a record whose two fields disagree would silently skew every
            # correction and urn-model term downstream.
            derived = (self.table_records - self.f_min) / (
                self.table_records - self.table_pages
            )
            derived = min(1.0, max(0.0, derived))
            tolerance = 1.0 / (self.table_records - self.table_pages)
            if abs(self.clustering_factor - derived) > tolerance + 1e-9:
                raise CatalogError(
                    f"clustering_factor {self.clustering_factor!r} is "
                    f"inconsistent with f_min={self.f_min}: "
                    f"C = (N - F_min)/(N - T) gives {derived!r} for "
                    f"N={self.table_records}, T={self.table_pages}"
                )

    def to_dict(self) -> dict:
        """JSON-ready dictionary form of this record.

        ``policy`` is emitted only when non-default so every LRU record
        renders the exact bytes it always has (the golden fixtures and
        on-disk catalogs written before the policy dimension existed
        stay byte-identical).
        """
        payload = {
            "index_name": self.index_name,
            "table_pages": self.table_pages,
            "table_records": self.table_records,
            "distinct_keys": self.distinct_keys,
            "clustering_factor": self.clustering_factor,
            "fpf_curve": self.fpf_curve.to_pairs(),
            "b_min": self.b_min,
            "b_max": self.b_max,
            "f_min": self.f_min,
            "dc_cluster_count": self.dc_cluster_count,
            "fetches_b1": self.fetches_b1,
            "fetches_b3": self.fetches_b3,
        }
        if self.policy != "lru":
            payload["policy"] = self.policy
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "IndexStatistics":
        """Rebuild a record from :meth:`to_dict` output."""
        try:
            return cls(
                index_name=data["index_name"],
                table_pages=data["table_pages"],
                table_records=data["table_records"],
                distinct_keys=data["distinct_keys"],
                clustering_factor=data["clustering_factor"],
                fpf_curve=PiecewiseLinear.from_pairs(data["fpf_curve"]),
                b_min=data["b_min"],
                b_max=data["b_max"],
                f_min=data["f_min"],
                dc_cluster_count=data.get("dc_cluster_count"),
                fetches_b1=data.get("fetches_b1"),
                fetches_b3=data.get("fetches_b3"),
                # Tolerant reader: records predating the policy dimension
                # (and all LRU records) simply omit the key.
                policy=data.get("policy", "lru"),
            )
        except KeyError as missing:
            raise CatalogError(
                f"catalog record is missing field {missing}"
            ) from None


class SystemCatalog:
    """A named collection of :class:`IndexStatistics` with file persistence."""

    def __init__(self) -> None:
        self._entries: Dict[str, IndexStatistics] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, index_name: str) -> bool:
        return index_name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def put(self, stats: IndexStatistics) -> None:
        """Insert or replace the entry for ``stats.index_name``."""
        self._entries[stats.index_name] = stats

    def get(self, index_name: str) -> IndexStatistics:
        """Return the statistics stored for ``index_name``."""
        try:
            return self._entries[index_name]
        except KeyError:
            raise CatalogError(
                f"catalog has no statistics for index {index_name!r}; "
                f"known indexes: {sorted(self._entries)}"
            ) from None

    def remove(self, index_name: str) -> None:
        """Delete the entry for ``index_name``."""
        if index_name not in self._entries:
            raise CatalogError(
                f"cannot remove unknown index {index_name!r}"
            )
        del self._entries[index_name]

    def to_dict(self) -> dict:
        """JSON-ready dictionary in the current (v1) wire format."""
        return {
            "schema_version": SCHEMA_VERSION,
            "indexes": {
                name: stats.to_dict()
                for name, stats in self._entries.items()
            },
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialize the whole catalog to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "SystemCatalog":
        """Rebuild a catalog from any supported wire-format version."""
        if not isinstance(payload, dict):
            raise CatalogError(
                f"catalog payload must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        payload = migrate_payload(payload)
        catalog = cls()
        indexes = payload["indexes"]
        if not isinstance(indexes, dict):
            raise CatalogError(
                f"catalog 'indexes' must be an object mapping index names "
                f"to records, got {type(indexes).__name__}"
            )
        for name, record in indexes.items():
            stats = IndexStatistics.from_dict(record)
            if stats.index_name != name:
                raise CatalogError(
                    f"catalog key {name!r} does not match record name "
                    f"{stats.index_name!r}"
                )
            catalog.put(stats)
        return catalog

    @classmethod
    def from_json(cls, text: str) -> "SystemCatalog":
        """Parse a catalog from :meth:`to_json` output (any version)."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CatalogError(f"invalid catalog JSON: {exc}") from exc
        return cls.from_dict(payload)

    def save(self, path: Union[str, Path]) -> None:
        """Atomically write the catalog to ``path`` as JSON.

        The JSON is written to a temporary file in the destination
        directory, fsynced, and moved into place with ``os.replace`` —
        readers (including :class:`~repro.catalog.store.CatalogStore`
        instances polling mtime) see either the old complete file or the
        new complete file, never a truncated hybrid.
        """
        atomic_write_text(path, self.to_json())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SystemCatalog":
        """Read a catalog previously written by :meth:`save` (any version)."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))


# ----------------------------------------------------------------------
# Wire-format migrations
# ----------------------------------------------------------------------
def _migrate_v0(payload: dict) -> dict:
    """v0 -> v1: wrap the flat ``{name: record}`` mapping."""
    return {"schema_version": 1, "indexes": payload}


#: Migration hooks: version k -> function upgrading a version-k payload to
#: version k+1.  ``migrate_payload`` chains them until the payload reaches
#: :data:`SCHEMA_VERSION`; a future v2 adds its upgrader under key 1.
MIGRATIONS: Dict[int, Callable[[dict], dict]] = {
    0: _migrate_v0,
}


def payload_version(payload: dict) -> int:
    """The wire-format version of a parsed catalog payload.

    Files predating versioning carry no ``schema_version`` key; they are
    the flat v0 mapping.
    """
    version = payload.get("schema_version", 0)
    if not isinstance(version, int) or isinstance(version, bool):
        raise CatalogError(
            f"catalog schema_version must be an integer, got {version!r}"
        )
    return version


def migrate_payload(payload: dict) -> dict:
    """Upgrade ``payload`` to the current wire format, step by step."""
    version = payload_version(payload)
    if version > SCHEMA_VERSION:
        raise CatalogError(
            f"catalog schema_version {version} is newer than this "
            f"library's {SCHEMA_VERSION}; upgrade the repro package (or "
            f"re-run statistics collection) to read this file"
        )
    while version < SCHEMA_VERSION:
        payload = MIGRATIONS[version](payload)
        new_version = payload_version(payload)
        if new_version <= version:
            raise CatalogError(
                f"catalog migration from version {version} did not "
                f"advance the schema_version (got {new_version})"
            )
        version = new_version
    if "indexes" not in payload:
        raise CatalogError(
            f"catalog (schema_version {version}) is missing the "
            f"'indexes' mapping"
        )
    return payload
