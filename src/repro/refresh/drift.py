"""Drift detection between a served catalog record and a candidate.

The refresh loop must answer one question per cycle: *does the freshly
fitted curve differ enough from what is currently served to justify a
roll-forward?*  The comparison machinery already exists — the golden
regression fixture diffs structured per-case payloads (curve samples on
a buffer grid plus estimator outputs on the probe grid) through
:func:`repro.verify.golden.compare_golden`.  This module renders both
records into exactly that payload shape and reuses the comparator, so
"drift" means the same thing online that it means in CI.

On top of the structural diff it computes a scalar *magnitude*: the
maximum relative difference between the two fitted curves over the
probe grid.  The controller publishes only when the magnitude exceeds
its configured threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.catalog.catalog import IndexStatistics
from repro.errors import RefreshError
from repro.estimators.registry import get_estimator
from repro.types import ScanSelectivity
from repro.verify.golden import GOLDEN_PROBES, compare_golden

#: Buffer-grid points sampled from each curve for the comparison.
DRIFT_GRID_POINTS = 16


def _buffer_grid(stats: IndexStatistics, points: int) -> List[int]:
    """~``points`` log-spaced integer buffer sizes over the modeled
    range of ``stats``."""
    lo, hi = stats.b_min, stats.b_max
    if lo >= hi:
        return [lo]
    ratio = hi / lo
    raw = {
        max(lo, min(hi, round(lo * ratio ** (i / (points - 1)))))
        for i in range(points)
    }
    return sorted(raw)


def _curve_samples(
    stats: IndexStatistics, buffers: List[int]
) -> List[float]:
    """Clamped curve evaluations (the physical [T, N] band, exactly as
    Est-IO serves them)."""
    t = float(stats.table_pages)
    n = float(stats.table_records)
    return [
        min(n, max(t, stats.fpf_curve.evaluate(float(b))))
        for b in buffers
    ]


def _case_payload(
    stats: IndexStatistics, buffers: List[int]
) -> dict:
    """One record, rendered in the golden fixture's per-case shape."""
    estimator = get_estimator("epfis", stats)
    probe_buffers = sorted({buffers[0], buffers[len(buffers) // 2],
                            buffers[-1]})
    requests = [
        (ScanSelectivity(sigma, s), b)
        for b in probe_buffers
        for sigma, s in GOLDEN_PROBES
    ]
    return {
        "family": stats.policy,
        "seed": 0,
        "references": stats.table_records,
        "distinct_pages": stats.table_pages,
        "buffer_sizes": buffers,
        "fetch_curve": _curve_samples(stats, buffers),
        "sampled_curve": [],
        "estimators": {"epfis": estimator.estimate_many(requests)},
    }


@dataclass(frozen=True)
class DriftReport:
    """Outcome of one served-vs-candidate comparison.

    ``lines`` is the structural diff from the golden comparator (empty
    means byte-equal payloads); ``magnitude`` is the maximum relative
    curve difference over the grid (``inf`` when nothing is served
    yet).
    """

    lines: Tuple[str, ...]
    magnitude: float

    def drifted(self, threshold: float) -> bool:
        """Whether the drift warrants a roll-forward at ``threshold``."""
        return self.magnitude > threshold


def compare_statistics(
    served: Optional[IndexStatistics],
    candidate: IndexStatistics,
    grid_points: int = DRIFT_GRID_POINTS,
) -> DriftReport:
    """Diff ``candidate`` against the currently ``served`` record.

    Both sides are sampled on the *candidate's* buffer grid, so the
    comparison sees the same domain regardless of how the served
    record's modeled range differs.  ``served=None`` (nothing published
    yet) reports infinite drift: the first fit always publishes.
    ``grid_points`` must be >= 2 — the grid spans ``[b_min, b_max]``
    with both endpoints, so a one-point grid cannot exist.
    """
    if grid_points < 2:
        raise RefreshError(
            f"grid_points must be >= 2, got {grid_points}"
        )
    buffers = _buffer_grid(candidate, grid_points)
    if served is None:
        return DriftReport(
            lines=("no served record: first publish",),
            magnitude=float("inf"),
        )
    name = candidate.index_name
    expected = {"cases": {name: _case_payload(served, buffers)}}
    actual = {"cases": {name: _case_payload(candidate, buffers)}}
    lines = tuple(compare_golden(expected, actual))
    served_curve = _curve_samples(served, buffers)
    candidate_curve = _curve_samples(candidate, buffers)
    magnitude = max(
        abs(got - want) / max(1.0, abs(want))
        for want, got in zip(served_curve, candidate_curve)
    )
    return DriftReport(lines=lines, magnitude=magnitude)
