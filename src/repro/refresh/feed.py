"""Live reference feeds for the online refresh loop.

A *feed* is anything range-addressable the way
:class:`~repro.trace.paper_scale.PaperScaleTrace` is: ``chunks(start,
stop)`` yields the page references of positions ``[start, stop)`` as
lists, independently of every other range.  Range-addressability is
what makes the refresh loop resumable — after a crash the controller
re-requests exactly the window it was consuming, and the checkpoint
layer skips the already-digested prefix.

Three implementations:

:class:`SequenceFeed`
    A materialized trace (any ``Sequence[int]``) — the unit-test feed.

:class:`DriftingFeed`
    A piecewise-stationary synthetic feed: consecutive
    :class:`FeedPhase` segments, each backed by its own
    :class:`~repro.trace.paper_scale.PaperScaleTrace` generator, so
    workload drift is injected at exact, reproducible positions.  A
    single phase makes it a stationary feed.

:class:`FaultyFeed`
    A chaos wrapper that raises
    :class:`~repro.errors.FeedError` at deterministic chunk boundaries
    — at most once per position, so a retrying consumer always makes
    progress.  The decision is a pure hash of (seed, position):
    replaying a failed run replays the identical fault schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import FeedError, RefreshError
from repro.trace.paper_scale import (
    CHUNK_REFS,
    PaperScaleSpec,
    PaperScaleTrace,
    _mix64,
)

#: Phase generators are built unbounded: the refresh loop consumes an
#: open-ended position stream, not a finite trace.
_UNBOUNDED_REFS = 1 << 50


class SequenceFeed:
    """A feed over a materialized reference sequence."""

    def __init__(
        self, pages: Sequence[int], chunk_refs: int = CHUNK_REFS
    ) -> None:
        if chunk_refs < 1:
            raise RefreshError(
                f"chunk_refs must be >= 1, got {chunk_refs}"
            )
        self._pages = pages
        self._chunk_refs = chunk_refs
        self.total_refs = len(pages)

    def chunks(self, start: int, stop: int) -> Iterator[List[int]]:
        """The references of positions ``[start, stop)``, chunked."""
        if not 0 <= start <= stop <= self.total_refs:
            raise RefreshError(
                f"range [{start}, {stop}) is outside the feed's "
                f"[0, {self.total_refs})"
            )
        for lo in range(start, stop, self._chunk_refs):
            hi = min(lo + self._chunk_refs, stop)
            yield list(self._pages[lo:hi])


@dataclass(frozen=True)
class FeedPhase:
    """One stationary segment of a :class:`DriftingFeed`.

    ``start_ref`` is the global position the phase takes over at; the
    phase's generator is addressed in phase-local coordinates, so the
    workload it produces does not depend on where earlier phases ended.
    """

    start_ref: int
    spec: PaperScaleSpec

    def __post_init__(self) -> None:
        if self.start_ref < 0:
            raise RefreshError(
                f"start_ref must be >= 0, got {self.start_ref}"
            )


class DriftingFeed:
    """A piecewise-stationary feed with drift at exact positions."""

    def __init__(self, phases: Sequence[FeedPhase]) -> None:
        phases = tuple(phases)
        if not phases:
            raise RefreshError("a DriftingFeed needs at least one phase")
        if phases[0].start_ref != 0:
            raise RefreshError(
                f"the first phase must start at reference 0, got "
                f"{phases[0].start_ref}"
            )
        for before, after in zip(phases, phases[1:]):
            if after.start_ref <= before.start_ref:
                raise RefreshError(
                    f"phase starts must strictly increase, got "
                    f"{before.start_ref} then {after.start_ref}"
                )
        self._phases = phases
        self._traces = tuple(
            PaperScaleTrace(replace(phase.spec, refs=_UNBOUNDED_REFS))
            for phase in phases
        )
        self.total_refs = _UNBOUNDED_REFS

    @classmethod
    def stationary(cls, spec: PaperScaleSpec) -> "DriftingFeed":
        """A feed with no drift at all."""
        return cls((FeedPhase(0, spec),))

    def _bounds(self) -> Tuple[Tuple[int, int], ...]:
        starts = [phase.start_ref for phase in self._phases]
        stops = starts[1:] + [_UNBOUNDED_REFS]
        return tuple(zip(starts, stops))

    def chunks(self, start: int, stop: int) -> Iterator[List[int]]:
        """Positions ``[start, stop)``, split across phase boundaries
        and delegated to each phase's generator in local coordinates."""
        if not 0 <= start <= stop <= self.total_refs:
            raise RefreshError(
                f"range [{start}, {stop}) is outside the feed's "
                f"[0, {self.total_refs})"
            )
        for (lo, hi), trace in zip(self._bounds(), self._traces):
            overlap_lo = max(start, lo)
            overlap_hi = min(stop, hi)
            if overlap_lo >= overlap_hi:
                continue
            yield from trace.chunks(overlap_lo - lo, overlap_hi - lo)


class FaultyFeed:
    """A feed wrapper injecting deterministic, recoverable faults.

    Before yielding the chunk starting at position ``p``, raise
    :class:`~repro.errors.FeedError` iff ``mix64(seed, p) % period ==
    0`` — unless this instance already fired at ``p`` (so a retry of
    the same range gets one chunk further every attempt) or the total
    ``limit`` is spent.  ``period=1`` fires on every new chunk
    boundary: the worst case a retry loop must survive.
    """

    def __init__(
        self,
        feed,
        period: int = 4,
        limit: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if period < 1:
            raise RefreshError(f"period must be >= 1, got {period}")
        if limit is not None and limit < 0:
            raise RefreshError(
                f"limit must be >= 0 or None, got {limit}"
            )
        self._feed = feed
        self._period = period
        self._limit = limit
        self._seed = seed
        self._fired: set = set()
        #: Faults raised so far (observability/tests).
        self.faults = 0

    @property
    def total_refs(self) -> int:
        """The wrapped feed's length (faults don't shorten it)."""
        return self._feed.total_refs

    def _should_fire(self, position: int) -> bool:
        if self._limit is not None and self.faults >= self._limit:
            return False
        if position in self._fired:
            return False
        if _mix64(self._seed, position) % self._period != 0:
            return False
        self._fired.add(position)
        self.faults += 1
        return True

    def chunks(self, start: int, stop: int) -> Iterator[List[int]]:
        """The wrapped feed's chunks, with scheduled faults raised at
        chunk boundaries (before the chunk they would precede)."""
        position = start
        for chunk in self._feed.chunks(start, stop):
            if self._should_fire(position):
                raise FeedError(
                    f"injected feed fault at reference {position}"
                )
            yield chunk
            position += len(chunk)
