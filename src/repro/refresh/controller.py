"""The online catalog refresh controller.

One :class:`RefreshController` owns the full refresh loop for a single
index:

1. **Windowed, checkpointed fit** — each cycle consumes the next
   ``window_refs`` positions of the feed through
   :meth:`~repro.estimators.epfis.LRUFit.curve_streaming` under a
   :class:`~repro.resilience.checkpoint.Checkpointer`, retrying
   transient :class:`~repro.errors.FeedError`\\ s with checkpoint
   resume — a killed-and-restarted cycle recomputes the byte-identical
   curve.
2. **Decayed blend** — the fresh window curve is blended with the
   previously emitted record (``decay`` weight on the past), so one
   noisy window cannot yank the served statistics around.
3. **Drift gate** — the blended candidate is diffed against the
   currently served record via the golden-drift comparator
   (:mod:`repro.refresh.drift`); below ``drift_threshold`` nothing is
   published.
4. **Breaker-guarded roll-forward** — a publish goes through the
   versioned catalog store (archive-then-publish), then *post-publish
   validation* runs: a read-back equality check, an oracle spot-check
   of the published curve, and an engine-cache invalidation probe
   against a long-lived engine.  Failure quarantines the candidate,
   rolls the store back to last-known-good, and records a breaker
   failure; enough consecutive failures open the breaker and later
   cycles skip publishing until the cooldown elapses.

Controller state (feed position, cycle counter, the previously emitted
record) persists in an atomic JSON file, so the loop survives process
death: floats round-trip exactly through JSON, which is what makes the
resumed blend — and therefore the next published curve — byte-identical
to an uninterrupted run.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.buffer.kernels import (
    DEFAULT_KERNEL,
    available_kernels,
    available_policy_kernels,
)
from repro.catalog.catalog import (
    IndexStatistics,
    SystemCatalog,
    atomic_write_bytes,
    atomic_write_text,
)
from repro.catalog.store import CatalogStore
from repro.engine import EstimationEngine
from repro.errors import CatalogError, FeedError, RefreshError
from repro.estimators.epfis import LRUFit, LRUFitConfig
from repro.estimators.registry import get_estimator
from repro.obs import instruments
from repro.obs.metrics import MetricsRegistry, global_registry
from repro.obs.tracing import span as obs_span
from repro.refresh.drift import DriftReport, compare_statistics
from repro.resilience.breaker import BreakerPolicy, CircuitBreaker
from repro.resilience.checkpoint import CheckpointPolicy, Checkpointer
from repro.types import ScanSelectivity
from repro.verify.golden import GOLDEN_PROBES

#: Wire-format version of the persisted controller state.
REFRESH_STATE_SCHEMA_VERSION = 1

#: Controller state file name inside the state directory.
REFRESH_STATE_FILENAME = "refresh-state.json"

#: Checkpoint subdirectory for the in-flight cycle's kernel pass.
CYCLE_CHECKPOINT_DIRNAME = "cycle-ckpt"

#: Quarantine subdirectory for candidates that failed validation.
QUARANTINE_DIRNAME = "quarantine"

#: Cycle outcome actions (the ``action`` label of
#: ``repro_refresh_cycles_total``).
ACTION_PUBLISHED = "published"
ACTION_SKIPPED = "skipped-below-threshold"
ACTION_BREAKER_OPEN = "breaker-open"
ACTION_ROLLED_BACK = "rolled-back"


@dataclass(frozen=True)
class RefreshConfig:
    """Tunable parameters of one refresh loop."""

    index_name: str
    window_refs: int = 20_000
    #: Weight of the previously emitted curve in the blend (0 = pure
    #: windowed fit, no memory).
    decay: float = 0.5
    #: Relative curve drift above which a candidate is published.
    drift_threshold: float = 0.01
    checkpoint_every: int = 4_096
    kernel: str = DEFAULT_KERNEL
    policy: str = "lru"
    #: Transient feed faults tolerated per cycle before giving up.
    feed_retries: int = 8
    #: Transient publish faults tolerated per cycle.
    publish_retries: int = 2
    breaker_policy: BreakerPolicy = field(default_factory=BreakerPolicy)
    #: Chaos drill hook: cycles whose publish is deliberately corrupted
    #: (a simulated bad roll-forward) to exercise the rollback path.
    corrupt_publish_cycles: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.index_name:
            raise RefreshError("index_name must be non-empty")
        if self.window_refs < 1:
            raise RefreshError(
                f"window_refs must be >= 1, got {self.window_refs}"
            )
        if not 0.0 <= self.decay < 1.0:
            raise RefreshError(
                f"decay must be in [0, 1), got {self.decay}"
            )
        if self.drift_threshold < 0.0:
            raise RefreshError(
                f"drift_threshold must be >= 0, got "
                f"{self.drift_threshold}"
            )
        if self.checkpoint_every < 1:
            raise RefreshError(
                f"checkpoint_every must be >= 1, got "
                f"{self.checkpoint_every}"
            )
        if self.feed_retries < 0:
            raise RefreshError(
                f"feed_retries must be >= 0, got {self.feed_retries}"
            )
        if self.publish_retries < 0:
            raise RefreshError(
                f"publish_retries must be >= 0, got "
                f"{self.publish_retries}"
            )
        if self.kernel not in available_kernels():
            raise RefreshError(
                f"unknown stack-distance kernel {self.kernel!r}; "
                f"available: {', '.join(available_kernels())}"
            )
        policies = ("lru",) + available_policy_kernels()
        if self.policy not in policies:
            raise RefreshError(
                f"unknown replacement policy {self.policy!r}; "
                f"available: {', '.join(policies)}"
            )


@dataclass(frozen=True)
class RefreshState:
    """Persisted loop state: where the feed stands and what was last
    emitted."""

    position: int = 0
    cycle: int = 0
    previous: Optional[IndexStatistics] = None

    def to_dict(self) -> dict:
        """The JSON-serialisable wire form (exact float round-trip)."""
        return {
            "schema_version": REFRESH_STATE_SCHEMA_VERSION,
            "position": self.position,
            "cycle": self.cycle,
            "previous": (
                self.previous.to_dict()
                if self.previous is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RefreshState":
        """Rebuild persisted state, rejecting unknown schema versions."""
        version = payload.get("schema_version")
        if version != REFRESH_STATE_SCHEMA_VERSION:
            raise RefreshError(
                f"refresh state has schema_version {version!r}; this "
                f"build reads {REFRESH_STATE_SCHEMA_VERSION}"
            )
        previous = payload.get("previous")
        return cls(
            position=payload["position"],
            cycle=payload["cycle"],
            previous=(
                IndexStatistics.from_dict(previous)
                if previous is not None
                else None
            ),
        )


@dataclass(frozen=True)
class CycleResult:
    """Outcome of one refresh cycle."""

    cycle: int
    start_ref: int
    stop_ref: int
    magnitude: float
    action: str
    version: Optional[int]
    drift_lines: Tuple[str, ...] = ()


class _BlendedCurve:
    """A decayed fetch curve: ``decay`` parts previously served record,
    ``1 - decay`` parts fresh window curve.

    Exposes exactly the duck surface
    :meth:`~repro.estimators.epfis.LRUFit.statistics_from_curve`
    consumes (``accesses`` + ``fetches(b)``).  The previous record is
    evaluated through its fitted curve, clamped to its physical
    ``[T, N]`` band the same way Est-IO serves it; the blend is then
    clamped into ``[1, window accesses]`` so the derived ``f_min``
    always validates against the window's record count.
    """

    def __init__(
        self,
        previous: IndexStatistics,
        fresh,
        decay: float,
    ) -> None:
        self._previous = previous
        self._fresh = fresh
        self._decay = decay
        self.accesses = fresh.accesses
        self.distinct_pages = fresh.distinct_pages

    def fetches(self, buffer_pages: int) -> float:
        previous = self._previous
        raw = previous.fpf_curve.evaluate(float(buffer_pages))
        old = min(
            float(previous.table_records),
            max(float(previous.table_pages), raw),
        )
        new = float(self._fresh.fetches(buffer_pages))
        blended = self._decay * old + (1.0 - self._decay) * new
        return min(float(self.accesses), max(1.0, blended))


def _bind_refresh_counters(
    registry: MetricsRegistry,
) -> Dict[str, object]:
    """Resolve the label-less refresh counter children once."""
    return {
        "drift_detected": instruments.refresh_drift_detected(
            registry
        ).labels(),
        "publishes": instruments.refresh_publishes(registry).labels(),
        "rollbacks": instruments.refresh_rollbacks(registry).labels(),
        "quarantined": instruments.refresh_quarantined_candidates(
            registry
        ).labels(),
    }


class RefreshController:
    """The long-lived refresh loop for one index of one catalog store.

    ``store`` must keep enough version history that last-known-good
    survives a whole cycle's publish attempts — rollback is the whole
    point.  Every attempt archives a candidate version and prunes the
    archive to ``history``, and one cycle makes up to
    ``publish_retries + 1`` attempts, so the floor is
    ``publish_retries + 2`` (the attempts plus the last-good version
    they must not evict).  ``state_dir`` holds the loop's persisted
    state, the in-flight cycle's checkpoint, and the quarantine of
    failed candidates.  ``clock`` is injectable so tests drive breaker
    cooldowns without sleeping.
    """

    def __init__(
        self,
        store: CatalogStore,
        feed,
        config: RefreshConfig,
        state_dir: Union[str, Path],
        registry: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not isinstance(store, CatalogStore):
            raise RefreshError(
                f"store must be a CatalogStore, got "
                f"{type(store).__name__}"
            )
        min_history = config.publish_retries + 2
        if store.history < min_history:
            raise RefreshError(
                f"the refresh loop rolls back through the store's "
                f"version history, and a single cycle may archive up "
                f"to publish_retries + 1 = {config.publish_retries + 1} "
                f"candidate versions before rolling back — with "
                f"history={store.history} the pruning would evict "
                f"last-known-good exactly when it is needed; construct "
                f"the store with history >= {min_history}"
            )
        self._store = store
        self._feed = feed
        self.config = config
        self._state_dir = Path(state_dir)
        self._clock = clock
        self._fit = LRUFit(
            LRUFitConfig(kernel=config.kernel, policy=config.policy)
        )
        # Truthful counters: a private always-enabled registry (or the
        # caller's), mirrored onto the process-global registry so
        # exports carry the refresh families (the same pattern as
        # ResilientCatalogStore).
        self._obs_registry = (
            registry if registry is not None else MetricsRegistry()
        )
        self._counters = _bind_refresh_counters(self._obs_registry)
        shared = global_registry()
        self._mirror = (
            _bind_refresh_counters(shared)
            if shared is not self._obs_registry
            else None
        )
        self._breaker = CircuitBreaker(
            config.breaker_policy,
            clock=clock,
            registry=shared,
            name=f"refresh:{config.index_name}",
        )
        # The long-lived engine-cache invalidation probe: an engine
        # that lives across publishes, exactly like a serving process.
        self._probe_engine = EstimationEngine(store)
        self._state = self._load_state()

    # ------------------------------------------------------------------
    # Persisted state
    # ------------------------------------------------------------------
    @property
    def state_path(self) -> Path:
        """The controller's persisted-state file."""
        return self._state_dir / REFRESH_STATE_FILENAME

    @property
    def quarantine_dir(self) -> Path:
        """Where candidates that failed validation are set aside."""
        return self._state_dir / QUARANTINE_DIRNAME

    @property
    def state(self) -> RefreshState:
        """The current loop state (position, cycle, last emission)."""
        return self._state

    @property
    def breaker(self) -> CircuitBreaker:
        """The publish breaker (tests drive its clock)."""
        return self._breaker

    @property
    def store(self) -> CatalogStore:
        """The versioned catalog store this loop publishes into."""
        return self._store

    def _load_state(self) -> RefreshState:
        try:
            text = self.state_path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return RefreshState()
        try:
            return RefreshState.from_dict(json.loads(text))
        except (json.JSONDecodeError, KeyError, CatalogError) as exc:
            raise RefreshError(
                f"refresh state {str(self.state_path)!r} is corrupt: "
                f"{exc}"
            ) from exc

    def _save_state(self) -> None:
        self._state_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            self.state_path,
            json.dumps(self._state.to_dict(), sort_keys=True),
        )

    # ------------------------------------------------------------------
    # Metrics plumbing
    # ------------------------------------------------------------------
    def _count(self, key: str, amount: int = 1) -> None:
        self._counters[key].inc(amount)
        if self._mirror is not None:
            self._mirror[key].inc(amount)

    def _count_cycle(self, action: str) -> None:
        instruments.refresh_cycles(self._obs_registry).labels(
            action=action
        ).inc()
        if self._mirror is not None:
            instruments.refresh_cycles(global_registry()).labels(
                action=action
            ).inc()

    def metrics(self) -> Dict[str, object]:
        """Truthful loop counters (all monotone)."""
        cycles = instruments.refresh_cycles(self._obs_registry)
        return {
            "cycles": {
                labels[0]: child.value
                for labels, child in cycles.children().items()
            },
            "drift_detected": self._counters["drift_detected"].value,
            "publishes": self._counters["publishes"].value,
            "rollbacks": self._counters["rollbacks"].value,
            "quarantined": self._counters["quarantined"].value,
            "breaker_state": self._breaker.state,
            "breaker_opens": self._breaker.opens,
        }

    # ------------------------------------------------------------------
    # The refresh cycle
    # ------------------------------------------------------------------
    def run_cycle(self) -> CycleResult:
        """Consume one window from the feed and roll the catalog
        forward if (and only if) the refreshed curve drifted."""
        started = time.perf_counter_ns()
        cycle = self._state.cycle
        start = self._state.position
        stop = start + self.config.window_refs
        with obs_span(
            "refresh-cycle",
            index=self.config.index_name,
            cycle=cycle,
        ):
            curve = self._window_curve(start, stop)
            candidate = self._candidate_from(curve)
            served = self._served_record()
            report = compare_statistics(served, candidate)
            action, version = self._roll_forward(
                cycle, served, candidate, report
            )
        # The emitted (blended) record advances every cycle — the
        # decayed fit tracks the feed whether or not it published.
        self._state = RefreshState(
            position=stop, cycle=cycle + 1, previous=candidate
        )
        self._save_state()
        self._count_cycle(action)
        elapsed = (time.perf_counter_ns() - started) / 1e9
        instruments.refresh_cycle_seconds(
            self._obs_registry
        ).labels().observe(elapsed)
        if self._mirror is not None:
            instruments.refresh_cycle_seconds(
                global_registry()
            ).labels().observe(elapsed)
        return CycleResult(
            cycle=cycle,
            start_ref=start,
            stop_ref=stop,
            magnitude=report.magnitude,
            action=action,
            version=version,
            drift_lines=report.lines,
        )

    def run(self, cycles: int) -> List[CycleResult]:
        """Run ``cycles`` consecutive refresh cycles."""
        if cycles < 1:
            raise RefreshError(f"cycles must be >= 1, got {cycles}")
        return [self.run_cycle() for _ in range(cycles)]

    def _window_curve(self, start: int, stop: int):
        """The fetch curve of feed positions ``[start, stop)``,
        checkpointed and retried across transient feed faults."""
        checkpointer = Checkpointer(
            self._state_dir / CYCLE_CHECKPOINT_DIRNAME,
            CheckpointPolicy(every_refs=self.config.checkpoint_every),
        )
        attempts = 0
        while True:
            try:
                return self._fit.curve_streaming(
                    self._feed.chunks(start, stop),
                    index_name=self.config.index_name,
                    checkpoint=checkpointer,
                    resume=checkpointer.exists(),
                )
            except FeedError:
                attempts += 1
                if attempts > self.config.feed_retries:
                    raise

    def _candidate_from(self, curve) -> IndexStatistics:
        """The blended candidate record for this cycle's window."""
        previous = self._state.previous
        config = self.config
        if previous is not None and config.decay > 0.0:
            curve = _BlendedCurve(previous, curve, config.decay)
        return self._fit.statistics_from_curve(
            curve,
            table_pages=curve.distinct_pages,
            distinct_keys=curve.distinct_pages,
            index_name=config.index_name,
        )

    def _served_record(self) -> Optional[IndexStatistics]:
        """The currently served record, or ``None`` when nothing is."""
        try:
            return self._store.get(self.config.index_name)
        except (CatalogError, OSError):
            return None

    # ------------------------------------------------------------------
    # Publish, validate, roll back
    # ------------------------------------------------------------------
    def _roll_forward(
        self,
        cycle: int,
        served: Optional[IndexStatistics],
        candidate: IndexStatistics,
        report: DriftReport,
    ) -> Tuple[str, Optional[int]]:
        if not report.drifted(self.config.drift_threshold):
            return ACTION_SKIPPED, None
        self._count("drift_detected")
        if not self._breaker.allow():
            return ACTION_BREAKER_OPEN, None
        last_good = self._store.current_version()
        pre_publish = self._pre_publish_bytes()
        text = self._render_catalog(candidate)
        if cycle in self.config.corrupt_publish_cycles:
            # The chaos drill: a deliberately bad roll-forward that
            # must be caught by validation and rolled back.
            text = text[: max(1, len(text) // 2)]
        version = self._publish(text)
        if version is not None and self._validate(candidate):
            self._breaker.record_success()
            self._count("publishes")
            return ACTION_PUBLISHED, version
        self._quarantine_candidate(cycle, candidate, report)
        self._rollback(last_good, pre_publish)
        self._breaker.record_failure()
        self._count("rollbacks")
        return ACTION_ROLLED_BACK, version

    def _pre_publish_bytes(self) -> Optional[bytes]:
        try:
            return self._store.path.read_bytes()
        except OSError:
            return None

    def _render_catalog(self, candidate: IndexStatistics) -> str:
        """The full catalog text with ``candidate`` merged in (other
        indexes served by the same file are preserved)."""
        merged = SystemCatalog()
        snapshot = self._merge_snapshot()
        if snapshot is not None:
            for name in snapshot:
                if name != candidate.index_name:
                    merged.put(snapshot.get(name))
        merged.put(candidate)
        return merged.to_json()

    def _merge_snapshot(self) -> Optional[SystemCatalog]:
        """The served snapshot whose co-resident indexes a publish must
        preserve; ``None`` only when no catalog file exists at all.

        A transient read fault is retried and then *propagated* — and a
        corrupt existing file raises outright — because treating either
        as an empty snapshot would render (and then publish, and then
        validate as "good": post-publish validation only checks the
        candidate's record) a catalog that silently drops every other
        index served from the same file.
        """
        attempts = 0
        while True:
            try:
                return self._store.catalog()
            except CatalogError:
                if self._store.path.exists():
                    raise
                return None
            except OSError:
                attempts += 1
                if attempts > self.config.publish_retries:
                    raise

    def _publish(self, text: str) -> Optional[int]:
        """Archive-then-publish through the store, retrying transient
        write faults; ``None`` when the publish never landed."""
        for _ in range(self.config.publish_retries + 1):
            try:
                return self._store.save_text(text)
            except OSError:
                continue
        return None

    def _validate(self, candidate: IndexStatistics) -> bool:
        """Post-publish validation: read-back equality, an oracle
        spot-check of the published curve, and the engine-cache
        invalidation probe."""
        # 1. Read-back through a *fresh* plain store: the published
        #    file must parse and carry exactly the candidate's bytes.
        try:
            readback = CatalogStore(self._store.path).get(
                candidate.index_name
            )
        except (CatalogError, OSError):
            return False
        if readback.to_dict() != candidate.to_dict():
            return False
        # 2. Oracle spot-check: the served curve must be finite,
        #    monotonically non-increasing in B, inside the physical
        #    [1, N] band, and its estimator probes finite and >= 0.
        if not self._oracle_spot_check(readback):
            return False
        # 3. Engine-cache invalidation probe: a long-lived engine over
        #    the same store must now serve the candidate — statistics
        #    and estimates both — proving the generation bump evicted
        #    its bound estimators.
        return self._engine_probe(candidate)

    def _oracle_spot_check(self, stats: IndexStatistics) -> bool:
        buffers = sorted(
            {
                stats.b_min,
                (stats.b_min + stats.b_max) // 2 or stats.b_min,
                stats.b_max,
            }
        )
        previous = None
        for b in buffers:
            value = stats.fpf_curve.evaluate(float(b))
            if not math.isfinite(value):
                return False
            if value < 0.0 or value > float(stats.table_records) + 0.5:
                return False
            if previous is not None and value > previous + 1e-6:
                return False
            previous = value
        estimator = get_estimator("epfis", stats)
        probes = [
            (ScanSelectivity(sigma, s), b)
            for b in buffers
            for sigma, s in GOLDEN_PROBES
        ]
        return all(
            math.isfinite(v) and v >= 0.0
            for v in estimator.estimate_many(probes)
        )

    def _engine_probe(self, candidate: IndexStatistics) -> bool:
        engine = self._probe_engine
        name = candidate.index_name
        try:
            served = engine.statistics(name)
        except (CatalogError, OSError):
            return False
        if served.to_dict() != candidate.to_dict():
            return False
        probes = [
            (ScanSelectivity(sigma, s), candidate.b_max)
            for sigma, s in GOLDEN_PROBES
        ]
        try:
            via_engine = engine.estimate_many(name, "epfis", probes)
        except (CatalogError, OSError):
            return False
        direct = get_estimator("epfis", candidate).estimate_many(probes)
        return via_engine == direct

    def _quarantine_candidate(
        self,
        cycle: int,
        candidate: IndexStatistics,
        report: DriftReport,
    ) -> None:
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "cycle": cycle,
            "magnitude": report.magnitude,
            "candidate": candidate.to_dict(),
        }
        atomic_write_text(
            self.quarantine_dir / f"cycle-{cycle:06d}.json",
            json.dumps(payload, sort_keys=True, indent=2) + "\n",
        )
        self._count("quarantined")

    def _rollback(
        self,
        last_good: Optional[int],
        pre_publish: Optional[bytes],
    ) -> None:
        """Restore last-known-good after a failed publish."""
        if last_good is not None:
            try:
                self._store.rollback(version=last_good)
                return
            except CatalogError:
                # The archive no longer retains last-known-good.  The
                # history floor enforced at construction makes this
                # unreachable through the controller's own publish
                # attempts, but an out-of-band save against the same
                # store can still prune it away — fall through to the
                # raw pre-publish restore rather than abandoning the
                # rollback with the bad candidate still published.
                pass
        # Nothing retained predates this cycle's publish attempts
        # (first publish ever, a catalog written before history
        # existed, or a pruned-away last-good): every archived version
        # is an abandoned attempt, so drop them all — none may ever be
        # mistaken for a good version — then restore the raw
        # pre-publish bytes exactly as captured (they may not be valid
        # UTF-8; a corrupt pre-existing catalog is one reason last_good
        # can be None in the first place).
        for stale in self._store.versions():
            try:
                self._store.version_path(stale).unlink()
            except OSError:
                pass
        if pre_publish is not None:
            atomic_write_bytes(self._store.path, pre_publish)
        else:
            try:
                self._store.path.unlink()
            except OSError:
                pass
        self._store.invalidate()
