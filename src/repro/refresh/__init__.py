"""Online catalog refresh: decayed incremental fit, drift detection,
breaker-guarded roll-forward with automatic rollback.

The paper's LRU-Fit is a statistics-collection-time batch pass;
production fetch curves go stale as workloads drift.  This package
closes the loop: a long-lived :class:`RefreshController` consumes a
live reference feed through a checkpointed kernel stream, periodically
emits a refreshed six-segment curve, diffs it against the currently
served catalog version (reusing the golden-drift comparator), and
rolls forward through the versioned catalog store only when drift
exceeds a threshold — with post-publish validation, candidate
quarantine, and breaker-guarded rollback to last-known-good.
"""

from repro.refresh.controller import (
    CycleResult,
    RefreshConfig,
    RefreshController,
    RefreshState,
)
from repro.refresh.drift import DriftReport, compare_statistics
from repro.refresh.feed import (
    DriftingFeed,
    FaultyFeed,
    FeedPhase,
    SequenceFeed,
)

__all__ = [
    "CycleResult",
    "DriftReport",
    "DriftingFeed",
    "FaultyFeed",
    "FeedPhase",
    "RefreshConfig",
    "RefreshController",
    "RefreshState",
    "SequenceFeed",
    "compare_statistics",
]
