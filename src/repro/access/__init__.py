"""Multi-index access paths: RID lists, ANDing/ORing, sorted-RID fetches.

The paper excludes these from its model ("We are assuming that there is no
RID-list sort, union, or intersection before the data records are fetched",
Section 2) and defers them to future work (Section 6).  This subpackage
implements them:

* :func:`~repro.access.ridlist.rid_list_for_range` — collect a scan's RIDs.
* :func:`~repro.access.ridlist.and_rid_lists` /
  :func:`~repro.access.ridlist.or_rid_lists` — index ANDing / ORing.
* :func:`~repro.access.ridlist.fetch_pages_sorted` — fetch after a RID-list
  sort: every data page is visited exactly once, making the fetch count
  buffer-independent (min over all B).
* :class:`~repro.access.ridlist.SortedRIDEstimator` — the matching
  optimizer-side estimate (Yao's formula on the expected qualifying count).
"""

from repro.access.ridlist import (
    SortedRIDEstimator,
    and_rid_lists,
    fetch_pages_sorted,
    or_rid_lists,
    rid_list_for_range,
)

__all__ = [
    "SortedRIDEstimator",
    "and_rid_lists",
    "fetch_pages_sorted",
    "or_rid_lists",
    "rid_list_for_range",
]
