"""RID-list operations and the sorted-RID access path.

A RID list is the set of record identifiers an index scan qualifies,
collected *before* fetching any data page.  Once materialized, lists from
several indexes can be intersected (index ANDing) or united (index ORing),
and the final list can be sorted by page number so that the data pages are
fetched in one monotone sweep — each page exactly once, independent of the
buffer size.  That changes the estimation problem completely: the fetch
count becomes "how many distinct pages hold k qualifying records", which is
Yao's (1977) quantity, not an LRU question — exactly why the paper scopes
these plans out of EPFIS and lists them as future work.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.errors import EstimationError, WorkloadError
from repro.estimators.base import PageFetchEstimator
from repro.estimators.formulas import yao
from repro.storage.index import Index
from repro.types import RID, ScanSelectivity
from repro.workload.predicates import KeyRange, SargablePredicate


def rid_list_for_range(
    index: Index,
    key_range: KeyRange,
    sargable: Optional[SargablePredicate] = None,
) -> List[RID]:
    """All RIDs whose keys fall in ``key_range`` (sargable filter applied).

    Returned in index order (the order a scan would produce them).
    """
    rids: List[RID] = []
    for entry in index.entries(*key_range.bounds()):
        if sargable is None or sargable.qualifies(entry):
            rids.append(entry.rid)
    return rids


def and_rid_lists(*lists: Sequence[RID]) -> List[RID]:
    """Index ANDing: records present in every list.

    The result is sorted by (page, slot) — the order a RID-list sort
    produces before fetching.
    """
    if not lists:
        raise WorkloadError("AND requires at least one RID list")
    result = set(lists[0])
    for other in lists[1:]:
        result &= set(other)
    return sorted(result, key=lambda r: (r.page, r.slot))


def or_rid_lists(*lists: Sequence[RID]) -> List[RID]:
    """Index ORing: records present in any list, page-sorted, deduplicated."""
    if not lists:
        raise WorkloadError("OR requires at least one RID list")
    result = set()
    for current in lists:
        result |= set(current)
    return sorted(result, key=lambda r: (r.page, r.slot))


def fetch_pages_sorted(rids: Iterable[RID]) -> int:
    """Data-page fetches after a RID-list sort: one per distinct page.

    Buffer-independent (for any B >= 1): the sorted sweep never revisits
    a page after leaving it.
    """
    return len({rid.page for rid in rids})


class SortedRIDEstimator(PageFetchEstimator):
    """Optimizer-side estimate for the sorted-RID access path.

    The qualifying records are (approximately) a uniform sample of the
    table for AND/OR results over independent predicates, so the expected
    distinct-page count is Yao's formula on ``k = combined selectivity *
    N``.  Buffer size does not matter — the defining property of the
    RID-sort plan.
    """

    name = "sorted-RID"

    def __init__(self, table_pages: int, table_records: int) -> None:
        if table_pages < 1:
            raise EstimationError(f"table_pages must be >= 1, got {table_pages}")
        if table_records < table_pages:
            raise EstimationError(
                f"table_records ({table_records}) < table_pages "
                f"({table_pages})"
            )
        self._t = table_pages
        self._n = table_records

    @classmethod
    def from_index(cls, index: Index) -> "SortedRIDEstimator":
        """Build from an index's table shape (no data pass needed)."""
        return cls(index.table.page_count, index.entry_count)

    def estimate(
        self, selectivity: ScanSelectivity, buffer_pages: int
    ) -> float:
        self._check_buffer(buffer_pages)
        k = int(round(selectivity.combined * self._n))
        k = min(k, self._n)
        return yao(self._n, self._t, k)

    def estimate_and(self, selectivities: Sequence[float]) -> float:
        """Expected fetches for ANDing independent predicates."""
        if not selectivities:
            raise EstimationError("AND requires at least one selectivity")
        combined = 1.0
        for s in selectivities:
            if not 0.0 <= s <= 1.0:
                raise EstimationError(f"selectivity {s} out of [0, 1]")
            combined *= s
        return self.estimate(ScanSelectivity(combined), 1)

    def estimate_or(self, selectivities: Sequence[float]) -> float:
        """Expected fetches for ORing independent predicates."""
        if not selectivities:
            raise EstimationError("OR requires at least one selectivity")
        miss = 1.0
        for s in selectivities:
            if not 0.0 <= s <= 1.0:
                raise EstimationError(f"selectivity {s} out of [0, 1]")
            miss *= 1.0 - s
        return self.estimate(ScanSelectivity(1.0 - miss), 1)
