"""The estimation server: a micro-batching, multi-tenant request loop.

The paper's consumption side (Est-IO) is meant to answer thousands of
optimizer compilations per second against shared statistics.  The
per-call cost of :meth:`~repro.engine.EstimationEngine.estimate` is
dominated by fixed overhead — the content-stamped catalog re-read, the
binding-cache lookup, metrics — not by evaluating the six-segment
curve.  :class:`EstimationServer` amortizes that overhead the way a
high-QPS service does:

* **request loop** — callers :meth:`submit` requests from any thread
  and get a :class:`concurrent.futures.Future`; a small pool of
  dispatcher threads (one by default — see ``DEFAULT_DISPATCHERS``)
  owns all engine access (no lock contention on the hot path);
* **micro-batching** — the dispatcher drains whatever is queued, waits
  up to ``batch_window_ms`` for stragglers, groups requests by
  ``(tenant, index, estimator, options)`` and answers each group with
  **one** :meth:`~repro.engine.EstimationEngine.estimate_many` call —
  the existing batched fast path, so results are byte-identical to N
  serial ``engine.estimate`` calls (property-tested);
* **admission control** — queue-depth shedding through
  :class:`~repro.serving.admission.AdmissionController`; every shed
  request is counted, so ``sent == completed + rejected`` always;
* **tenant isolation** — requests route through
  :class:`~repro.serving.tenants.TenantCatalogs`: independent stores,
  generations, quarantine files, and breakers per tenant.  A group
  whose engine fails fails *only its own futures*; other groups in the
  same batch still answer.

Shutdown is truthful too: :meth:`close` stops admission, **drains**
everything already admitted (every accepted future completes), then
joins the dispatcher.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ReproError, ServingError
from repro.obs import instruments
from repro.obs.metrics import NS_TO_SECONDS, MetricsRegistry
from repro.obs.tracing import span as obs_span
from repro.serving.obs import DualFamily
from repro.resilience.breaker import BreakerPolicy
from repro.serving.admission import (
    DEFAULT_MAX_QUEUE,
    AdmissionController,
)
from repro.serving.protocol import (
    CODE_ERROR,
    CODE_REJECTED,
    AdviseRequest,
    AdviseResponse,
    EstimateRequest,
    EstimateResponse,
    GridRequest,
    GridResponse,
)
from repro.serving.tenants import DEFAULT_TENANT_CACHE, TenantCatalogs
from repro.types import ScanSelectivity

#: How long the dispatcher waits for stragglers after the first request.
DEFAULT_BATCH_WINDOW_MS = 2.0
#: Most requests coalesced into one engine call.
DEFAULT_MAX_BATCH = 64
#: Dispatcher threads draining the shared queue.  One is the right
#: default under the GIL: extra dispatchers split the arriving burst
#: into smaller batches (halving the amortization that pays for the
#: serving tier) without adding engine parallelism, since the engine's
#: work is pure Python.  The knob exists for engines that release the
#: GIL (or future subinterpreter builds).
DEFAULT_DISPATCHERS = 1


@dataclass(frozen=True)
class ServingConfig:
    """Tuning knobs for one :class:`EstimationServer`."""

    batch_window_ms: float = DEFAULT_BATCH_WINDOW_MS
    max_batch: int = DEFAULT_MAX_BATCH
    max_queue: int = DEFAULT_MAX_QUEUE
    tenant_cache: int = DEFAULT_TENANT_CACHE
    dispatchers: int = DEFAULT_DISPATCHERS
    fallback_chain: Optional[Tuple[str, ...]] = None
    breaker_policy: Optional[BreakerPolicy] = None

    def __post_init__(self) -> None:
        if self.batch_window_ms < 0:
            raise ServingError(
                f"batch_window_ms must be >= 0, got "
                f"{self.batch_window_ms}"
            )
        if self.max_batch < 1:
            raise ServingError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )
        if self.dispatchers < 1:
            raise ServingError(
                f"dispatchers must be >= 1, got {self.dispatchers}"
            )


class _Pending:
    """One admitted request riding the queue with its future.

    ``selectivity`` carries the :class:`ScanSelectivity` already built
    (and thereby validated) during admission, so the dispatcher does
    not construct it a second time on the hot path.
    """

    __slots__ = ("request", "future", "selectivity", "enqueued_ns")

    def __init__(
        self, request: EstimateRequest, selectivity: ScanSelectivity
    ) -> None:
        self.request = request
        self.future: "Future[float]" = Future()
        self.selectivity = selectivity
        self.enqueued_ns = time.perf_counter_ns()


class EstimationServer:
    """Serve estimate requests through a micro-batching dispatcher."""

    def __init__(
        self,
        tenants: Union[TenantCatalogs, str, Path],
        config: Optional[ServingConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._config = config or ServingConfig()
        self._registry = (
            registry if registry is not None else MetricsRegistry()
        )
        if not isinstance(tenants, TenantCatalogs):
            tenants = TenantCatalogs(
                tenants,
                cache_size=self._config.tenant_cache,
                fallback_chain=self._config.fallback_chain,
                breaker_policy=self._config.breaker_policy,
                registry=self._registry,
            )
        self._tenants = tenants
        self._admission = AdmissionController(
            self._config.max_queue, registry=self._registry
        )
        self._queue: "queue.Queue[_Pending]" = queue.Queue()
        self._inflight = 0
        self._collected = 0
        self._inflight_lock = threading.Lock()
        self._idle = threading.Condition(self._inflight_lock)
        self._requests = DualFamily(
            instruments.serving_requests, self._registry
        )
        # Bound child handles, cached per tenant: labels() resolution
        # is measurable on the submit hot path.
        self._tenant_counters: Dict[str, object] = {}
        self._batches = DualFamily(
            instruments.serving_batches, self._registry
        ).labels()
        self._batch_size_family = DualFamily(
            instruments.serving_batch_size, self._registry
        )
        self._batch_size = self._batch_size_family.labels()
        self._depth_gauge = DualFamily(
            instruments.serving_queue_depth, self._registry
        ).labels()
        self._latency = DualFamily(
            instruments.serving_latency, self._registry
        ).labels()
        self._advisor_requests = DualFamily(
            instruments.advisor_grid_requests, self._registry
        )
        self._started = False
        self._stopping = False
        self._dispatchers = [
            threading.Thread(
                target=self._dispatch_loop,
                name=f"repro-serving-dispatcher-{k}",
                daemon=True,
            )
            for k in range(self._config.dispatchers)
        ]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "EstimationServer":
        """Start the dispatcher pool (idempotent)."""
        if not self._started:
            self._started = True
            for dispatcher in self._dispatchers:
                dispatcher.start()
        return self

    def __enter__(self) -> "EstimationServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self, timeout: Optional[float] = None) -> None:
        """Stop admission, drain every admitted request, stop.

        Every future handed out by :meth:`submit` before the close is
        completed (with a result or an estimator error) before the
        dispatcher exits — shutdown never silently drops an admitted
        request.
        """
        self._admission.close()
        with self._idle:
            self._idle.wait_for(
                lambda: self._inflight == 0, timeout=timeout
            )
        self._stopping = True
        if self._started:
            for dispatcher in self._dispatchers:
                dispatcher.join(timeout=timeout)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    @property
    def tenants(self) -> TenantCatalogs:
        """The tenant namespace map this server routes through."""
        return self._tenants

    @property
    def config(self) -> ServingConfig:
        """This server's tuning knobs."""
        return self._config

    def _validate(self, request: EstimateRequest) -> ScanSelectivity:
        from repro.serving.tenants import validate_tenant_name

        try:
            validate_tenant_name(request.tenant)
        except ServingError as exc:
            raise self._admission.reject_invalid(str(exc)) from None
        if request.buffer_pages < 1:
            raise self._admission.reject_invalid(
                f"buffer_pages must be >= 1, got {request.buffer_pages}"
            )
        try:
            return ScanSelectivity(request.sigma, request.sargable)
        except ValueError as exc:
            raise self._admission.reject_invalid(str(exc)) from None

    def submit(self, request: EstimateRequest) -> "Future[float]":
        """Admit ``request`` and return its future, or raise.

        Raises :class:`~repro.errors.ServingError` when the request is
        malformed or admission sheds it; both paths increment the
        truthful ``rejected`` counter first.  The returned future
        resolves to the estimate, or raises the estimator's own error.
        """
        if not self._started:
            raise ServingError(
                "server is not started; call start() or use it as a "
                "context manager"
            )
        selectivity = self._validate(request)
        with self._inflight_lock:
            self._admission.admit(self._inflight)
            self._inflight += 1
        pending = _Pending(request, selectivity)
        counter = self._tenant_counters.get(request.tenant)
        if counter is None:
            counter = self._requests.labels(tenant=request.tenant)
            self._tenant_counters[request.tenant] = counter
        counter.inc()
        self._queue.put(pending)
        return pending.future

    def estimate(
        self, request: EstimateRequest, timeout: Optional[float] = None
    ) -> float:
        """Synchronous convenience: submit and wait for the answer."""
        return self.submit(request).result(timeout=timeout)

    def respond(self, request: EstimateRequest) -> EstimateResponse:
        """Submit and package the outcome as a wire response.

        Rejections and estimator failures both become truthful
        ``ok=false`` responses instead of exceptions — the TCP front
        end's one-stop call.
        """
        try:
            value = self.estimate(request)
        except ServingError as exc:
            return EstimateResponse(
                request_id=request.request_id, ok=False,
                error=str(exc), code=CODE_REJECTED,
            )
        except ReproError as exc:
            return EstimateResponse(
                request_id=request.request_id, ok=False,
                error=str(exc), code=CODE_ERROR,
            )
        return EstimateResponse(
            request_id=request.request_id, ok=True, estimate=value
        )

    # ------------------------------------------------------------------
    # Batched advisory paths (caller-thread; batched by construction)
    # ------------------------------------------------------------------
    def _admit_advisory(self, tenant: str) -> None:
        """Admission for the caller-thread paths.

        Grid/advise requests never ride the micro-batch queue — each is
        already one batched engine call — but they honour the same
        closed/shedding gates and tenant-name vocabulary, and count
        into the same truthful request/reject families.
        """
        from repro.serving.tenants import validate_tenant_name

        try:
            validate_tenant_name(tenant)
        except ServingError as exc:
            raise self._admission.reject_invalid(str(exc)) from None
        with self._inflight_lock:
            self._admission.admit(self._inflight)
        counter = self._tenant_counters.get(tenant)
        if counter is None:
            counter = self._requests.labels(tenant=tenant)
            self._tenant_counters[tenant] = counter
        counter.inc()

    def grid(self, request: GridRequest) -> Dict[str, List[List[float]]]:
        """Answer one batched multi-index grid request, or raise.

        One :meth:`~repro.engine.EstimationEngine.estimate_grid` call
        per named index — results are byte-identical to the equivalent
        per-point :meth:`estimate` fan-out (pinned in tests).
        """
        if not self._started:
            raise ServingError(
                "server is not started; call start() or use it as a "
                "context manager"
            )
        self._admit_advisory(request.tenant)
        selectivities = []
        for sigma, sargable in request.selectivities:
            try:
                selectivities.append(ScanSelectivity(sigma, sargable))
            except ValueError as exc:
                raise self._admission.reject_invalid(str(exc)) from None
        for pages in request.buffers:
            if pages < 1:
                raise self._admission.reject_invalid(
                    f"buffer_pages must be >= 1, got {pages}"
                )
        with obs_span(
            "serving-grid",
            tenant=request.tenant,
            indexes=len(request.indexes),
            estimator=request.estimator,
        ):
            engine = self._tenants.engine(request.tenant)
            curves = {
                name: engine.estimate_grid(
                    name,
                    request.estimator,
                    selectivities,
                    list(request.buffers),
                    **dict(request.options),
                )
                for name in request.indexes
            }
        self._advisor_requests.labels(kind="grid").inc()
        return curves

    def grid_respond(self, request: GridRequest) -> GridResponse:
        """:meth:`grid` packaged as a truthful wire response."""
        try:
            curves = self.grid(request)
        except ServingError as exc:
            return GridResponse(
                request_id=request.request_id, ok=False,
                error=str(exc), code=CODE_REJECTED,
            )
        except ReproError as exc:
            return GridResponse(
                request_id=request.request_id, ok=False,
                error=str(exc), code=CODE_ERROR,
            )
        return GridResponse(
            request_id=request.request_id, ok=True, curves=curves
        )

    def advise(self, request: AdviseRequest) -> dict:
        """Answer one fleet advisory from the tenant's live catalog.

        Runs the same :func:`repro.advisor.advise` pipeline as the
        offline CLI against this tenant's serving engine, so the report
        dict is byte-identical to the CLI's for the same statistics and
        spec (pinned in tests).
        """
        if not self._started:
            raise ServingError(
                "server is not started; call start() or use it as a "
                "context manager"
            )
        from repro.advisor import AdvisorSpec, advise

        self._admit_advisory(request.tenant)
        try:
            spec = AdvisorSpec.from_dict(request.spec)
        except ReproError as exc:
            raise self._admission.reject_invalid(str(exc)) from None
        engine = self._tenants.engine(request.tenant)
        report = advise(
            engine, spec, registry=self._registry, path="serving"
        )
        self._advisor_requests.labels(kind="advise").inc()
        return report.to_dict()

    def advise_respond(self, request: AdviseRequest) -> AdviseResponse:
        """:meth:`advise` packaged as a truthful wire response."""
        try:
            report = self.advise(request)
        except ServingError as exc:
            return AdviseResponse(
                request_id=request.request_id, ok=False,
                error=str(exc), code=CODE_REJECTED,
            )
        except ReproError as exc:
            return AdviseResponse(
                request_id=request.request_id, ok=False,
                error=str(exc), code=CODE_ERROR,
            )
        return AdviseResponse(
            request_id=request.request_id, ok=True, report=report
        )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _collect_batch(self) -> List[_Pending]:
        """Block for one request, then coalesce the window's worth.

        The window closes early once every admitted request is either
        in this batch or already executing on another dispatcher:
        nothing else *can* arrive until some future resolves (their
        closed-loop callers are blocked on them), so waiting out the
        window would add latency without adding batch size.  Open-loop
        arrivals that land after the early close simply seed the next
        batch.
        """
        try:
            first = self._queue.get(timeout=0.05)
        except queue.Empty:
            return []
        batch = [first]
        deadline = (
            time.perf_counter()
            + self._config.batch_window_ms / 1000.0
        )
        while len(batch) < self._config.max_batch:
            with self._inflight_lock:
                if len(batch) + self._collected >= self._inflight:
                    break
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                # Window elapsed: take whatever is already queued, but
                # stop waiting for new arrivals.
                try:
                    batch.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            else:
                try:
                    batch.append(self._queue.get(timeout=remaining))
                except queue.Empty:
                    break
        return batch

    def _dispatch_loop(self) -> None:
        while True:
            batch = self._collect_batch()
            if not batch:
                if self._stopping:
                    return
                continue
            self._depth_gauge.set(self._queue.qsize())
            self._execute(batch)

    def _execute(self, batch: List[_Pending]) -> None:
        with self._inflight_lock:
            self._collected += len(batch)
        groups: "OrderedDict[Tuple, List[_Pending]]" = OrderedDict()
        for pending in batch:
            groups.setdefault(
                pending.request.batch_key(), []
            ).append(pending)
        self._batches.inc()
        self._batch_size.observe(len(batch))
        for key, members in groups.items():
            self._execute_group(key, members)
        with self._idle:
            self._inflight -= len(batch)
            self._collected -= len(batch)
            if self._inflight == 0:
                self._idle.notify_all()

    def _execute_group(
        self, key: Tuple, members: List[_Pending]
    ) -> None:
        tenant, index_name, estimator_name, options = key
        try:
            with obs_span(
                "serving-batch",
                tenant=tenant,
                index=index_name,
                estimator=estimator_name,
                size=len(members),
            ):
                engine = self._tenants.engine(tenant)
                pairs = [
                    (p.selectivity, p.request.buffer_pages)
                    for p in members
                ]
                values = engine.estimate_many(
                    index_name,
                    estimator_name,
                    pairs,
                    **dict(options),
                )
        except Exception as exc:  # noqa: BLE001 — forwarded, not hidden
            for pending in members:
                pending.future.set_exception(exc)
            self._observe_latency(members)
            return
        for pending, value in zip(members, values):
            pending.future.set_result(value)
        self._observe_latency(members)

    def _observe_latency(self, members: Sequence[_Pending]) -> None:
        now = time.perf_counter_ns()
        for pending in members:
            self._latency.observe(now - pending.enqueued_ns)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def admission(self) -> AdmissionController:
        """The admission controller (for state/reject introspection)."""
        return self._admission

    def state(self) -> str:
        """Admission state at the current queue depth."""
        with self._inflight_lock:
            return self._admission.state(self._inflight)

    def metrics(self) -> Dict[str, object]:
        """One truthful snapshot of the serving counters."""
        latency = self._latency
        child = self._batch_size
        histogram: Dict[str, int] = {}
        bounds = list(self._batch_size_family.buckets) + [None]
        for bound, count in zip(bounds, child.bucket_counts()):
            if count:
                key = "+Inf" if bound is None else f"<={bound:g}"
                histogram[key] = count
        return {
            "requests": sum(
                child.value
                for child in self._requests.children().values()
            ),
            "batches": self._batches.value,
            "batch_size_histogram": histogram,
            "mean_batch_size": (
                child.sum / child.count if child.count else 0.0
            ),
            "rejected": self._admission.rejected(),
            "latency_seconds_sum": latency.sum * NS_TO_SECONDS,
            "completed": latency.count,
            "tenants": self._tenants.metrics(),
        }

    def __repr__(self) -> str:
        return (
            f"EstimationServer(tenants={self._tenants!r}, "
            f"state={self.state()!r})"
        )
