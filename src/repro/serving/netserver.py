"""A newline-delimited-JSON TCP front end over the estimation server.

``repro serve`` binds this to a host/port; any client that can write a
JSON object per line (the load generator, ``nc``, a connection pool in
an optimizer process) gets estimates back one line per request.  Each
connection is handled by its own thread (the stdlib
:class:`socketserver.ThreadingTCPServer`), and every request funnels
into the shared :class:`~repro.serving.server.EstimationServer`, so the
micro-batcher coalesces across *all* connections — concurrency on the
wire becomes batch size in the engine.

Failures stay on the wire as truthful ``ok=false`` responses: protocol
errors, admission sheds, unknown estimators and tenant errors all
answer rather than dropping the connection.  Binding failures (port in
use, bad interface) surface as :class:`~repro.errors.ServingError` so
the CLI exits cleanly.
"""

from __future__ import annotations

import socketserver
import threading
from typing import Optional, Tuple

from repro.errors import ReproError, ServingError
from repro.serving.protocol import (
    AdviseRequest,
    EstimateRequest,
    EstimateResponse,
    GridRequest,
    decode_any,
    encode,
)
from repro.serving.server import EstimationServer

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8337


class _RequestHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server: EstimationServer = self.server.estimation_server
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                request = decode_any(line)
            except ReproError as exc:
                response = EstimateResponse(
                    request_id=0, ok=False, error=str(exc)
                )
            else:
                if isinstance(request, GridRequest):
                    response = server.grid_respond(request)
                elif isinstance(request, AdviseRequest):
                    response = server.advise_respond(request)
                else:
                    assert isinstance(request, EstimateRequest)
                    response = server.respond(request)
            try:
                self.wfile.write(encode(response).encode("utf-8"))
                self.wfile.flush()
            except OSError:
                return  # client went away mid-response


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True


class ServingTCPServer:
    """Own the listening socket and the connection threads.

    ``port=0`` asks the OS for a free port (tests use this); the bound
    address is available as :attr:`address` after construction.
    """

    def __init__(
        self,
        estimation_server: EstimationServer,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
    ) -> None:
        self._estimation = estimation_server
        try:
            self._tcp = _ThreadingTCPServer(
                (host, port), _RequestHandler
            )
        except OSError as exc:
            raise ServingError(
                f"cannot bind serving socket to {host}:{port}: {exc}"
            ) from exc
        self._tcp.estimation_server = estimation_server
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The actually bound ``(host, port)``."""
        return self._tcp.server_address[:2]

    def serve_forever(self) -> None:
        """Block serving connections until :meth:`shutdown`."""
        self._tcp.serve_forever(poll_interval=0.1)

    def start_background(self) -> "ServingTCPServer":
        """Serve from a daemon thread (tests and embedded use)."""
        self._thread = threading.Thread(
            target=self.serve_forever,
            name="repro-serving-tcp",
            daemon=True,
        )
        self._thread.start()
        return self

    def request_stop(self) -> None:
        """Ask a blocked :meth:`serve_forever` to return (non-blocking
        for the serve loop itself; safe from any thread or a timer)."""
        self._tcp.shutdown()

    def shutdown(self) -> None:
        """Stop accepting connections, drain the estimation server.

        Idempotent: safe after :meth:`request_stop` or a second call.
        """
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._estimation.close()

    def __enter__(self) -> "ServingTCPServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
