"""A deterministic closed- and open-loop load generator.

The serving tier's acceptance bar is quantitative — p50/p99 latency,
sustained QPS, batched-vs-serial speedup — so the traffic that produces
those numbers must be replayable.  :func:`request_stream` derives the
entire request sequence (tenant, index, estimator, selectivity, buffer
size) from one seed; two runs with the same workload spec issue
byte-identical requests in the same per-client order, and the stream's
SHA-256 digest is recorded alongside the results so a benchmark JSON
can be traced back to its exact traffic.

Two driving disciplines, the standard pair from the load-testing
literature:

* **closed loop** — ``clients`` workers each keep exactly one request
  outstanding (think: optimizer threads blocking on estimates).
  Throughput is an *output*; this is the mode the batched-vs-serial
  speedup criterion uses, because concurrency is what the micro-batcher
  converts into batch size.
* **open loop** — requests arrive on a fixed schedule (``qps``),
  regardless of completions (think: independent query arrivals).  This
  is the mode that exercises admission control honestly: when the
  service falls behind, the queue grows and the controller sheds, and
  every shed is counted.

Accounting is truthful by construction and checked:
``sent == completed + rejected + errors`` or
:attr:`LoadgenResult.accounted` is False (the CI smoke gate fails on
it — "zero dropped-but-unreported requests").
"""

from __future__ import annotations

import hashlib
import random
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError, ServingError
from repro.serving.protocol import (
    CODE_REJECTED,
    EstimateRequest,
    decode_response,
    encode,
)
from repro.serving.server import EstimationServer

#: Default selectivities and buffer sizes the generated stream draws from.
DEFAULT_SIGMAS = (0.02, 0.05, 0.1, 0.2)
DEFAULT_BUFFERS = (8, 16, 32, 64, 128)


@dataclass(frozen=True)
class WorkloadSpec:
    """What traffic to generate, fully determined by ``seed``.

    ``indexes`` is the shared index-name pool every tenant serves;
    ``tenant_indexes`` overrides the pool per tenant (``(tenant,
    (index, ...))`` pairs) for deployments where namespaces hold
    differently named indexes — the ``repro loadgen`` discovery path.
    """

    tenants: Tuple[str, ...]
    indexes: Tuple[str, ...] = ()
    estimators: Tuple[str, ...] = ("epfis",)
    sigmas: Tuple[float, ...] = DEFAULT_SIGMAS
    buffers: Tuple[int, ...] = DEFAULT_BUFFERS
    tenant_indexes: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for name, values in (
            ("tenants", self.tenants),
            ("estimators", self.estimators), ("sigmas", self.sigmas),
            ("buffers", self.buffers),
        ):
            if not values:
                raise ServingError(
                    f"workload spec needs at least one entry in {name}"
                )
        pools = dict(self.tenant_indexes)
        for tenant in self.tenants:
            if not pools.get(tenant, self.indexes):
                raise ServingError(
                    f"workload spec has no index pool for tenant "
                    f"{tenant!r}: set indexes or tenant_indexes"
                )


def request_stream(
    spec: WorkloadSpec, count: int
) -> List[EstimateRequest]:
    """The first ``count`` requests of the workload (deterministic)."""
    rng = random.Random(spec.seed)
    pools = dict(spec.tenant_indexes)
    requests = []
    for i in range(count):
        tenant = rng.choice(spec.tenants)
        requests.append(
            EstimateRequest(
                tenant=tenant,
                index=rng.choice(pools.get(tenant, spec.indexes)),
                estimator=rng.choice(spec.estimators),
                sigma=rng.choice(spec.sigmas),
                buffer_pages=rng.choice(spec.buffers),
                request_id=i,
            )
        )
    return requests


def stream_digest(requests: Sequence[EstimateRequest]) -> str:
    """SHA-256 over the canonical wire encoding of the stream."""
    digest = hashlib.sha256()
    for request in requests:
        digest.update(encode(request).encode("utf-8"))
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Transports
# ----------------------------------------------------------------------
class InProcessTransport:
    """Drive an :class:`EstimationServer` directly (no sockets)."""

    def __init__(self, server: EstimationServer) -> None:
        self._server = server

    def call(self, request: EstimateRequest) -> float:
        """Submit one request and block for its answer."""
        return self._server.estimate(request)

    def close(self) -> None:
        """Nothing to release for the in-process path."""


class TCPTransport:
    """One persistent NDJSON connection to a serving socket."""

    def __init__(self, host: str, port: int) -> None:
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=30.0
            )
        except OSError as exc:
            raise ServingError(
                f"cannot connect to serving socket {host}:{port}: {exc}"
            ) from exc
        self._reader = self._sock.makefile("r", encoding="utf-8")

    def call(self, request: EstimateRequest) -> float:
        """Write one request line and block for its response line."""
        self._sock.sendall(encode(request).encode("utf-8"))
        line = self._reader.readline()
        if not line:
            raise ServingError("serving connection closed mid-request")
        response = decode_response(line)
        if response.ok:
            return response.estimate
        if response.code == CODE_REJECTED:
            raise ServingError(response.error)
        raise ReproError(response.error)

    def close(self) -> None:
        """Close the connection (best effort)."""
        try:
            self._reader.close()
            self._sock.close()
        except OSError:
            pass


TransportFactory = Callable[[], object]


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
def _percentile(sorted_ns: Sequence[int], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample, in ms."""
    if not sorted_ns:
        return 0.0
    index = min(
        len(sorted_ns) - 1, max(0, round(q * (len(sorted_ns) - 1)))
    )
    return sorted_ns[index] / 1e6


@dataclass
class LoadgenResult:
    """Everything one load-generation run truthfully observed."""

    mode: str
    clients: int
    target_qps: Optional[float]
    sent: int
    completed: int
    rejected: int
    errors: int
    wall_seconds: float
    latencies_ns: List[int] = field(default_factory=list, repr=False)
    workload_digest: str = ""
    server_metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def sustained_qps(self) -> float:
        """Completed requests per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.completed / self.wall_seconds

    @property
    def accounted(self) -> bool:
        """True iff no request went dropped-but-unreported."""
        return self.sent == self.completed + self.rejected + self.errors

    def latency_ms(self) -> Dict[str, float]:
        """p50/p99/mean/max end-to-end latency, in milliseconds."""
        ordered = sorted(self.latencies_ns)
        mean = (
            sum(ordered) / len(ordered) / 1e6 if ordered else 0.0
        )
        return {
            "p50": _percentile(ordered, 0.50),
            "p99": _percentile(ordered, 0.99),
            "mean": mean,
            "max": ordered[-1] / 1e6 if ordered else 0.0,
        }

    def to_dict(self) -> dict:
        """The result as a JSON-ready document (benchmark artifact)."""
        return {
            "mode": self.mode,
            "clients": self.clients,
            "target_qps": self.target_qps,
            "sent": self.sent,
            "completed": self.completed,
            "rejected": self.rejected,
            "errors": self.errors,
            "accounted": self.accounted,
            "wall_seconds": self.wall_seconds,
            "sustained_qps": self.sustained_qps,
            "latency_ms": self.latency_ms(),
            "workload_digest": self.workload_digest,
            "server": self.server_metrics,
        }


class _Tally:
    """Thread-safe shared counters for the worker threads."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.latencies_ns: List[int] = []
        self.completed = 0
        self.rejected = 0
        self.errors = 0

    def record(self, elapsed_ns: int) -> None:
        with self.lock:
            self.latencies_ns.append(elapsed_ns)
            self.completed += 1

    def record_rejected(self) -> None:
        with self.lock:
            self.rejected += 1

    def record_error(self) -> None:
        with self.lock:
            self.errors += 1


# ----------------------------------------------------------------------
# Driving disciplines
# ----------------------------------------------------------------------
def run_closed_loop(
    transport_factory: TransportFactory,
    requests: Sequence[EstimateRequest],
    clients: int,
    server: Optional[EstimationServer] = None,
) -> LoadgenResult:
    """``clients`` workers, one outstanding request each.

    Requests are dealt round-robin (request ``i`` to client ``i %
    clients``), so the per-client sequences are deterministic; each
    worker owns its own transport.
    """
    if clients < 1:
        raise ServingError(f"clients must be >= 1, got {clients}")
    barrier = threading.Barrier(clients + 1)
    # One tally per worker, merged after the join: a shared lock on the
    # record path would sit directly on the closed-loop critical path
    # (the dispatcher's batch window waits on client turnaround).
    tallies = [_Tally() for _ in range(clients)]

    def worker(
        worker_requests: Sequence[EstimateRequest], tally: _Tally
    ) -> None:
        transport = transport_factory()
        latencies = tally.latencies_ns
        try:
            barrier.wait()
            for request in worker_requests:
                started = time.perf_counter_ns()
                try:
                    transport.call(request)
                except ServingError:
                    tally.rejected += 1
                except ReproError:
                    tally.errors += 1
                else:
                    latencies.append(time.perf_counter_ns() - started)
        finally:
            transport.close()

    threads = [
        threading.Thread(
            target=worker,
            args=(requests[k::clients], tallies[k]),
            daemon=True,
        )
        for k in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    latencies_ns: List[int] = []
    for tally in tallies:
        latencies_ns.extend(tally.latencies_ns)
    return LoadgenResult(
        mode="closed",
        clients=clients,
        target_qps=None,
        sent=len(requests),
        completed=len(latencies_ns),
        rejected=sum(tally.rejected for tally in tallies),
        errors=sum(tally.errors for tally in tallies),
        wall_seconds=wall,
        latencies_ns=latencies_ns,
        workload_digest=stream_digest(requests),
        server_metrics=server.metrics() if server is not None else {},
    )


def run_open_loop(
    server: EstimationServer,
    requests: Sequence[EstimateRequest],
    qps: float,
) -> LoadgenResult:
    """Submit on a fixed arrival schedule, never waiting for answers.

    Arrival ``i`` is scheduled at ``i / qps`` seconds; when the run
    falls behind schedule it submits immediately (no coordinated
    omission: latency is measured from the *submit*, not the intended
    arrival, and sheds are counted instead of silently skipped).
    """
    if qps <= 0:
        raise ServingError(f"qps must be > 0, got {qps}")
    tally = _Tally()
    futures = []
    start = time.perf_counter()
    for i, request in enumerate(requests):
        scheduled = start + i / qps
        delay = scheduled - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        submitted = time.perf_counter_ns()
        try:
            future = server.submit(request)
        except ServingError:
            tally.record_rejected()
            continue
        future.add_done_callback(
            lambda f, t0=submitted: (
                tally.record_error()
                if f.exception() is not None
                else tally.record(time.perf_counter_ns() - t0)
            )
        )
        futures.append(future)
    for future in futures:
        try:
            future.result(timeout=60.0)
        except ReproError:
            pass  # already tallied by the callback
    wall = time.perf_counter() - start
    return LoadgenResult(
        mode="open",
        clients=1,
        target_qps=qps,
        sent=len(requests),
        completed=tally.completed,
        rejected=tally.rejected,
        errors=tally.errors,
        wall_seconds=wall,
        latencies_ns=tally.latencies_ns,
        workload_digest=stream_digest(requests),
        server_metrics=server.metrics(),
    )
