"""The serving tier's request/response wire format.

One estimate request — the optimizer's per-plan question, plus the
routing fields the multi-tenant tier needs — travels as one JSON object
per line (newline-delimited JSON, the format every load balancer and
``nc`` can speak).  The same dataclasses are used in-process, so a
request that took the TCP path and one that took the direct
:meth:`~repro.serving.server.EstimationServer.submit` path are the same
object by the time the micro-batcher sees them.

Floats survive the wire exactly: :mod:`json` emits the shortest
round-tripping ``repr`` and parses it back to the identical double, so
the byte-identical-to-serial property the batcher guarantees holds
across the network boundary too.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import ServingError

#: Wire keys a request object may carry.
_REQUEST_KEYS = frozenset(
    {"id", "tenant", "index", "estimator", "sigma", "sargable",
     "buffers", "options"}
)


@dataclass(frozen=True)
class EstimateRequest:
    """One page-fetch question routed through the serving tier."""

    tenant: str
    index: str
    estimator: str
    sigma: float
    buffer_pages: int
    sargable: float = 1.0
    request_id: int = 0
    #: Estimator-construction options, normalized to a sorted tuple so
    #: requests hash (the micro-batcher groups by them).
    options: Tuple[Tuple[str, object], ...] = field(default=())

    def batch_key(self) -> Tuple[str, str, str, Tuple]:
        """Requests with equal keys may share one ``estimate_many``."""
        return (self.tenant, self.index, self.estimator.lower(),
                self.options)

    def to_dict(self) -> dict:
        """The request's wire keys (see :func:`encode`)."""
        doc = {
            "id": self.request_id,
            "tenant": self.tenant,
            "index": self.index,
            "estimator": self.estimator,
            "sigma": self.sigma,
            "sargable": self.sargable,
            "buffers": self.buffer_pages,
        }
        if self.options:
            doc["options"] = dict(self.options)
        return doc


#: Failure classes a response can carry: an admission/protocol
#: rejection (never executed) vs an estimator/catalog error (executed
#: and failed).  The load generator accounts the two separately.
CODE_REJECTED = "rejected"
CODE_ERROR = "error"


@dataclass(frozen=True)
class EstimateResponse:
    """The answer (or the truthful failure) for one request."""

    request_id: int
    ok: bool
    estimate: float = math.nan
    error: str = ""
    code: str = ""

    def to_dict(self) -> dict:
        """The response's wire keys (see :func:`encode`)."""
        if self.ok:
            return {"id": self.request_id, "ok": True,
                    "estimate": self.estimate}
        return {"id": self.request_id, "ok": False,
                "error": self.error, "code": self.code or CODE_ERROR}


def decode_request(line: str) -> EstimateRequest:
    """Parse one request line, rejecting malformed or unknown fields."""
    try:
        doc = json.loads(line)
    except ValueError as exc:
        raise ServingError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ServingError(
            f"request must be a JSON object, got {type(doc).__name__}"
        )
    unknown = set(doc) - _REQUEST_KEYS
    if unknown:
        raise ServingError(
            f"request carries unknown keys {sorted(unknown)}; "
            f"known: {sorted(_REQUEST_KEYS)}"
        )
    try:
        options = doc.get("options") or {}
        if not isinstance(options, dict):
            raise ServingError(
                f"request 'options' must be an object, got "
                f"{type(options).__name__}"
            )
        return EstimateRequest(
            tenant=str(doc["tenant"]),
            index=str(doc["index"]),
            estimator=str(doc["estimator"]),
            sigma=float(doc["sigma"]),
            sargable=float(doc.get("sargable", 1.0)),
            buffer_pages=int(doc["buffers"]),
            request_id=int(doc.get("id", 0)),
            options=tuple(sorted(options.items())),
        )
    except KeyError as exc:
        raise ServingError(
            f"request is missing required key {exc.args[0]!r}"
        ) from None
    except (TypeError, ValueError) as exc:
        raise ServingError(f"request field is malformed: {exc}") from exc


def decode_response(line: str) -> EstimateResponse:
    """Parse one response line (the load-generator client's side)."""
    try:
        doc = json.loads(line)
    except ValueError as exc:
        raise ServingError(f"response is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or "ok" not in doc:
        raise ServingError(f"malformed response line: {line!r}")
    if doc["ok"]:
        return EstimateResponse(
            request_id=int(doc.get("id", 0)),
            ok=True,
            estimate=float(doc["estimate"]),
        )
    return EstimateResponse(
        request_id=int(doc.get("id", 0)),
        ok=False,
        error=str(doc.get("error", "unknown error")),
        code=str(doc.get("code", CODE_ERROR)),
    )


def encode(message) -> str:
    """One canonical JSON line (sorted keys, no whitespace padding)."""
    return json.dumps(
        message.to_dict(), sort_keys=True, separators=(",", ":")
    ) + "\n"
