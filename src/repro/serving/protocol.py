"""The serving tier's request/response wire format.

One estimate request — the optimizer's per-plan question, plus the
routing fields the multi-tenant tier needs — travels as one JSON object
per line (newline-delimited JSON, the format every load balancer and
``nc`` can speak).  The same dataclasses are used in-process, so a
request that took the TCP path and one that took the direct
:meth:`~repro.serving.server.EstimationServer.submit` path are the same
object by the time the micro-batcher sees them.

Three request types share the wire, discriminated by an optional
``type`` key (absent means ``estimate``, keeping every pre-existing
client line valid):

* ``estimate`` — one point estimate (:class:`EstimateRequest`);
* ``grid``     — one batched multi-index curve evaluation
  (:class:`GridRequest`): every named index's full
  selectivity × buffer grid in a single round trip, instead of
  fanning out per-point estimate lines;
* ``advise``   — one fleet advisory (:class:`AdviseRequest`) carrying
  an advisor-spec payload, answered from the tenant's live catalog.

Floats survive the wire exactly: :mod:`json` emits the shortest
round-tripping ``repr`` and parses it back to the identical double, so
the byte-identical-to-serial property the batcher guarantees holds
across the network boundary too.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import ServingError

#: Wire keys a request object may carry.
_REQUEST_KEYS = frozenset(
    {"id", "tenant", "index", "estimator", "sigma", "sargable",
     "buffers", "options"}
)


@dataclass(frozen=True)
class EstimateRequest:
    """One page-fetch question routed through the serving tier."""

    tenant: str
    index: str
    estimator: str
    sigma: float
    buffer_pages: int
    sargable: float = 1.0
    request_id: int = 0
    #: Estimator-construction options, normalized to a sorted tuple so
    #: requests hash (the micro-batcher groups by them).
    options: Tuple[Tuple[str, object], ...] = field(default=())

    def batch_key(self) -> Tuple[str, str, str, Tuple]:
        """Requests with equal keys may share one ``estimate_many``."""
        return (self.tenant, self.index, self.estimator.lower(),
                self.options)

    def to_dict(self) -> dict:
        """The request's wire keys (see :func:`encode`)."""
        doc = {
            "id": self.request_id,
            "tenant": self.tenant,
            "index": self.index,
            "estimator": self.estimator,
            "sigma": self.sigma,
            "sargable": self.sargable,
            "buffers": self.buffer_pages,
        }
        if self.options:
            doc["options"] = dict(self.options)
        return doc


#: Failure classes a response can carry: an admission/protocol
#: rejection (never executed) vs an estimator/catalog error (executed
#: and failed).  The load generator accounts the two separately.
CODE_REJECTED = "rejected"
CODE_ERROR = "error"


@dataclass(frozen=True)
class EstimateResponse:
    """The answer (or the truthful failure) for one request."""

    request_id: int
    ok: bool
    estimate: float = math.nan
    error: str = ""
    code: str = ""

    def to_dict(self) -> dict:
        """The response's wire keys (see :func:`encode`)."""
        if self.ok:
            return {"id": self.request_id, "ok": True,
                    "estimate": self.estimate}
        return {"id": self.request_id, "ok": False,
                "error": self.error, "code": self.code or CODE_ERROR}


#: Wire keys a grid request object may carry.
_GRID_KEYS = frozenset(
    {"type", "id", "tenant", "estimator", "indexes", "selectivities",
     "buffers", "options"}
)

#: Wire keys an advise request object may carry.
_ADVISE_KEYS = frozenset({"type", "id", "tenant", "spec"})


@dataclass(frozen=True)
class GridRequest:
    """One batched multi-index curve evaluation.

    Answers ``len(indexes)`` grids — every selectivity crossed with
    every buffer size, per index — in one round trip, the shape the
    fleet advisor's curve evaluation wants.  Results are byte-identical
    to issuing the equivalent per-point :class:`EstimateRequest` lines
    serially (pinned in tests, like ``estimate_many``).
    """

    tenant: str
    estimator: str
    indexes: Tuple[str, ...]
    selectivities: Tuple[Tuple[float, float], ...]
    buffers: Tuple[int, ...]
    request_id: int = 0
    options: Tuple[Tuple[str, object], ...] = field(default=())

    def to_dict(self) -> dict:
        """Wire form; emits ``type:"grid"`` for dispatch."""
        doc = {
            "type": "grid",
            "id": self.request_id,
            "tenant": self.tenant,
            "estimator": self.estimator,
            "indexes": list(self.indexes),
            "selectivities": [list(pair) for pair in self.selectivities],
            "buffers": list(self.buffers),
        }
        if self.options:
            doc["options"] = dict(self.options)
        return doc


@dataclass(frozen=True, eq=False)
class GridResponse:
    """Per-index grids (row per buffer size), or a truthful failure."""

    request_id: int
    ok: bool
    curves: dict = field(default_factory=dict)
    error: str = ""
    code: str = ""

    def to_dict(self) -> dict:
        """Wire form with curve names emitted in sorted order."""
        if self.ok:
            return {"id": self.request_id, "ok": True,
                    "curves": {name: self.curves[name]
                               for name in sorted(self.curves)}}
        return {"id": self.request_id, "ok": False,
                "error": self.error, "code": self.code or CODE_ERROR}


@dataclass(frozen=True, eq=False)
class AdviseRequest:
    """One fleet advisory against the tenant's live catalog.

    ``spec`` is the raw advisor-spec payload
    (:meth:`repro.advisor.AdvisorSpec.to_dict` form); it is validated
    server-side so a malformed spec answers ``ok=false`` rather than
    dropping the connection.
    """

    tenant: str
    spec: dict
    request_id: int = 0

    def to_dict(self) -> dict:
        """Wire form; emits ``type:"advise"`` for dispatch."""
        return {
            "type": "advise",
            "id": self.request_id,
            "tenant": self.tenant,
            "spec": self.spec,
        }


@dataclass(frozen=True, eq=False)
class AdviseResponse:
    """One advisory report, or a truthful failure."""

    request_id: int
    ok: bool
    report: dict = field(default_factory=dict)
    error: str = ""
    code: str = ""

    def to_dict(self) -> dict:
        """Wire form carrying the full advisor report document."""
        if self.ok:
            return {"id": self.request_id, "ok": True,
                    "report": self.report}
        return {"id": self.request_id, "ok": False,
                "error": self.error, "code": self.code or CODE_ERROR}


def _parse_line(line: str) -> dict:
    try:
        doc = json.loads(line)
    except ValueError as exc:
        raise ServingError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ServingError(
            f"request must be a JSON object, got {type(doc).__name__}"
        )
    return doc


def _decode_options(doc: dict) -> Tuple[Tuple[str, object], ...]:
    options = doc.get("options") or {}
    if not isinstance(options, dict):
        raise ServingError(
            f"request 'options' must be an object, got "
            f"{type(options).__name__}"
        )
    return tuple(sorted(options.items()))


def _decode_grid(doc: dict) -> GridRequest:
    unknown = set(doc) - _GRID_KEYS
    if unknown:
        raise ServingError(
            f"grid request carries unknown keys {sorted(unknown)}; "
            f"known: {sorted(_GRID_KEYS)}"
        )
    try:
        indexes = doc["indexes"]
        selectivities = doc["selectivities"]
        buffers = doc["buffers"]
        for name, value in (("indexes", indexes),
                            ("selectivities", selectivities),
                            ("buffers", buffers)):
            if not isinstance(value, list) or not value:
                raise ServingError(
                    f"grid request {name!r} must be a non-empty array"
                )
        pairs = []
        for entry in selectivities:
            if not isinstance(entry, list) or len(entry) not in (1, 2):
                raise ServingError(
                    f"grid selectivity must be [sigma] or "
                    f"[sigma, sargable], got {entry!r}"
                )
            sigma = float(entry[0])
            sargable = float(entry[1]) if len(entry) == 2 else 1.0
            pairs.append((sigma, sargable))
        return GridRequest(
            tenant=str(doc["tenant"]),
            estimator=str(doc["estimator"]),
            indexes=tuple(str(name) for name in indexes),
            selectivities=tuple(pairs),
            buffers=tuple(int(b) for b in buffers),
            request_id=int(doc.get("id", 0)),
            options=_decode_options(doc),
        )
    except KeyError as exc:
        raise ServingError(
            f"grid request is missing required key {exc.args[0]!r}"
        ) from None
    except (TypeError, ValueError) as exc:
        raise ServingError(
            f"grid request field is malformed: {exc}"
        ) from exc


def _decode_advise(doc: dict) -> AdviseRequest:
    unknown = set(doc) - _ADVISE_KEYS
    if unknown:
        raise ServingError(
            f"advise request carries unknown keys {sorted(unknown)}; "
            f"known: {sorted(_ADVISE_KEYS)}"
        )
    try:
        spec = doc["spec"]
        if not isinstance(spec, dict):
            raise ServingError(
                f"advise request 'spec' must be an object, got "
                f"{type(spec).__name__}"
            )
        return AdviseRequest(
            tenant=str(doc["tenant"]),
            spec=spec,
            request_id=int(doc.get("id", 0)),
        )
    except KeyError as exc:
        raise ServingError(
            f"advise request is missing required key {exc.args[0]!r}"
        ) from None
    except (TypeError, ValueError) as exc:
        raise ServingError(
            f"advise request field is malformed: {exc}"
        ) from exc


def decode_any(line: str):
    """Parse one request line of any type.

    Dispatches on the optional ``type`` key: absent or ``"estimate"``
    takes the legacy single-estimate path (byte-compatible with every
    pre-grid client), ``"grid"`` and ``"advise"`` the batched paths.
    """
    doc = _parse_line(line)
    kind = doc.get("type", "estimate")
    if kind == "estimate":
        return _decode_estimate(doc)
    if kind == "grid":
        return _decode_grid(doc)
    if kind == "advise":
        return _decode_advise(doc)
    raise ServingError(
        f"unknown request type {kind!r}; known: estimate, grid, advise"
    )


def decode_request(line: str) -> EstimateRequest:
    """Parse one request line, rejecting malformed or unknown fields."""
    return _decode_estimate(_parse_line(line))


def _decode_estimate(doc: dict) -> EstimateRequest:
    unknown = set(doc) - _REQUEST_KEYS - {"type"}
    if unknown:
        raise ServingError(
            f"request carries unknown keys {sorted(unknown)}; "
            f"known: {sorted(_REQUEST_KEYS)}"
        )
    try:
        options = doc.get("options") or {}
        if not isinstance(options, dict):
            raise ServingError(
                f"request 'options' must be an object, got "
                f"{type(options).__name__}"
            )
        return EstimateRequest(
            tenant=str(doc["tenant"]),
            index=str(doc["index"]),
            estimator=str(doc["estimator"]),
            sigma=float(doc["sigma"]),
            sargable=float(doc.get("sargable", 1.0)),
            buffer_pages=int(doc["buffers"]),
            request_id=int(doc.get("id", 0)),
            options=tuple(sorted(options.items())),
        )
    except KeyError as exc:
        raise ServingError(
            f"request is missing required key {exc.args[0]!r}"
        ) from None
    except (TypeError, ValueError) as exc:
        raise ServingError(f"request field is malformed: {exc}") from exc


def decode_response(line: str) -> EstimateResponse:
    """Parse one response line (the load-generator client's side)."""
    try:
        doc = json.loads(line)
    except ValueError as exc:
        raise ServingError(f"response is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or "ok" not in doc:
        raise ServingError(f"malformed response line: {line!r}")
    if doc["ok"]:
        return EstimateResponse(
            request_id=int(doc.get("id", 0)),
            ok=True,
            estimate=float(doc["estimate"]),
        )
    return EstimateResponse(
        request_id=int(doc.get("id", 0)),
        ok=False,
        error=str(doc.get("error", "unknown error")),
        code=str(doc.get("code", CODE_ERROR)),
    )


def encode(message) -> str:
    """One canonical JSON line (sorted keys, no whitespace padding)."""
    return json.dumps(
        message.to_dict(), sort_keys=True, separators=(",", ":")
    ) + "\n"
