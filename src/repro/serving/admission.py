"""Admission control for the serving tier.

The estimation service is advisory infrastructure: when it is
overloaded the right behaviour is to *shed* — answer "try again" fast —
rather than queue unboundedly and serve every caller slowly.
:class:`AdmissionController` implements the simplest truthful form:
queue-depth shedding.  A request is admitted only while the number of
admitted-but-unfinished requests is below ``max_queue``; everything
else is rejected **and counted**, per reason, so the load generator can
assert ``sent == completed + rejected`` exactly (no dropped-but-
unreported requests, the acceptance criterion the CI smoke run pins).

Reasons are a closed set:

* ``queue_full`` — shed by depth;
* ``closed``     — the server is draining/stopped;
* ``invalid``    — the request itself was malformed (bad tenant name,
  non-positive buffer count): never enqueued, never silently dropped.

Estimator-level failures are *not* admission failures: an admitted
request whose estimator raises gets a failed future (and the engine's
own error/degraded counters), not a rejection.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.errors import ServingError
from repro.obs import instruments
from repro.obs.metrics import MetricsRegistry
from repro.serving.obs import DualFamily

#: Admission-control states reported by :meth:`AdmissionController.state`.
STATE_ACCEPTING = "accepting"
STATE_SHEDDING = "shedding"
STATE_CLOSED = "closed"

REJECT_QUEUE_FULL = "queue_full"
REJECT_CLOSED = "closed"
REJECT_INVALID = "invalid"

#: Default bound on admitted-but-unfinished requests.
DEFAULT_MAX_QUEUE = 1024


class AdmissionController:
    """Queue-depth shedding with truthful per-reason reject counters."""

    def __init__(
        self,
        max_queue: int = DEFAULT_MAX_QUEUE,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_queue < 1:
            raise ServingError(
                f"max_queue must be >= 1, got {max_queue}"
            )
        self._max_queue = max_queue
        self._closed = False
        self._lock = threading.Lock()
        self._registry = (
            registry if registry is not None else MetricsRegistry()
        )
        self._rejected = DualFamily(
            instruments.serving_rejected, self._registry
        )
        self._last_shed = False

    @property
    def max_queue(self) -> int:
        """The depth bound admission enforces."""
        return self._max_queue

    def admit(self, depth: int) -> None:
        """Admit a request observed at queue ``depth`` or raise.

        Raises :class:`~repro.errors.ServingError` — after counting the
        rejection — when the server is closed or the queue is full.
        """
        with self._lock:
            if self._closed:
                self._rejected.labels(reason=REJECT_CLOSED).inc()
                raise ServingError(
                    "serving tier is closed and not accepting requests"
                )
            if depth >= self._max_queue:
                self._last_shed = True
                self._rejected.labels(reason=REJECT_QUEUE_FULL).inc()
                raise ServingError(
                    f"serving queue is full ({depth} >= "
                    f"{self._max_queue} queued requests); shedding"
                )
            self._last_shed = False

    def reject_invalid(self, reason: str) -> ServingError:
        """Count a malformed request and return the error to raise."""
        self._rejected.labels(reason=REJECT_INVALID).inc()
        return ServingError(reason)

    def close(self) -> None:
        """Stop admitting; in-flight requests are unaffected."""
        with self._lock:
            self._closed = True

    def state(self, depth: int = 0) -> str:
        """Current admission state at queue ``depth``."""
        with self._lock:
            if self._closed:
                return STATE_CLOSED
            if depth >= self._max_queue or self._last_shed:
                return STATE_SHEDDING
            return STATE_ACCEPTING

    def rejected(self) -> Dict[str, int]:
        """Per-reason rejection counts (all reasons, zero-filled)."""
        counts = {
            REJECT_QUEUE_FULL: 0,
            REJECT_CLOSED: 0,
            REJECT_INVALID: 0,
        }
        for (reason,), child in self._rejected.children().items():
            counts[reason] = child.value
        return counts

    def total_rejected(self) -> int:
        """Every rejection this controller ever issued."""
        return sum(self.rejected().values())

    def __repr__(self) -> str:
        return (
            f"AdmissionController(max_queue={self._max_queue}, "
            f"rejected={self.total_rejected()})"
        )
