"""Per-tenant catalog namespaces for the serving tier.

A multi-tenant estimation service must never let one tenant's
statistics — or one tenant's *damage* — leak into another's answers.
:class:`TenantCatalogs` gives each tenant an isolated directory under
one root::

    <root>/<tenant>/catalog.json

and serves each through its own
:class:`~repro.resilience.store.ResilientCatalogStore` wrapped in its
own :class:`~repro.engine.EstimationEngine`.  Isolation falls out of
the layout: a corrupt catalog is quarantined *inside its tenant's
directory* (``catalog.json.quarantined``), its store limps along on its
own last-known-good snapshot, and no other tenant's store ever reads
the damaged bytes.  Generations, bound-estimator caches, breakers, and
recovery counters are all per tenant.

Tenant names are a closed vocabulary (``[a-z0-9][a-z0-9_-]{0,63}``) so
a request can never name a path outside the root — ``..``, ``/``, and
friends are rejected before any filesystem access.

The engine cache is LRU-bounded: a deployment with more tenants than
``cache_size`` keeps the hot ones resident and rebuilds cold ones on
demand (the catalog file is the durable state; an eviction only costs a
re-parse).
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.catalog.catalog import SystemCatalog
from repro.engine import EstimationEngine
from repro.errors import ServingError
from repro.obs import instruments
from repro.obs.metrics import MetricsRegistry
from repro.resilience.breaker import BreakerPolicy
from repro.resilience.store import ResilientCatalogStore
from repro.serving.obs import DualFamily

#: Tenant engines kept resident per :class:`TenantCatalogs`.
DEFAULT_TENANT_CACHE = 32

#: File name every tenant's statistics live under.
CATALOG_FILE = "catalog.json"

_TENANT_NAME = re.compile(r"^[a-z0-9][a-z0-9_-]{0,63}$")


def validate_tenant_name(name: object) -> str:
    """``name`` if it is a legal tenant name, else :class:`ServingError`.

    The grammar is deliberately narrow — lowercase alphanumerics plus
    ``-``/``_``, starting alphanumeric, at most 64 characters — so a
    tenant name is always a safe single path component.
    """
    if not isinstance(name, str) or not _TENANT_NAME.match(name):
        raise ServingError(
            f"invalid tenant name {name!r}: must match "
            f"[a-z0-9][a-z0-9_-]{{0,63}}"
        )
    return name


class TenantCatalogs:
    """An LRU-bounded map of tenant name -> isolated serving engine.

    Thread-safe: the serving tier's dispatcher and any management
    thread (provisioning a tenant, listing tenants) may call in
    concurrently.  ``engine_options`` are forwarded to every
    :class:`~repro.engine.EstimationEngine` built (``fallback_chain``,
    ``breaker_policy``, ...), so degraded-mode serving policy is uniform
    across tenants while the state it guards stays per tenant.
    """

    def __init__(
        self,
        root: Union[str, Path],
        cache_size: int = DEFAULT_TENANT_CACHE,
        fallback_chain: Optional[Sequence[str]] = None,
        breaker_policy: Optional[BreakerPolicy] = None,
        store_factory: Optional[
            Callable[[Path], ResilientCatalogStore]
        ] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if cache_size < 1:
            raise ServingError(
                f"tenant cache_size must be >= 1, got {cache_size}"
            )
        self._root = Path(root)
        self._cache_size = cache_size
        self._fallback_chain = (
            tuple(fallback_chain) if fallback_chain else None
        )
        self._breaker_policy = breaker_policy
        self._store_factory = store_factory
        self._engines: "OrderedDict[str, EstimationEngine]" = OrderedDict()
        self._lock = threading.Lock()
        self._evictions = 0
        self._registry = (
            registry if registry is not None else MetricsRegistry()
        )
        self._active_gauge = DualFamily(
            instruments.serving_tenants_active, self._registry
        ).labels()
        self._eviction_counter = DualFamily(
            instruments.serving_tenant_evictions, self._registry
        ).labels()

    @property
    def root(self) -> Path:
        """The directory all tenant namespaces live under."""
        return self._root

    def catalog_path(self, tenant: str) -> Path:
        """Where ``tenant``'s statistics file lives (name validated)."""
        return self._root / validate_tenant_name(tenant) / CATALOG_FILE

    def tenant_names(self) -> List[str]:
        """Sorted tenants that have a catalog file on disk."""
        if not self._root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self._root.iterdir()
            if entry.is_dir()
            and _TENANT_NAME.match(entry.name)
            and (entry / CATALOG_FILE).exists()
        )

    def save(self, tenant: str, catalog: SystemCatalog) -> Path:
        """Provision/refresh ``tenant``'s namespace with ``catalog``.

        Creates the tenant directory on first use and writes the file
        atomically through the tenant's own store, so resident engines
        pick the new statistics up via the normal generation bump.
        """
        path = self.catalog_path(tenant)
        path.parent.mkdir(parents=True, exist_ok=True)
        store = self.engine(tenant).source
        store.save(catalog)
        return path

    def _build_engine(self, tenant: str) -> EstimationEngine:
        path = self.catalog_path(tenant)
        if self._store_factory is not None:
            store = self._store_factory(path)
        else:
            store = ResilientCatalogStore(path)
        return EstimationEngine(
            store,
            fallback_chain=self._fallback_chain,
            breaker_policy=self._breaker_policy,
        )

    def engine(self, tenant: str) -> EstimationEngine:
        """The (cached) serving engine for ``tenant``.

        Building an engine never touches the catalog file — a tenant
        with no statistics yet only fails when asked to estimate, with
        the store's own "run statistics collection first" error.
        """
        tenant = validate_tenant_name(tenant)
        with self._lock:
            engine = self._engines.get(tenant)
            if engine is not None:
                self._engines.move_to_end(tenant)
                return engine
            engine = self._build_engine(tenant)
            self._engines[tenant] = engine
            while len(self._engines) > self._cache_size:
                self._engines.popitem(last=False)
                self._evictions += 1
                self._eviction_counter.inc()
            self._active_gauge.set(len(self._engines))
            return engine

    def resident_tenants(self) -> List[str]:
        """Tenants whose engines are currently cached (LRU order)."""
        with self._lock:
            return list(self._engines)

    def metrics(self) -> Dict[str, object]:
        """Cache occupancy and eviction counters (truthful)."""
        with self._lock:
            return {
                "resident": len(self._engines),
                "cache_size": self._cache_size,
                "evictions": self._evictions,
            }

    def __repr__(self) -> str:
        return (
            f"TenantCatalogs(root={str(self._root)!r}, "
            f"resident={len(self._engines)}/{self._cache_size})"
        )
