"""Dual-recording metric bindings for the serving tier.

The serving counters must stay **truthful with no setup** — admission
accounting is a correctness property (``sent == completed + rejected``),
not an optional diagnostic — so, like the engine and the resilient
store, each serving component records into its own always-enabled
registry.  Every record is *mirrored* onto the process-global registry
(a no-op while that registry is disabled) so ``--metrics-out`` exports
carry the serving families without the components knowing about the
observability session.

:class:`DualFamily` packages that pattern: one accessor from
:mod:`repro.obs.instruments`, bound once on the primary registry and —
when the primary is not itself the global registry — once on the global
one.  Children forward ``inc``/``set``/``observe`` to both and read
back from the primary only.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.metrics import MetricsRegistry, global_registry


class DualChild:
    """One label assignment recorded on the primary and the mirror."""

    __slots__ = ("_primary", "_mirror")

    def __init__(self, primary, mirror) -> None:
        self._primary = primary
        self._mirror = mirror

    def inc(self, amount=1) -> None:
        """Increment the counter on both sides."""
        self._primary.inc(amount)
        if self._mirror is not None:
            self._mirror.inc(amount)

    def set(self, value) -> None:
        """Set the gauge on both sides."""
        self._primary.set(value)
        if self._mirror is not None:
            self._mirror.set(value)

    def observe(self, value) -> None:
        """Record a histogram observation on both sides."""
        self._primary.observe(value)
        if self._mirror is not None:
            self._mirror.observe(value)

    @property
    def value(self):
        """The primary (always-enabled) side's current value."""
        return self._primary.value

    @property
    def count(self) -> int:
        """The primary side's observation count."""
        return self._primary.count

    @property
    def sum(self):
        """The primary side's observation sum."""
        return self._primary.sum

    def bucket_counts(self):
        """The primary side's cumulative histogram buckets."""
        return self._primary.bucket_counts()


class DualFamily:
    """An instrument family bound on a registry plus the global mirror."""

    def __init__(
        self,
        accessor: Callable[[Optional[MetricsRegistry]], object],
        registry: MetricsRegistry,
    ) -> None:
        self._primary = accessor(registry)
        shared = global_registry()
        self._mirror = (
            accessor(shared) if shared is not registry else None
        )

    @property
    def buckets(self):
        """The family's histogram bucket bounds."""
        return self._primary.buckets

    def labels(self, **labelvalues) -> DualChild:
        """Bind one label assignment on both sides."""
        mirror = (
            self._mirror.labels(**labelvalues)
            if self._mirror is not None
            else None
        )
        return DualChild(self._primary.labels(**labelvalues), mirror)

    def children(self):
        """The primary registry's children (the truthful side)."""
        return self._primary.children()
