"""Estimation-as-a-service: the multi-tenant serving tier.

The paper's Est-IO estimates are consumed at query-compilation time —
thousands of cheap calls per second against shared statistics.  This
package turns the in-process :class:`~repro.engine.EstimationEngine`
into that service:

* :mod:`repro.serving.server` — the micro-batching request loop
  (:class:`EstimationServer`): concurrent submissions coalesce into the
  engine's ``estimate_many`` fast path, byte-identical to serial calls;
* :mod:`repro.serving.tenants` — per-tenant catalog namespaces over
  :class:`~repro.resilience.store.ResilientCatalogStore`
  (:class:`TenantCatalogs`): isolated directories, independent
  generations and quarantine, an LRU-bounded engine cache;
* :mod:`repro.serving.admission` — queue-depth shedding with truthful
  per-reason reject counters (:class:`AdmissionController`);
* :mod:`repro.serving.netserver` — the NDJSON-over-TCP front end
  (``repro serve``);
* :mod:`repro.serving.loadgen` — the deterministic closed-/open-loop
  load generator (``repro loadgen``, ``BENCH_serving.json``);
* :mod:`repro.serving.protocol` — the wire format both ends share.
"""

from repro.serving.admission import (
    DEFAULT_MAX_QUEUE,
    STATE_ACCEPTING,
    STATE_CLOSED,
    STATE_SHEDDING,
    AdmissionController,
)
from repro.serving.loadgen import (
    LoadgenResult,
    TCPTransport,
    WorkloadSpec,
    request_stream,
    run_closed_loop,
    run_open_loop,
    stream_digest,
)
from repro.serving.netserver import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    ServingTCPServer,
)
from repro.serving.protocol import (
    AdviseRequest,
    AdviseResponse,
    EstimateRequest,
    EstimateResponse,
    GridRequest,
    GridResponse,
    decode_any,
    decode_request,
    decode_response,
    encode,
)
from repro.serving.server import (
    DEFAULT_BATCH_WINDOW_MS,
    DEFAULT_MAX_BATCH,
    EstimationServer,
    ServingConfig,
)
from repro.serving.tenants import (
    DEFAULT_TENANT_CACHE,
    TenantCatalogs,
    validate_tenant_name,
)

__all__ = [
    "AdmissionController",
    "AdviseRequest",
    "AdviseResponse",
    "DEFAULT_BATCH_WINDOW_MS",
    "DEFAULT_HOST",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_QUEUE",
    "DEFAULT_PORT",
    "DEFAULT_TENANT_CACHE",
    "EstimateRequest",
    "EstimateResponse",
    "EstimationServer",
    "GridRequest",
    "GridResponse",
    "LoadgenResult",
    "STATE_ACCEPTING",
    "STATE_CLOSED",
    "STATE_SHEDDING",
    "ServingConfig",
    "ServingTCPServer",
    "TCPTransport",
    "TenantCatalogs",
    "WorkloadSpec",
    "decode_any",
    "decode_request",
    "decode_response",
    "encode",
    "request_stream",
    "run_closed_loop",
    "run_open_loop",
    "stream_digest",
    "validate_tenant_name",
]
