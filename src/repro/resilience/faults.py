"""Deterministic, seeded fault injection for catalog I/O.

The chaos suite's workhorse: a :class:`FaultInjector` is a drop-in
:class:`~repro.catalog.store.CatalogIO` that perturbs exactly the
operations the store performs, according to an explicit list of
:class:`FaultRule`\\ s.  Every probabilistic decision comes from one
``random.Random(seed)``, so a given (rules, seed, call sequence) triple
replays the identical fault schedule — a failing chaos run is a
reproducible bug report, not a flake.

Fault kinds (each valid for specific operations):

``transient``
    Raise :class:`OSError` before touching the file — the retryable
    class (EINTR, brief NFS outage).  Valid on ``read`` and ``write``.
``corrupt``
    Return a truncated prefix of the real bytes from ``read`` — what a
    reader racing a non-atomic writer, or a half-written file after a
    crash, observes.  The result is valid UTF-8 but broken JSON, so
    parsing fails loudly downstream.
``torn-write``
    Persist only a prefix of the text on ``write`` — the crash-mid-write
    outcome the atomic save discipline normally prevents; injected to
    prove the reader side survives it anyway.
``mtime-collision``
    Perform the write, pad the new content to the old file's size when
    possible, and restore the old mtime — the same-size-within-mtime-
    granularity rewrite that made stat-stamp staleness checks lie (the
    content stamp must still detect it).
"""

from __future__ import annotations

import os
import random
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Tuple, Union

from repro.catalog.store import CatalogIO
from repro.errors import FaultInjectionError

#: Operations a rule may target.
OPERATIONS: Tuple[str, ...] = ("read", "write")

#: Fault kind -> operations it applies to.
FAULT_KINDS = {
    "transient": ("read", "write"),
    "corrupt": ("read",),
    "torn-write": ("write",),
    "mtime-collision": ("write",),
}


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: fire ``kind`` on ``operation`` with ``rate``.

    ``limit`` bounds how many times the rule fires in total (``None`` =
    unlimited) — "fail the next two reads, then recover" is
    ``FaultRule("read", "transient", limit=2)``.
    """

    operation: str
    kind: str
    rate: float = 1.0
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultInjectionError(
                f"unknown fault kind {self.kind!r}; known: "
                f"{', '.join(sorted(FAULT_KINDS))}"
            )
        if self.operation not in OPERATIONS:
            raise FaultInjectionError(
                f"unknown operation {self.operation!r}; known: "
                f"{', '.join(OPERATIONS)}"
            )
        if self.operation not in FAULT_KINDS[self.kind]:
            raise FaultInjectionError(
                f"fault kind {self.kind!r} does not apply to "
                f"{self.operation!r} (valid: "
                f"{', '.join(FAULT_KINDS[self.kind])})"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise FaultInjectionError(
                f"rate must be in [0, 1], got {self.rate}"
            )
        if self.limit is not None and self.limit < 1:
            raise FaultInjectionError(
                f"limit must be >= 1 or None, got {self.limit}"
            )


class FaultInjector(CatalogIO):
    """A :class:`CatalogIO` that injects faults per an explicit plan.

    Wraps a real ``io`` (default: the plain filesystem one).  Each call
    draws one uniform variate per configured rule *in rule order*, so
    the schedule is a pure function of (rules, seed, call sequence).
    Counters expose what actually fired: ``calls[op]`` and
    ``injected[(op, kind)]``.
    """

    def __init__(
        self,
        rules: Iterable[FaultRule],
        seed: int = 0,
        io: Optional[CatalogIO] = None,
    ) -> None:
        self._rules = tuple(rules)
        self._remaining = [rule.limit for rule in self._rules]
        self._rng = random.Random(seed)
        self._io = io or CatalogIO()
        self.calls: Counter = Counter()
        self.injected: Counter = Counter()

    def _fired(self, operation: str) -> Tuple[str, ...]:
        """Kinds firing on this call, in rule order (deterministic)."""
        kinds = []
        for i, rule in enumerate(self._rules):
            if rule.operation != operation:
                continue
            if self._remaining[i] == 0:
                continue
            if self._rng.random() < rule.rate:
                if self._remaining[i] is not None:
                    self._remaining[i] -= 1
                self.injected[(operation, rule.kind)] += 1
                kinds.append(rule.kind)
        return tuple(kinds)

    def read_bytes(self, path: Union[str, Path]) -> bytes:
        self.calls["read"] += 1
        fired = self._fired("read")
        if "transient" in fired:
            raise OSError(
                f"injected transient read fault on {str(path)!r}"
            )
        data = self._io.read_bytes(path)
        if "corrupt" in fired:
            return data[: max(1, len(data) // 2)]
        return data

    def save_text(self, path: Union[str, Path], text: str) -> None:
        self.calls["write"] += 1
        fired = self._fired("write")
        if "transient" in fired:
            raise OSError(
                f"injected transient write fault on {str(path)!r}"
            )
        if "torn-write" in fired:
            self._io.save_text(path, text[: max(1, len(text) // 2)])
            return
        if "mtime-collision" in fired and Path(path).exists():
            info = os.stat(path)
            encoded = len(text.encode("utf-8"))
            if encoded < info.st_size:
                # Trailing whitespace is JSON-legal padding.
                text = text + " " * (info.st_size - encoded)
            self._io.save_text(path, text)
            os.utime(
                path, ns=(info.st_atime_ns, info.st_mtime_ns)
            )
            return
        self._io.save_text(path, text)

    def replace(
        self, src: Union[str, Path], dst: Union[str, Path]
    ) -> None:
        # Quarantine renames pass through unperturbed: the resilience
        # layer's own recovery actions are not chaos targets here.
        self._io.replace(src, dst)

    def __repr__(self) -> str:
        return (
            f"FaultInjector(rules={len(self._rules)}, "
            f"injected={sum(self.injected.values())})"
        )
