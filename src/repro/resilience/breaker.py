"""Per-estimator circuit breakers for degraded-mode serving.

A failing estimator must not be retried on every optimizer call — the
engine's fallback chain answers instead while the breaker is open, and
the primary is probed again only after a cooldown.  The classic three
states:

``closed``
    Normal serving.  Consecutive failures are counted; reaching
    ``failure_threshold`` trips the breaker open.
``open``
    Calls are skipped outright (the chain moves on) until
    ``cooldown_seconds`` have elapsed on the injected clock.
``half-open``
    After the cooldown one trial call is let through per probe;
    ``half_open_successes`` consecutive successes close the breaker, a
    single failure re-opens it (and restarts the cooldown).

The clock is injectable so tests drive state transitions without
sleeping, and every transition is counted for the engine's
``breaker_state`` metrics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ResilienceError
from repro.obs import instruments
from repro.obs.metrics import MetricsRegistry

#: The three breaker states, as reported by :attr:`CircuitBreaker.state`.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerPolicy:
    """Thresholds governing one :class:`CircuitBreaker`."""

    failure_threshold: int = 3
    cooldown_seconds: float = 30.0
    half_open_successes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ResilienceError(
                f"failure_threshold must be >= 1, got "
                f"{self.failure_threshold}"
            )
        if self.cooldown_seconds <= 0:
            raise ResilienceError(
                f"cooldown_seconds must be > 0, got "
                f"{self.cooldown_seconds}"
            )
        if self.half_open_successes < 1:
            raise ResilienceError(
                f"half_open_successes must be >= 1, got "
                f"{self.half_open_successes}"
            )


class CircuitBreaker:
    """One breaker instance (the engine keeps one per estimator name).

    When given a :class:`~repro.obs.metrics.MetricsRegistry` (and the
    estimator ``name`` to label with), every state transition is
    mirrored onto the ``repro_breaker_state`` gauge and trips onto the
    ``repro_breaker_opens_total`` counter; without one the breaker only
    keeps its local ``opens`` count.
    """

    def __init__(
        self,
        policy: Optional[BreakerPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
        registry: Optional[MetricsRegistry] = None,
        name: str = "",
    ) -> None:
        self.policy = policy or BreakerPolicy()
        self._clock = clock
        self._registry = registry
        self._obs_name = name
        self._consecutive_failures = 0
        self._half_open_successes = 0
        self._opened_at = 0.0
        #: Times the breaker tripped open (observability).
        self.opens = 0
        self._set_state(BREAKER_CLOSED)

    def _set_state(self, state: str) -> None:
        self._state = state
        registry = self._registry
        if registry is not None and registry.enabled:
            instruments.breaker_state(registry).labels(
                estimator=self._obs_name
            ).set(instruments.BREAKER_STATE_VALUES[state])

    @property
    def state(self) -> str:
        """Current state; lazily moves ``open`` → ``half-open`` after the
        cooldown elapses."""
        if (
            self._state == BREAKER_OPEN
            and self._clock() - self._opened_at
            >= self.policy.cooldown_seconds
        ):
            self._set_state(BREAKER_HALF_OPEN)
            self._half_open_successes = 0
        return self._state

    def allow(self) -> bool:
        """Whether a call may be attempted right now."""
        return self.state != BREAKER_OPEN

    def record_success(self) -> None:
        """Note a successful call through this breaker."""
        if self.state == BREAKER_HALF_OPEN:
            self._half_open_successes += 1
            if (
                self._half_open_successes
                >= self.policy.half_open_successes
            ):
                self._set_state(BREAKER_CLOSED)
                self._consecutive_failures = 0
        else:
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        """Note a failed call; may trip or re-trip the breaker."""
        state = self.state
        if state == BREAKER_HALF_OPEN:
            self._trip()
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.policy.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._set_state(BREAKER_OPEN)
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._half_open_successes = 0
        self.opens += 1
        registry = self._registry
        if registry is not None and registry.enabled:
            instruments.breaker_opens(registry).labels(
                estimator=self._obs_name
            ).inc()

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, opens={self.opens})"
        )
