"""Bounded retry with deterministic jittered exponential backoff.

Transient I/O faults (EINTR, NFS hiccups, a writer holding a lock for a
moment) are survived by retrying; persistent ones must surface quickly.
:class:`RetryPolicy` bounds both dimensions — a fixed attempt budget and a
capped exponential delay schedule — and the jitter that decorrelates
concurrent retriers is drawn from a caller-supplied seeded
:class:`random.Random`, so a test (or a reproduction of an incident) can
replay the exact delay sequence.  The sleep function is injectable for the
same reason: the chaos suite runs thousands of injected faults with a
no-op sleep.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, TypeVar

from repro.errors import ResilienceError

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry a transient fault.

    ``attempts`` is the *total* number of tries (1 = no retry).  The
    delay before retry ``i`` (0-based) is
    ``min(max_delay, base_delay * multiplier**i)``, scaled down by up to
    ``jitter`` (a fraction in [0, 1]) using the caller's RNG.
    """

    attempts: int = 4
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ResilienceError(
                f"attempts must be >= 1, got {self.attempts}"
            )
        if self.base_delay < 0:
            raise ResilienceError(
                f"base_delay must be >= 0, got {self.base_delay}"
            )
        if self.multiplier < 1.0:
            raise ResilienceError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.max_delay < self.base_delay:
            raise ResilienceError(
                f"max_delay ({self.max_delay}) must be >= base_delay "
                f"({self.base_delay})"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ResilienceError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    def delay(self, retry_index: int, rng: random.Random) -> float:
        """The jittered backoff before retry ``retry_index`` (0-based)."""
        raw = min(
            self.max_delay, self.base_delay * self.multiplier ** retry_index
        )
        return raw * (1.0 - self.jitter * rng.random())


def call_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy,
    retry_on: Tuple[type, ...] = (OSError,),
    sleep: Callable[[float], None] = time.sleep,
    rng: Optional[random.Random] = None,
) -> Tuple[T, int]:
    """Run ``fn`` under ``policy``; return ``(result, retries_used)``.

    Only exceptions in ``retry_on`` are retried; anything else
    propagates immediately.  When the attempt budget is exhausted the
    last transient exception propagates unchanged.
    """
    rng = rng if rng is not None else random.Random(0)
    for attempt in range(policy.attempts):
        try:
            return fn(), attempt
        except retry_on:
            if attempt == policy.attempts - 1:
                raise
            sleep(policy.delay(attempt, rng))
    raise AssertionError("unreachable")  # pragma: no cover
