"""Resilience layer: the estimator as infrastructure that degrades, not
fails.

The paper's repro notes flag statistics collection as "easy, but large
index-entry scans slow" — and a slow pass that loses all progress on
interruption, a serving engine that dies on one corrupt catalog file, or
an estimator with no fallback all turn an advisory subsystem into a
single point of failure.  This package removes those failure modes,
threaded through three layers (see DESIGN.md, "Resilience
architecture"):

* :mod:`repro.resilience.checkpoint` — periodic atomic snapshots of the
  kernel stream during an LRU-Fit pass; an interrupted-then-resumed run
  produces byte-identical statistics (``repro fit --checkpoint DIR
  --resume``);
* :mod:`repro.resilience.faults` + :mod:`repro.resilience.retry` +
  :mod:`repro.resilience.store` — a deterministic seeded fault injector
  over catalog I/O, bounded jittered-backoff retries on transient
  faults, and quarantine-and-continue (``*.quarantined``) with
  last-known-good serving on persistent corruption;
* :mod:`repro.resilience.breaker` — per-estimator circuit breakers
  backing the engine's fallback chain (degraded-mode serving).
"""

from repro.resilience.breaker import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BreakerPolicy,
    CircuitBreaker,
)
from repro.resilience.checkpoint import (
    CHECKPOINT_FILENAME,
    CHECKPOINT_SCHEMA_VERSION,
    DEFAULT_EVERY_REFS,
    Checkpointer,
    CheckpointPolicy,
    CheckpointState,
    hash_pages,
    resolve_checkpointer,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    OPERATIONS,
    FaultInjector,
    FaultRule,
)
from repro.resilience.retry import RetryPolicy, call_with_retry
from repro.resilience.store import (
    QUARANTINE_SUFFIX,
    ResilientCatalogStore,
)

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BreakerPolicy",
    "CHECKPOINT_FILENAME",
    "CHECKPOINT_SCHEMA_VERSION",
    "Checkpointer",
    "CheckpointPolicy",
    "CheckpointState",
    "CircuitBreaker",
    "DEFAULT_EVERY_REFS",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultRule",
    "OPERATIONS",
    "QUARANTINE_SUFFIX",
    "ResilientCatalogStore",
    "RetryPolicy",
    "call_with_retry",
    "hash_pages",
    "resolve_checkpointer",
]
