"""Checkpointed, resumable LRU-Fit passes.

The paper's own repro notes flag the operational risk of statistics
collection: the pass is "easy, but large index-entry scans [are] slow".
An interrupted scan losing hours of work is therefore the first failure
this layer removes.  A :class:`Checkpointer` periodically writes an atomic
snapshot of the kernel stream's complete mid-pass state (plus a running
digest of the trace prefix consumed so far); ``LRUFit.run_streaming``
resumes from the latest snapshot by skipping the already-consumed prefix
— verifying it digests to the checkpointed value — and feeding the rest
into the restored stream.

The guarantee is exact, not approximate: because the snapshot captures
the full kernel state and the resumed run consumes exactly the remaining
references, an interrupted-then-resumed pass produces FPF curves (and
hence catalog records) byte-identical to an uninterrupted one.  The
differential test suite pins this for every exact kernel on the
verification corpus.

Checkpoint files are single JSON documents written with the same atomic
tmp + fsync + ``os.replace`` discipline as the catalog, carrying a
schema version, the kernel name, the reference position, the trace
digest, and the base64 stream snapshot guarded by its own SHA-256 — a
truncated or hand-edited checkpoint fails closed with
:class:`~repro.errors.CheckpointError` instead of silently corrupting
statistics.
"""

from __future__ import annotations

import base64
import hashlib
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Optional, Union

from repro.buffer.kernels.base import KernelStream
from repro.catalog.catalog import atomic_write_text
from repro.errors import CheckpointError
from repro.obs import instruments
from repro.obs.metrics import global_registry

#: Wire-format version of checkpoint files.
CHECKPOINT_SCHEMA_VERSION = 1

#: Default checkpoint cadence in consumed references.
DEFAULT_EVERY_REFS = 100_000

#: File name used inside a checkpoint directory.
CHECKPOINT_FILENAME = "lru-fit.ckpt.json"


def hash_pages(hasher: "hashlib._Hash", pages: Iterable[int]) -> None:
    """Feed ``pages`` into ``hasher`` with a fixed 8-byte encoding.

    The encoding is position-based (chunk-boundary independent), so a
    resumed run may re-chunk the trace arbitrarily and still reproduce
    the checkpointed prefix digest.
    """
    try:
        hasher.update(
            b"".join(p.to_bytes(8, "little") for p in pages)
        )
    except (OverflowError, AttributeError) as exc:
        raise CheckpointError(
            f"trace pages must be ints in [0, 2**64) to be "
            f"checkpointed: {exc}"
        ) from exc


@dataclass(frozen=True)
class CheckpointPolicy:
    """When to snapshot: every N references and/or every T seconds.

    Both triggers are active when both are set; a snapshot is taken as
    soon as either fires (always at a chunk boundary — mid-chunk kernel
    state is never observed).
    """

    every_refs: Optional[int] = DEFAULT_EVERY_REFS
    every_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.every_refs is None and self.every_seconds is None:
            raise CheckpointError(
                "checkpoint policy needs every_refs and/or every_seconds"
            )
        if self.every_refs is not None and self.every_refs < 1:
            raise CheckpointError(
                f"every_refs must be >= 1, got {self.every_refs}"
            )
        if self.every_seconds is not None and self.every_seconds <= 0:
            raise CheckpointError(
                f"every_seconds must be > 0, got {self.every_seconds}"
            )


@dataclass(frozen=True)
class CheckpointState:
    """One loaded checkpoint: everything needed to resume the pass."""

    kernel: str
    position: int
    trace_digest: str
    stream: KernelStream


class Checkpointer:
    """Atomic snapshot writer/reader for one LRU-Fit pass.

    Bound to a directory (created on first save); the snapshot lives in a
    single file replaced atomically on every save, so a crash mid-save
    leaves the previous checkpoint intact.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        policy: Optional[CheckpointPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._directory = Path(directory)
        self.policy = policy or CheckpointPolicy()
        self._clock = clock
        self._last_position = 0
        self._last_time = clock()
        #: Snapshots written by this instance (observability/tests).
        self.saves = 0

    @property
    def directory(self) -> Path:
        """The directory this checkpointer writes into."""
        return self._directory

    @property
    def path(self) -> Path:
        """The checkpoint file."""
        return self._directory / CHECKPOINT_FILENAME

    def exists(self) -> bool:
        """Whether a checkpoint file is present."""
        return self.path.exists()

    def due(self, position: int) -> bool:
        """Whether the policy calls for a snapshot at ``position``."""
        policy = self.policy
        if (
            policy.every_refs is not None
            and position - self._last_position >= policy.every_refs
        ):
            return True
        if (
            policy.every_seconds is not None
            and self._clock() - self._last_time >= policy.every_seconds
        ):
            return True
        return False

    def save(
        self,
        stream: KernelStream,
        position: int,
        trace_digest: str,
        kernel: str,
    ) -> None:
        """Atomically snapshot ``stream`` at ``position`` references."""
        timed = global_registry().enabled
        started = time.perf_counter_ns() if timed else 0
        blob = stream.snapshot_state()
        payload = {
            "schema_version": CHECKPOINT_SCHEMA_VERSION,
            "kernel": kernel,
            "position": position,
            "trace_digest": trace_digest,
            "stream_sha256": hashlib.sha256(blob).hexdigest(),
            "stream_b64": base64.b64encode(blob).decode("ascii"),
        }
        self._directory.mkdir(parents=True, exist_ok=True)
        atomic_write_text(self.path, json.dumps(payload, sort_keys=True))
        self._last_position = position
        self._last_time = self._clock()
        self.saves += 1
        if timed:
            instruments.checkpoint_save_seconds().labels().observe(
                time.perf_counter_ns() - started
            )

    def load(self) -> CheckpointState:
        """Read and validate the checkpoint; fail closed on any damage."""
        timed = global_registry().enabled
        started = time.perf_counter_ns() if timed else 0
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise CheckpointError(
                f"no checkpoint found at {str(self.path)!r}; run without "
                f"resume=True to start a fresh pass"
            ) from None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"checkpoint {str(self.path)!r} is not valid JSON: {exc}"
            ) from exc
        version = payload.get("schema_version")
        if version != CHECKPOINT_SCHEMA_VERSION:
            raise CheckpointError(
                f"checkpoint {str(self.path)!r} has schema_version "
                f"{version!r}; this build reads "
                f"{CHECKPOINT_SCHEMA_VERSION}"
            )
        try:
            kernel = payload["kernel"]
            position = payload["position"]
            digest = payload["trace_digest"]
            blob = base64.b64decode(payload["stream_b64"])
            expected_sha = payload["stream_sha256"]
        except (KeyError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint {str(self.path)!r} is missing or has "
                f"malformed fields: {exc!r}"
            ) from None
        if not isinstance(position, int) or position < 1:
            raise CheckpointError(
                f"checkpoint position must be a positive int, got "
                f"{position!r}"
            )
        if hashlib.sha256(blob).hexdigest() != expected_sha:
            raise CheckpointError(
                f"checkpoint {str(self.path)!r} stream snapshot does not "
                f"match its recorded SHA-256; the file is corrupt"
            )
        stream = KernelStream.from_snapshot(blob)
        self._last_position = position
        self._last_time = self._clock()
        if timed:
            instruments.checkpoint_load_seconds().labels().observe(
                time.perf_counter_ns() - started
            )
        return CheckpointState(
            kernel=kernel,
            position=position,
            trace_digest=digest,
            stream=stream,
        )

    def clear(self) -> None:
        """Remove the checkpoint (called after a pass completes)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def __repr__(self) -> str:
        return (
            f"Checkpointer(directory={str(self._directory)!r}, "
            f"saves={self.saves})"
        )


def resolve_checkpointer(
    checkpoint: Union["Checkpointer", str, Path, None],
) -> Optional["Checkpointer"]:
    """Coerce a checkpoint spec (directory path or instance) to an
    instance; ``None`` passes through (checkpointing disabled)."""
    if checkpoint is None or isinstance(checkpoint, Checkpointer):
        return checkpoint
    return Checkpointer(checkpoint)
