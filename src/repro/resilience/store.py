"""A catalog store that survives transient faults and corruption.

:class:`ResilientCatalogStore` hardens the plain
:class:`~repro.catalog.store.CatalogStore` for serving paths where the
estimator is advisory infrastructure — the optimizer keeps compiling even
when statistics I/O misbehaves:

* **transient faults** (any :class:`OSError` from the read) are retried
  under a bounded :class:`~repro.resilience.retry.RetryPolicy` with
  deterministic jittered backoff;
* **persistent corruption** (the file reads but does not parse) is
  *quarantined*: the damaged file is atomically renamed to
  ``<name>.quarantined`` so the next statistics pass writes a fresh one
  and repeated reads stop re-parsing garbage;
* after either failure class — and after quarantine leaves no file at
  all — the store keeps serving the **last known good** snapshot,
  counting every such stale serve; it raises only when it has never
  successfully parsed a catalog, because then there is truly nothing to
  answer with.

Every recovery action is counted (:meth:`metrics`), so a deployment can
tell "healthy" from "limping along on a stale snapshot" — the truthful-
metrics requirement the chaos suite pins.
"""

from __future__ import annotations

import random
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Union

from repro.catalog.catalog import SystemCatalog
from repro.catalog.store import (
    DEFAULT_SNAPSHOT_CACHE,
    CatalogIO,
    CatalogStore,
)
from repro.errors import CatalogError
from repro.obs import instruments
from repro.obs.metrics import MetricsRegistry, global_registry
from repro.resilience.retry import RetryPolicy, call_with_retry

#: Appended to the catalog file name when a corrupt file is set aside.
QUARANTINE_SUFFIX = ".quarantined"


def _bind_catalog_counters(registry: MetricsRegistry) -> Dict[str, object]:
    """Resolve the four catalog counter children on ``registry`` once."""
    return {
        "reads": instruments.catalog_reads(registry).labels(),
        "retries": instruments.catalog_retries(registry).labels(),
        "quarantines": instruments.catalog_quarantines(
            registry
        ).labels(),
        "stale_serves": instruments.catalog_stale_serves(
            registry
        ).labels(),
    }


class ResilientCatalogStore(CatalogStore):
    """A :class:`CatalogStore` with retry, quarantine, and stale serving.

    Drop-in for the plain store (``isinstance`` checks and the engine's
    generation-based invalidation work unchanged); ``sleep`` and the
    retry RNG seed are injectable so tests replay exact schedules
    without wall-clock delay.
    """

    def __init__(
        self,
        path: Union[str, Path],
        cache_size: int = DEFAULT_SNAPSHOT_CACHE,
        io: Optional[CatalogIO] = None,
        retry: Optional[RetryPolicy] = None,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
        quarantine: bool = True,
        registry: Optional[MetricsRegistry] = None,
        history: int = 0,
    ) -> None:
        super().__init__(
            path, cache_size=cache_size, io=io, history=history
        )
        self._retry = retry or RetryPolicy()
        self._retry_rng = random.Random(seed)
        self._sleep = sleep
        self._quarantine_enabled = quarantine
        self._last_good: Optional[SystemCatalog] = None
        # Recovery counters live on a metrics registry: the store's own
        # always-enabled one by default (so ``metrics()`` stays truthful
        # with no setup), or a caller-provided registry.  Increments are
        # mirrored onto the process-global registry so exports carry
        # them; the mirror is no-op-cheap while that registry is
        # disabled.
        self._obs_registry = (
            registry if registry is not None else MetricsRegistry()
        )
        self._counters = _bind_catalog_counters(self._obs_registry)
        shared = global_registry()
        self._mirror = (
            _bind_catalog_counters(shared)
            if shared is not self._obs_registry
            else None
        )

    def _count(self, key: str, amount: int = 1) -> None:
        self._counters[key].inc(amount)
        if self._mirror is not None:
            self._mirror[key].inc(amount)

    @property
    def quarantine_path(self) -> Path:
        """Where a corrupt catalog file is moved."""
        return self._path.with_name(self._path.name + QUARANTINE_SUFFIX)

    def catalog(self) -> SystemCatalog:
        """The current snapshot, surviving faults where possible.

        Raises :class:`~repro.errors.CatalogError` only when recovery is
        impossible: the file is unreadable or unparseable *and* no
        previous read ever succeeded.
        """
        self._count("reads")
        try:
            (stamp, data), retries = call_with_retry(
                self._read,
                self._retry,
                retry_on=(OSError,),
                sleep=self._sleep,
                rng=self._retry_rng,
            )
            if retries:
                self._count("retries", retries)
        except OSError as exc:
            return self._serve_stale(
                f"transient read faults exhausted the retry budget "
                f"({self._retry.attempts} attempts): {exc}",
                exc,
            )
        except CatalogError as exc:
            # _read maps a missing file to CatalogError; after a
            # quarantine this is the steady state until the next
            # statistics pass rewrites the file.
            return self._serve_stale(str(exc), exc)
        try:
            snapshot = self._parse_and_cache(stamp, data)
        except CatalogError as exc:
            self._quarantine()
            return self._serve_stale(
                f"catalog file failed to parse and was quarantined: "
                f"{exc}",
                exc,
            )
        self._last_good = snapshot
        return snapshot

    def _quarantine(self) -> None:
        """Atomically set the (corrupt) catalog file aside."""
        if not self._quarantine_enabled:
            return
        try:
            self._io.replace(self._path, self.quarantine_path)
        except OSError:
            return
        self._count("quarantines")

    def _serve_stale(
        self, reason: str, cause: Exception
    ) -> SystemCatalog:
        if self._last_good is not None:
            self._count("stale_serves")
            return self._last_good
        raise CatalogError(
            f"catalog {str(self._path)!r} is unavailable and no "
            f"last-known-good snapshot exists: {reason}"
        ) from cause

    def metrics(self) -> Dict[str, object]:
        """Recovery counters (all truthful, all monotone).

        A view over the store's metrics registry, shaped exactly like
        the pre-registry dict (pinned by the equality tests).
        """
        return {
            "reads": self._counters["reads"].value,
            "retries": self._counters["retries"].value,
            "quarantines": self._counters["quarantines"].value,
            "stale_serves": self._counters["stale_serves"].value,
            "has_last_good": self._last_good is not None,
        }

    def __repr__(self) -> str:
        return (
            f"ResilientCatalogStore(path={str(self._path)!r}, "
            f"generation={self._generation}, "
            f"stale_serves={self._counters['stale_serves'].value})"
        )
