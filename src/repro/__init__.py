"""EPFIS: Estimating Page Fetches for Index Scans with Finite LRU Buffers.

A faithful, laptop-scale reproduction of Swami & Schiefer's EPFIS system
(The VLDB Journal 4(4), 1995; submitted 1994), including:

* a page-structured storage engine with real B-tree indexes
  (:mod:`repro.storage`),
* exact LRU buffer simulation and single-pass Mattson stack analysis
  (:mod:`repro.buffer`),
* the paper's synthetic data generator and a statistics-calibrated
  simulation of the Great-West Life customer database
  (:mod:`repro.datagen`),
* Algorithm EPFIS (LRU-Fit + Est-IO) and the ML / DC / SD / OT baselines
  (:mod:`repro.estimators`),
* a catalog, a cost-based access-path selector, and the paper's full
  experimental harness (:mod:`repro.catalog`, :mod:`repro.optimizer`,
  :mod:`repro.eval`),
* a micro-batching, multi-tenant serving tier with a deterministic
  load generator (:mod:`repro.serving`).

Quickstart::

    from repro import (
        SyntheticSpec, build_synthetic_dataset, EPFISEstimator,
        ScanSelectivity,
    )

    dataset = build_synthetic_dataset(SyntheticSpec(
        records=20_000, distinct_values=200, records_per_page=40,
        theta=0.86, window=0.2, seed=7,
    ))
    epfis = EPFISEstimator.from_index(dataset.index)
    print(epfis.estimate(ScanSelectivity(0.05), buffer_pages=100))
"""

from repro.buffer import (
    ClockBufferPool,
    FIFOBufferPool,
    FenwickTree,
    FetchCurve,
    LRUBufferPool,
    StackDistanceAnalyzer,
    simulate_fetches,
)
from repro.catalog import CatalogStore, IndexStatistics, SystemCatalog
from repro.datagen import (
    Dataset,
    GWLDatabase,
    SyntheticSpec,
    WindowPlacer,
    append_records,
    build_gwl_database,
    build_synthetic_dataset,
    delete_records,
    zipf_counts,
)
from repro.errors import (
    CheckpointError,
    FaultInjectionError,
    ReproError,
    ResilienceError,
    ServingError,
)
from repro.engine import EstimationEngine
from repro.resilience import (
    BreakerPolicy,
    Checkpointer,
    CheckpointPolicy,
    CircuitBreaker,
    FaultInjector,
    FaultRule,
    ResilientCatalogStore,
    RetryPolicy,
)
from repro.estimators import (
    CardenasEstimator,
    DCEstimator,
    EPFISEstimator,
    EstIO,
    LRUFit,
    LRUFitConfig,
    MackertLohmanEstimator,
    OTEstimator,
    PageFetchEstimator,
    PerfectlyClusteredEstimator,
    PerfectlyUnclusteredEstimator,
    SDEstimator,
    SmoothEPFISEstimator,
    WatersEstimator,
    YaoEstimator,
    available_estimators,
    cardenas,
    get_estimator,
    register_estimator,
    resolve_estimator,
    waters,
    yao,
)
from repro.eval import (
    BufferGrid,
    ExperimentSpec,
    evaluation_buffer_grid,
    run_error_behavior,
    run_experiment_spec,
)
from repro.executor import QueryExecutor, plan_from_choice
from repro.fit import PiecewiseLinear, fit_piecewise_linear
from repro.obs import (
    MetricsRegistry,
    Tracer,
    global_registry,
    observability_session,
)
from repro.optimizer import choose_access_plan
from repro.serving import (
    EstimateRequest,
    EstimateResponse,
    EstimationServer,
    ServingConfig,
    ServingTCPServer,
    TenantCatalogs,
    WorkloadSpec,
)
from repro.storage import (
    BTreeIndex,
    CompositeIndex,
    HeapFile,
    Index,
    MinorColumnPredicate,
    Page,
    Table,
    major_range,
)
from repro.trace import ReferenceTrace, clustering_factor, summarize_locality
from repro.types import RID, ScanSelectivity, TableShape
from repro.workload import (
    HashSamplePredicate,
    KeyRange,
    ScanKind,
    ScanSpec,
    generate_scan_mix,
    simulate_contention,
)

__version__ = "1.0.0"

__all__ = [
    "BTreeIndex",
    "BreakerPolicy",
    "CardenasEstimator",
    "CompositeIndex",
    "BufferGrid",
    "CatalogStore",
    "CheckpointError",
    "CheckpointPolicy",
    "Checkpointer",
    "CircuitBreaker",
    "ClockBufferPool",
    "DCEstimator",
    "Dataset",
    "EPFISEstimator",
    "EstIO",
    "EstimateRequest",
    "EstimateResponse",
    "EstimationEngine",
    "EstimationServer",
    "ExperimentSpec",
    "FIFOBufferPool",
    "FaultInjectionError",
    "FaultInjector",
    "FaultRule",
    "FenwickTree",
    "FetchCurve",
    "GWLDatabase",
    "HashSamplePredicate",
    "HeapFile",
    "Index",
    "IndexStatistics",
    "KeyRange",
    "LRUBufferPool",
    "LRUFit",
    "LRUFitConfig",
    "MetricsRegistry",
    "MinorColumnPredicate",
    "MackertLohmanEstimator",
    "OTEstimator",
    "Page",
    "PageFetchEstimator",
    "PerfectlyClusteredEstimator",
    "PerfectlyUnclusteredEstimator",
    "PiecewiseLinear",
    "QueryExecutor",
    "RID",
    "ReferenceTrace",
    "ReproError",
    "ResilienceError",
    "ResilientCatalogStore",
    "RetryPolicy",
    "SDEstimator",
    "ScanKind",
    "ScanSelectivity",
    "ScanSpec",
    "ServingConfig",
    "ServingError",
    "ServingTCPServer",
    "StackDistanceAnalyzer",
    "SmoothEPFISEstimator",
    "SyntheticSpec",
    "SystemCatalog",
    "Table",
    "TableShape",
    "TenantCatalogs",
    "Tracer",
    "WindowPlacer",
    "WorkloadSpec",
    "append_records",
    "available_estimators",
    "build_gwl_database",
    "build_synthetic_dataset",
    "cardenas",
    "get_estimator",
    "choose_access_plan",
    "clustering_factor",
    "delete_records",
    "evaluation_buffer_grid",
    "fit_piecewise_linear",
    "generate_scan_mix",
    "global_registry",
    "major_range",
    "observability_session",
    "plan_from_choice",
    "register_estimator",
    "resolve_estimator",
    "run_error_behavior",
    "run_experiment_spec",
    "WatersEstimator",
    "YaoEstimator",
    "simulate_contention",
    "simulate_fetches",
    "summarize_locality",
    "waters",
    "yao",
    "zipf_counts",
]
