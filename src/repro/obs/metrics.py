"""Thread-safe metrics primitives: registry, counters, gauges, histograms.

One :class:`MetricsRegistry` holds *families* — a named metric plus its
label names — and each family holds one instrument per distinct label
value tuple.  Three instrument kinds cover everything this codebase
reports:

* :class:`Counter` — monotone totals (references consumed, catalog
  retries, degraded serves);
* :class:`Gauge` — last-written values (breaker state, kernel
  references/sec);
* :class:`Histogram` — distributions over fixed buckets.  The default
  buckets are log-spaced *nanosecond* latency buckets
  (:data:`DURATION_BUCKETS_NS`) with a ``scale`` of 1e-9, so durations
  are **accumulated as exact integers** and only converted to seconds at
  snapshot time — float-sum resolution loss (a nanosecond vanishing into
  a large running total) cannot happen inside the registry.

Instruments are cheap to hold and cheap to skip: every mutation first
checks the owning registry's ``enabled`` flag, so a disabled registry
reduces instrumentation to one attribute load and a branch.  The
process-wide registry returned by :func:`global_registry` is **disabled
by default** — deep instrumentation sites (kernel streams, checkpoint
I/O) stay no-op-cheap until an exporter is attached (the CLI's
``--metrics-out`` flag, or :func:`repro.obs.session.observability_session`).

Snapshots (:meth:`MetricsRegistry.snapshot`) are canonical — families
sorted by name, samples sorted by label values — so the exporters in
:mod:`repro.obs.export` produce byte-stable output from equal state.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import ObservabilityError

#: Instrument kinds, as reported in snapshots and exports.
COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: Fixed log-spaced latency buckets in integer nanoseconds: 1 us, 4 us,
#: 16 us, ... ~268 s.  Powers of four keep the bucket count small (14)
#: while spanning every latency this codebase can plausibly observe.
DURATION_BUCKETS_NS: Tuple[int, ...] = tuple(
    1_000 * 4 ** i for i in range(14)
)

#: Snapshot scale converting nanosecond accumulations to seconds.
NS_TO_SECONDS = 1e-9

Number = Union[int, float]


def _valid_metric_name(name: str) -> bool:
    if not name or not isinstance(name, str):
        return False
    head = name[0]
    if not (head.isascii() and (head.isalpha() or head == "_")):
        return False
    return all(
        c.isascii() and (c.isalnum() or c == "_") for c in name
    )


class _Instrument:
    """Shared plumbing: every instrument belongs to one family."""

    __slots__ = ("_family",)

    def __init__(self, family: "MetricFamily") -> None:
        self._family = family


class Counter(_Instrument):
    """A monotonically increasing total."""

    __slots__ = ("_value",)

    def __init__(self, family: "MetricFamily") -> None:
        super().__init__(family)
        self._value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (>= 0) to the total; no-op when disabled."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self._family.name!r} cannot decrease "
                f"(inc({amount}))"
            )
        family = self._family
        if not family._registry._enabled:
            return
        with family._lock:
            self._value += amount

    @property
    def value(self) -> Number:
        """The raw (unscaled) accumulated total."""
        return self._value


class Gauge(_Instrument):
    """A value that can go up and down; reports the last write."""

    __slots__ = ("_value",)

    def __init__(self, family: "MetricFamily") -> None:
        super().__init__(family)
        self._value: Number = 0

    def set(self, value: Number) -> None:
        """Overwrite the gauge; no-op when the registry is disabled."""
        family = self._family
        if not family._registry._enabled:
            return
        with family._lock:
            self._value = value

    @property
    def value(self) -> Number:
        """The raw (unscaled) current value."""
        return self._value


class Histogram(_Instrument):
    """A fixed-bucket distribution with an exact running sum.

    Observations land in the first bucket whose upper bound is >= the
    value (Prometheus ``le`` semantics); values above the last bound go
    to the implicit ``+Inf`` bucket.  The sum is accumulated with plain
    ``+`` — integer observations (e.g. nanoseconds) therefore stay
    exact at any magnitude.
    """

    __slots__ = ("_bucket_counts", "_sum", "_count")

    def __init__(self, family: "MetricFamily") -> None:
        super().__init__(family)
        self._bucket_counts = [0] * (len(family.buckets) + 1)
        self._sum: Number = 0
        self._count = 0

    def observe(self, value: Number) -> None:
        """Record one observation; no-op when the registry is disabled."""
        family = self._family
        if not family._registry._enabled:
            return
        index = bisect.bisect_left(family.buckets, value)
        with family._lock:
            self._bucket_counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Number of observations recorded."""
        return self._count

    @property
    def sum(self) -> Number:
        """The raw (unscaled) exact sum of every observation."""
        return self._sum

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts; last entry is ``+Inf``."""
        with self._family._lock:
            return list(self._bucket_counts)


_KIND_FACTORY = {COUNTER: Counter, GAUGE: Gauge, HISTOGRAM: Histogram}


class MetricFamily:
    """One named metric: shared metadata plus per-label-set children."""

    def __init__(
        self,
        registry: "MetricsRegistry",
        kind: str,
        name: str,
        help_text: str,
        labelnames: Tuple[str, ...],
        buckets: Optional[Tuple[Number, ...]] = None,
        scale: float = 1.0,
    ) -> None:
        if not _valid_metric_name(name):
            raise ObservabilityError(
                f"invalid metric name {name!r} (want "
                f"[a-zA-Z_][a-zA-Z0-9_]*)"
            )
        for label in labelnames:
            if not _valid_metric_name(label):
                raise ObservabilityError(
                    f"invalid label name {label!r} on metric {name!r}"
                )
        if kind == HISTOGRAM:
            buckets = tuple(buckets or DURATION_BUCKETS_NS)
            if list(buckets) != sorted(buckets) or len(set(buckets)) != len(
                buckets
            ):
                raise ObservabilityError(
                    f"histogram {name!r} buckets must be strictly "
                    f"increasing, got {buckets}"
                )
            if not buckets:
                raise ObservabilityError(
                    f"histogram {name!r} needs at least one bucket"
                )
        else:
            buckets = None
        self._registry = registry
        self._lock = registry._lock
        self.kind = kind
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self.buckets: Tuple[Number, ...] = buckets or ()
        self.scale = scale
        self._children: Dict[
            Tuple[str, ...], Union[Counter, Gauge, Histogram]
        ] = {}

    def _signature(self) -> tuple:
        return (
            self.kind, self.labelnames, self.buckets, self.scale,
        )

    def labels(self, **labelvalues: object):
        """The child instrument for one label value assignment.

        Children are created on first use and kept for the registry's
        lifetime (snapshot continuity); label values are stringified.
        """
        if set(labelvalues) != set(self.labelnames):
            raise ObservabilityError(
                f"metric {self.name!r} takes labels "
                f"{list(self.labelnames)}, got {sorted(labelvalues)}"
            )
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = _KIND_FACTORY[self.kind](self)
                    self._children[key] = child
        return child

    def children(self) -> Dict[Tuple[str, ...], object]:
        """A copy of the label-tuple -> instrument mapping."""
        with self._lock:
            return dict(self._children)

    def clear(self) -> None:
        """Drop every child (label sets disappear from snapshots)."""
        with self._lock:
            self._children.clear()

    def _scaled(self, value: Number) -> Number:
        return value if self.scale == 1.0 else value * self.scale

    def _sample(self, key: Tuple[str, ...], child) -> dict:
        labels = dict(zip(self.labelnames, key))
        if self.kind == HISTOGRAM:
            cumulative = 0
            rendered = []
            for bound, count in zip(
                self.buckets, child._bucket_counts
            ):
                cumulative += count
                rendered.append([self._scaled(bound), cumulative])
            rendered.append([None, child._count])  # +Inf
            return {
                "labels": labels,
                "buckets": rendered,
                "sum": self._scaled(child._sum),
                "count": child._count,
            }
        return {"labels": labels, "value": self._scaled(child._value)}

    def snapshot(self) -> dict:
        """Canonical snapshot of this family (samples label-sorted)."""
        with self._lock:
            samples = [
                self._sample(key, child)
                for key, child in sorted(self._children.items())
            ]
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "samples": samples,
        }


class MetricsRegistry:
    """A collection of metric families with one shared lock.

    ``enabled`` gates every mutation: instruments created from a
    disabled registry exist (and can be snapshotted — all zeros) but
    record nothing.  :func:`global_registry` returns the process-wide
    instance used by deep instrumentation sites, disabled by default.
    """

    def __init__(self, enabled: bool = True) -> None:
        self._lock = threading.RLock()
        self._families: Dict[str, MetricFamily] = {}
        self._enabled = enabled

    # ------------------------------------------------------------------
    # Enablement
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether instruments bound to this registry record anything."""
        return self._enabled

    def enable(self) -> None:
        """Start recording."""
        self._enabled = True

    def disable(self) -> None:
        """Stop recording (existing values are kept; see :meth:`reset`)."""
        self._enabled = False

    # ------------------------------------------------------------------
    # Family declaration (idempotent)
    # ------------------------------------------------------------------
    def _family(
        self,
        kind: str,
        name: str,
        help_text: str,
        labelnames: Iterable[str],
        buckets: Optional[Tuple[Number, ...]] = None,
        scale: float = 1.0,
    ) -> MetricFamily:
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                candidate = MetricFamily(
                    self, kind, name, help_text, labelnames,
                    buckets=buckets, scale=scale,
                )
                if existing._signature() != candidate._signature():
                    raise ObservabilityError(
                        f"metric {name!r} re-declared with a different "
                        f"type/labels/buckets/scale"
                    )
                return existing
            family = MetricFamily(
                self, kind, name, help_text, labelnames,
                buckets=buckets, scale=scale,
            )
            self._families[name] = family
            return family

    def counter(
        self,
        name: str,
        help_text: str = "",
        labelnames: Iterable[str] = (),
        scale: float = 1.0,
    ) -> MetricFamily:
        """Get or declare a counter family."""
        return self._family(
            COUNTER, name, help_text, labelnames, scale=scale
        )

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labelnames: Iterable[str] = (),
        scale: float = 1.0,
    ) -> MetricFamily:
        """Get or declare a gauge family."""
        return self._family(
            GAUGE, name, help_text, labelnames, scale=scale
        )

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Iterable[str] = (),
        buckets: Optional[Tuple[Number, ...]] = None,
        scale: float = NS_TO_SECONDS,
    ) -> MetricFamily:
        """Get or declare a histogram family.

        Defaults to the fixed log-spaced nanosecond latency buckets with
        a seconds conversion applied only at snapshot time.
        """
        return self._family(
            HISTOGRAM, name, help_text, labelnames,
            buckets=buckets or DURATION_BUCKETS_NS, scale=scale,
        )

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def families(self) -> List[MetricFamily]:
        """Every declared family, sorted by name."""
        with self._lock:
            return [
                self._families[name] for name in sorted(self._families)
            ]

    def get(self, name: str) -> Optional[MetricFamily]:
        """The family named ``name``, or ``None``."""
        return self._families.get(name)

    def snapshot(self) -> dict:
        """One canonical snapshot of every family (see the exporters)."""
        return {"families": [f.snapshot() for f in self.families()]}

    def reset(self, prefix: Optional[str] = None) -> None:
        """Zero every value (keep families and label sets).

        ``prefix`` restricts the reset to families whose name starts
        with it — e.g. one subsystem's metrics on a shared registry.
        """
        with self._lock:
            for family in self._families.values():
                if prefix is not None and not family.name.startswith(
                    prefix
                ):
                    continue
                for child in family._children.values():
                    if isinstance(child, Histogram):
                        child._bucket_counts = [0] * (
                            len(family.buckets) + 1
                        )
                        child._sum = 0
                        child._count = 0
                    else:
                        child._value = 0

    def clear(self, prefix: Optional[str] = None) -> None:
        """Drop every child (label sets vanish; families stay declared).

        ``prefix`` restricts the clear like :meth:`reset`.
        """
        with self._lock:
            for family in self._families.values():
                if prefix is not None and not family.name.startswith(
                    prefix
                ):
                    continue
                family._children.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(enabled={self._enabled}, "
            f"families={len(self._families)})"
        )


#: The process-wide registry deep instrumentation records into.
#: Disabled by default: attaching an exporter (CLI ``--metrics-out``)
#: enables it for the duration of the run.
_GLOBAL = MetricsRegistry(enabled=False)


def global_registry() -> MetricsRegistry:
    """The process-wide (default-disabled) registry."""
    return _GLOBAL
