"""A validator for the Prometheus text exposition format.

Checks the structural rules the exporter must uphold — enough to catch
a malformed export in CI without depending on a Prometheus client:

* every sample line parses as ``name{labels} value``;
* a ``# TYPE`` declaration precedes a family's samples and names a
  known type, and no family is declared twice;
* histogram series are complete and consistent per label set:
  ``_bucket`` counts are cumulative (monotone non-decreasing by ``le``),
  a ``+Inf`` bucket exists, ``_count`` equals the ``+Inf`` bucket, and
  ``_sum`` is present.

Usable as a module (:func:`check_prometheus_text`) or a script::

    repro experiment ... --metrics-out - | python -m repro.obs.promcheck -
"""

from __future__ import annotations

import re
import sys
from typing import Dict, List, Optional, Tuple

_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)"
    r"(?: (?P<timestamp>-?\d+))?$"
)

_LABEL_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
)


def _parse_labels(raw: Optional[str]) -> Optional[Dict[str, str]]:
    if not raw:
        return {}
    labels: Dict[str, str] = {}
    rest = raw
    while rest:
        match = _LABEL_RE.match(rest)
        if match is None:
            return None
        labels[match.group(1)] = match.group(2)
        rest = rest[match.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            return None
    return labels


def _parse_value(raw: str) -> Optional[float]:
    if raw in ("+Inf", "Inf"):
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    if raw == "NaN":
        return float("nan")
    try:
        return float(raw)
    except ValueError:
        return None


def _base_name(name: str) -> str:
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


class _HistogramSeries:
    """Accumulates one label-set's _bucket/_sum/_count samples."""

    def __init__(self) -> None:
        self.buckets: List[Tuple[float, float]] = []
        self.sum: Optional[float] = None
        self.count: Optional[float] = None


def check_prometheus_text(text: str) -> List[str]:
    """Return a list of problems; an empty list means the text is valid."""
    problems: List[str] = []
    types: Dict[str, str] = {}
    histograms: Dict[str, Dict[tuple, _HistogramSeries]] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2 or parts[1] not in ("HELP", "TYPE"):
                problems.append(
                    f"line {lineno}: unknown comment form: {line!r}"
                )
                continue
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in _TYPES:
                    problems.append(
                        f"line {lineno}: malformed TYPE line: {line!r}"
                    )
                    continue
                name = parts[2]
                if name in types:
                    problems.append(
                        f"line {lineno}: duplicate TYPE for {name!r}"
                    )
                types[name] = parts[3]
            continue

        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(
                f"line {lineno}: unparseable sample line: {line!r}"
            )
            continue
        name = match.group("name")
        labels = _parse_labels(match.group("labels"))
        if labels is None:
            problems.append(
                f"line {lineno}: unparseable labels: {line!r}"
            )
            continue
        value = _parse_value(match.group("value"))
        if value is None:
            problems.append(
                f"line {lineno}: unparseable value "
                f"{match.group('value')!r}"
            )
            continue

        base = _base_name(name)
        family = base if base in types else name
        if family not in types:
            problems.append(
                f"line {lineno}: sample {name!r} has no preceding "
                f"# TYPE declaration"
            )
            continue

        if types[family] == "histogram" and base in types:
            key = tuple(
                sorted(
                    (k, v) for k, v in labels.items() if k != "le"
                )
            )
            series = histograms.setdefault(base, {}).setdefault(
                key, _HistogramSeries()
            )
            if name.endswith("_bucket"):
                if "le" not in labels:
                    problems.append(
                        f"line {lineno}: histogram bucket without "
                        f"an 'le' label"
                    )
                    continue
                bound = _parse_value(labels["le"])
                if bound is None:
                    problems.append(
                        f"line {lineno}: unparseable le="
                        f"{labels['le']!r}"
                    )
                    continue
                series.buckets.append((bound, value))
            elif name.endswith("_sum"):
                series.sum = value
            elif name.endswith("_count"):
                series.count = value

    for name, by_labels in sorted(histograms.items()):
        for key, series in sorted(by_labels.items()):
            where = f"histogram {name!r} labels {dict(key)}"
            if not series.buckets:
                problems.append(f"{where}: no _bucket samples")
                continue
            bounds = [b for b, _ in series.buckets]
            counts = [c for _, c in series.buckets]
            if bounds != sorted(bounds):
                problems.append(
                    f"{where}: bucket bounds not sorted: {bounds}"
                )
            if any(
                later < earlier
                for earlier, later in zip(counts, counts[1:])
            ):
                problems.append(
                    f"{where}: bucket counts not cumulative: {counts}"
                )
            if bounds[-1] != float("inf"):
                problems.append(f"{where}: missing +Inf bucket")
            elif series.count is None:
                problems.append(f"{where}: missing _count sample")
            elif series.count != counts[-1]:
                problems.append(
                    f"{where}: _count {series.count} != +Inf bucket "
                    f"{counts[-1]}"
                )
            if series.sum is None:
                problems.append(f"{where}: missing _sum sample")

    return problems


def main(argv: Optional[List[str]] = None) -> int:
    """Validate a metrics file (or stdin for ``-``); 0 when valid."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print(
            "usage: python -m repro.obs.promcheck <metrics-file|->",
            file=sys.stderr,
        )
        return 2
    if argv[0] == "-":
        text = sys.stdin.read()
    else:
        with open(argv[0], "r", encoding="utf-8") as handle:
            text = handle.read()
    problems = check_prometheus_text(text)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(
            f"promcheck: {len(problems)} problem(s)", file=sys.stderr
        )
        return 1
    print("promcheck: ok")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
