"""Observability: metrics registry, structured tracing, exporters.

The subsystem has four layers:

* :mod:`repro.obs.metrics` — thread-safe :class:`MetricsRegistry`
  holding counter/gauge/histogram families; the process-global
  registry (:func:`global_registry`) is disabled by default so
  instrumentation costs one branch until an exporter is attached.
* :mod:`repro.obs.tracing` — :class:`Tracer`/:class:`Span` context
  managers with parent links, an injectable clock, and a JSONL sink;
  library code records through the module-level :func:`span` helper.
* :mod:`repro.obs.export` — Prometheus text and canonical-JSONL
  renderers over registry snapshots (validated by
  :mod:`repro.obs.promcheck`).
* :mod:`repro.obs.session` — :func:`observability_session`, the CLI's
  enable → run → export → restore wrapper.
"""

from repro.obs.export import to_jsonl, to_prometheus
from repro.obs.instruments import (
    register_standard_families,
    standard_family_names,
)
from repro.obs.metrics import (
    COUNTER,
    DURATION_BUCKETS_NS,
    GAUGE,
    HISTOGRAM,
    NS_TO_SECONDS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    global_registry,
)
# repro.obs.promcheck is deliberately NOT imported here: it doubles as
# ``python -m repro.obs.promcheck`` and importing it from its parent
# package would trigger runpy's found-in-sys.modules warning.
from repro.obs.session import observability_session
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    active_tracer,
    set_active_tracer,
    span,
)

__all__ = [
    "COUNTER",
    "Counter",
    "DURATION_BUCKETS_NS",
    "GAUGE",
    "Gauge",
    "HISTOGRAM",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NS_TO_SECONDS",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "active_tracer",
    "global_registry",
    "observability_session",
    "register_standard_families",
    "set_active_tracer",
    "span",
    "standard_family_names",
    "to_jsonl",
    "to_prometheus",
]
