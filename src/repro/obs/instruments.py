"""The catalog of standard metric families this codebase exports.

Every instrumentation site goes through one of these accessors, so a
family is always declared with the same type, labels, buckets, and
scale no matter which subsystem touches it first — including when the
engine's private registry and the process-global registry both carry
the same family name.

Durations are declared in **integer nanoseconds** with a snapshot-time
scale of 1e-9: exporters show seconds (the Prometheus convention), the
registry never loses sub-microsecond resolution to float summation.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.obs.metrics import (
    NS_TO_SECONDS,
    MetricFamily,
    MetricsRegistry,
    global_registry,
)

# ----------------------------------------------------------------------
# Kernel profiling (global registry; recorded by KernelStream)
# ----------------------------------------------------------------------
KERNEL_REFERENCES_TOTAL = "repro_kernel_references_total"
KERNEL_FEED_SECONDS_TOTAL = "repro_kernel_feed_seconds_total"
KERNEL_REFERENCES_PER_SECOND = "repro_kernel_references_per_second"

# ----------------------------------------------------------------------
# Sharded passes (global registry; recorded by the shard orchestrator)
# ----------------------------------------------------------------------
SHARD_FEED_SECONDS_TOTAL = "repro_shard_feed_seconds_total"
SHARD_MERGE_SECONDS_TOTAL = "repro_shard_merge_seconds_total"
SHARD_SEAM_REUSES_TOTAL = "repro_shard_seam_reuses_total"

# ----------------------------------------------------------------------
# Checkpoint profiling (global registry; recorded by Checkpointer)
# ----------------------------------------------------------------------
CHECKPOINT_SAVE_SECONDS = "repro_checkpoint_save_seconds"
CHECKPOINT_LOAD_SECONDS = "repro_checkpoint_load_seconds"

# ----------------------------------------------------------------------
# Engine serving (per-engine registry; also recorded by the experiment
# runner's per-estimator Est-IO stage on the global registry)
# ----------------------------------------------------------------------
ENGINE_CALL_LATENCY_SECONDS = "repro_engine_call_latency_seconds"
ENGINE_ESTIMATES_TOTAL = "repro_engine_estimates_total"
ENGINE_ERRORS_TOTAL = "repro_engine_errors_total"
ENGINE_DEGRADED_SERVES_TOTAL = "repro_engine_degraded_serves_total"

# ----------------------------------------------------------------------
# Resilient catalog store
# ----------------------------------------------------------------------
CATALOG_READS_TOTAL = "repro_catalog_reads_total"
CATALOG_RETRIES_TOTAL = "repro_catalog_retries_total"
CATALOG_QUARANTINES_TOTAL = "repro_catalog_quarantines_total"
CATALOG_STALE_SERVES_TOTAL = "repro_catalog_stale_serves_total"

# ----------------------------------------------------------------------
# Serving tier (per-server registry; see repro.serving)
# ----------------------------------------------------------------------
SERVING_REQUESTS_TOTAL = "repro_serving_requests_total"
SERVING_REJECTED_TOTAL = "repro_serving_rejected_total"
SERVING_BATCHES_TOTAL = "repro_serving_batches_total"
SERVING_BATCH_SIZE = "repro_serving_batch_size"
SERVING_QUEUE_DEPTH = "repro_serving_queue_depth"
SERVING_LATENCY_SECONDS = "repro_serving_latency_seconds"
SERVING_TENANTS_ACTIVE = "repro_serving_tenants_active"
SERVING_TENANT_EVICTIONS_TOTAL = "repro_serving_tenant_evictions_total"

#: Micro-batch size buckets (requests coalesced per engine call).
BATCH_SIZE_BUCKETS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)

# ----------------------------------------------------------------------
# Online catalog refresh (per-controller registry; see repro.refresh)
# ----------------------------------------------------------------------
REFRESH_CYCLES_TOTAL = "repro_refresh_cycles_total"
REFRESH_DRIFT_DETECTED_TOTAL = "repro_refresh_drift_detected_total"
REFRESH_PUBLISHES_TOTAL = "repro_refresh_publishes_total"
REFRESH_ROLLBACKS_TOTAL = "repro_refresh_rollbacks_total"
REFRESH_QUARANTINED_CANDIDATES_TOTAL = (
    "repro_refresh_quarantined_candidates_total"
)
REFRESH_CYCLE_SECONDS = "repro_refresh_cycle_seconds"

# ----------------------------------------------------------------------
# Fleet buffer advisor (see repro.advisor)
# ----------------------------------------------------------------------
ADVISOR_RUNS_TOTAL = "repro_advisor_runs_total"
ADVISOR_CURVE_POINTS_TOTAL = "repro_advisor_curve_points_total"
ADVISOR_ALLOCATION_SECONDS = "repro_advisor_allocation_seconds"
ADVISOR_ORACLE_CHECKS_TOTAL = "repro_advisor_oracle_checks_total"
ADVISOR_GRID_REQUESTS_TOTAL = "repro_advisor_grid_requests_total"

# ----------------------------------------------------------------------
# Circuit breakers
# ----------------------------------------------------------------------
BREAKER_STATE = "repro_breaker_state"
BREAKER_OPENS_TOTAL = "repro_breaker_opens_total"

#: Gauge encoding of :mod:`repro.resilience.breaker` states.
BREAKER_STATE_VALUES = {"closed": 0, "half-open": 1, "open": 2}


def _registry(registry: MetricsRegistry = None) -> MetricsRegistry:
    return registry if registry is not None else global_registry()


def kernel_references(registry=None) -> MetricFamily:
    """Total page references consumed, per kernel."""
    return _registry(registry).counter(
        KERNEL_REFERENCES_TOTAL,
        "Page references consumed by stack-distance kernel streams.",
        ("kernel",),
    )


def kernel_feed_seconds(registry=None) -> MetricFamily:
    """Total wall-clock time inside kernel ``feed``, per kernel."""
    return _registry(registry).counter(
        KERNEL_FEED_SECONDS_TOTAL,
        "Wall-clock seconds spent consuming references, per kernel.",
        ("kernel",),
        scale=NS_TO_SECONDS,
    )


def kernel_references_per_second(registry=None) -> MetricFamily:
    """Throughput of the most recently finished stream, per kernel."""
    return _registry(registry).gauge(
        KERNEL_REFERENCES_PER_SECOND,
        "References/second of the last finished kernel stream.",
        ("kernel",),
    )


def shard_feed_seconds(registry=None) -> MetricFamily:
    """Per-shard feed time of sharded passes, labeled by shard ordinal."""
    return _registry(registry).counter(
        SHARD_FEED_SECONDS_TOTAL,
        "Wall-clock seconds each shard of a sharded pass spent feeding "
        "its kernel stream.",
        ("kernel", "shard"),
        scale=NS_TO_SECONDS,
    )


def shard_merge_seconds(registry=None) -> MetricFamily:
    """Time spent merging shard summaries into one curve."""
    return _registry(registry).counter(
        SHARD_MERGE_SECONDS_TOTAL,
        "Wall-clock seconds spent merging shard summaries.",
        ("kernel",),
        scale=NS_TO_SECONDS,
    )


def shard_seam_reuses(registry=None) -> MetricFamily:
    """Seam corrections: first-local-accesses resolved as reuses."""
    return _registry(registry).counter(
        SHARD_SEAM_REUSES_TOTAL,
        "Shard-boundary first-accesses resolved as reuses of earlier "
        "shards during the merge.",
        ("kernel",),
    )


def checkpoint_save_seconds(registry=None) -> MetricFamily:
    """Latency distribution of checkpoint snapshot saves."""
    return _registry(registry).histogram(
        CHECKPOINT_SAVE_SECONDS,
        "Latency of LRU-Fit checkpoint snapshot saves.",
    )


def checkpoint_load_seconds(registry=None) -> MetricFamily:
    """Latency distribution of checkpoint loads (resume path)."""
    return _registry(registry).histogram(
        CHECKPOINT_LOAD_SECONDS,
        "Latency of LRU-Fit checkpoint loads.",
    )


def engine_call_latency(registry=None) -> MetricFamily:
    """Per-estimator serving latency histogram (count == calls)."""
    return _registry(registry).histogram(
        ENGINE_CALL_LATENCY_SECONDS,
        "Latency of estimator serving calls.",
        ("estimator",),
    )


def engine_estimates(registry=None) -> MetricFamily:
    """Individual estimates produced, per estimator."""
    return _registry(registry).counter(
        ENGINE_ESTIMATES_TOTAL,
        "Individual page-fetch estimates produced.",
        ("estimator",),
    )


def engine_errors(registry=None) -> MetricFamily:
    """Calls that raised, per estimator."""
    return _registry(registry).counter(
        ENGINE_ERRORS_TOTAL,
        "Estimator serving calls that raised.",
        ("estimator",),
    )


def engine_degraded_serves(registry=None) -> MetricFamily:
    """Requests answered by a fallback-chain member, per requested name."""
    return _registry(registry).counter(
        ENGINE_DEGRADED_SERVES_TOTAL,
        "Requests answered by a fallback estimator instead of the "
        "requested one.",
        ("estimator",),
    )


def catalog_reads(registry=None) -> MetricFamily:
    """Catalog snapshot requests against a resilient store."""
    return _registry(registry).counter(
        CATALOG_READS_TOTAL,
        "Catalog snapshot requests served by the resilient store.",
    )


def catalog_retries(registry=None) -> MetricFamily:
    """Transient-fault read retries."""
    return _registry(registry).counter(
        CATALOG_RETRIES_TOTAL,
        "Catalog read retries after transient faults.",
    )


def catalog_quarantines(registry=None) -> MetricFamily:
    """Corrupt catalog files set aside."""
    return _registry(registry).counter(
        CATALOG_QUARANTINES_TOTAL,
        "Corrupt catalog files quarantined.",
    )


def catalog_stale_serves(registry=None) -> MetricFamily:
    """Requests served from the last-known-good snapshot."""
    return _registry(registry).counter(
        CATALOG_STALE_SERVES_TOTAL,
        "Catalog requests answered from the last-known-good snapshot.",
    )


def serving_requests(registry=None) -> MetricFamily:
    """Requests admitted by the serving tier, per tenant."""
    return _registry(registry).counter(
        SERVING_REQUESTS_TOTAL,
        "Estimate requests admitted by the serving tier.",
        ("tenant",),
    )


def serving_rejected(registry=None) -> MetricFamily:
    """Requests turned away before execution, per reason."""
    return _registry(registry).counter(
        SERVING_REJECTED_TOTAL,
        "Estimate requests rejected by admission control "
        "(queue_full, closed, invalid).",
        ("reason",),
    )


def serving_batches(registry=None) -> MetricFamily:
    """Engine calls issued by the micro-batcher."""
    return _registry(registry).counter(
        SERVING_BATCHES_TOTAL,
        "Micro-batched engine calls issued by the serving tier.",
    )


def serving_batch_size(registry=None) -> MetricFamily:
    """Distribution of requests coalesced per engine call."""
    return _registry(registry).histogram(
        SERVING_BATCH_SIZE,
        "Requests coalesced into one batched engine call.",
        buckets=BATCH_SIZE_BUCKETS,
        scale=1.0,
    )


def serving_queue_depth(registry=None) -> MetricFamily:
    """Requests queued but not yet dispatched."""
    return _registry(registry).gauge(
        SERVING_QUEUE_DEPTH,
        "Admitted requests waiting for the micro-batcher.",
    )


def serving_latency(registry=None) -> MetricFamily:
    """End-to-end request latency (submit to completed future)."""
    return _registry(registry).histogram(
        SERVING_LATENCY_SECONDS,
        "End-to-end serving latency per request.",
    )


def serving_tenants_active(registry=None) -> MetricFamily:
    """Tenant engines currently resident in the LRU cache."""
    return _registry(registry).gauge(
        SERVING_TENANTS_ACTIVE,
        "Tenant engines currently resident in the serving cache.",
    )


def serving_tenant_evictions(registry=None) -> MetricFamily:
    """Tenant engines evicted by the bounded cache."""
    return _registry(registry).counter(
        SERVING_TENANT_EVICTIONS_TOTAL,
        "Tenant engines evicted from the bounded serving cache.",
    )


def refresh_cycles(registry=None) -> MetricFamily:
    """Refresh cycles completed, by outcome action."""
    return _registry(registry).counter(
        REFRESH_CYCLES_TOTAL,
        "Catalog refresh cycles completed, by outcome action "
        "(published, skipped-below-threshold, breaker-open, "
        "rolled-back).",
        ("action",),
    )


def refresh_drift_detected(registry=None) -> MetricFamily:
    """Cycles whose candidate drifted beyond the publish threshold."""
    return _registry(registry).counter(
        REFRESH_DRIFT_DETECTED_TOTAL,
        "Refresh cycles whose candidate curve drifted from the served "
        "catalog beyond the publish threshold.",
    )


def refresh_publishes(registry=None) -> MetricFamily:
    """Roll-forwards that passed post-publish validation."""
    return _registry(registry).counter(
        REFRESH_PUBLISHES_TOTAL,
        "Catalog versions rolled forward and validated by the refresh "
        "loop.",
    )


def refresh_rollbacks(registry=None) -> MetricFamily:
    """Publishes undone after failing post-publish validation."""
    return _registry(registry).counter(
        REFRESH_ROLLBACKS_TOTAL,
        "Refresh publishes rolled back to last-known-good after "
        "failing post-publish validation.",
    )


def refresh_quarantined_candidates(registry=None) -> MetricFamily:
    """Candidate records set aside after failing validation."""
    return _registry(registry).counter(
        REFRESH_QUARANTINED_CANDIDATES_TOTAL,
        "Refresh candidate records quarantined after failing "
        "post-publish validation.",
    )


def refresh_cycle_seconds(registry=None) -> MetricFamily:
    """Wall-clock latency distribution of refresh cycles."""
    return _registry(registry).histogram(
        REFRESH_CYCLE_SECONDS,
        "Wall-clock latency of one catalog refresh cycle.",
    )


def advisor_runs(registry=None) -> MetricFamily:
    """Advisory runs completed, by entry path (cli, serving, library)."""
    return _registry(registry).counter(
        ADVISOR_RUNS_TOTAL,
        "Fleet buffer advisories completed, by entry path.",
        ("path",),
    )


def advisor_curve_points(registry=None) -> MetricFamily:
    """Grid points evaluated while building fleet curves."""
    return _registry(registry).counter(
        ADVISOR_CURVE_POINTS_TOTAL,
        "Fetch-curve grid points evaluated for fleet advisories.",
    )


def advisor_allocation_seconds(registry=None) -> MetricFamily:
    """Wall-clock latency of one full budget-sweep allocation."""
    return _registry(registry).histogram(
        ADVISOR_ALLOCATION_SECONDS,
        "Wall-clock latency of one fleet advisory (curves through "
        "pricing).",
    )


def advisor_oracle_checks(registry=None) -> MetricFamily:
    """Greedy-vs-DP differential checks, by result (match, skipped)."""
    return _registry(registry).counter(
        ADVISOR_ORACLE_CHECKS_TOTAL,
        "Greedy-vs-DP oracle verifications of advisor allocations, by "
        "result (match, mismatch, skipped).",
        ("result",),
    )


def advisor_grid_requests(registry=None) -> MetricFamily:
    """Batched grid/advise requests answered by the serving tier."""
    return _registry(registry).counter(
        ADVISOR_GRID_REQUESTS_TOTAL,
        "Batched multi-index grid and advise requests answered by the "
        "serving tier.",
        ("kind",),
    )


def breaker_state(registry=None) -> MetricFamily:
    """Current breaker state (0 closed, 1 half-open, 2 open)."""
    return _registry(registry).gauge(
        BREAKER_STATE,
        "Circuit-breaker state: 0=closed, 1=half-open, 2=open.",
        ("estimator",),
    )


def breaker_opens(registry=None) -> MetricFamily:
    """Times a breaker tripped open, per estimator."""
    return _registry(registry).counter(
        BREAKER_OPENS_TOTAL,
        "Times a circuit breaker tripped open.",
        ("estimator",),
    )


#: Accessors for every standard family, in export order.
_STANDARD_ACCESSORS = (
    advisor_allocation_seconds,
    advisor_curve_points,
    advisor_grid_requests,
    advisor_oracle_checks,
    advisor_runs,
    breaker_opens,
    breaker_state,
    catalog_quarantines,
    catalog_reads,
    catalog_retries,
    catalog_stale_serves,
    checkpoint_load_seconds,
    checkpoint_save_seconds,
    engine_call_latency,
    engine_degraded_serves,
    engine_errors,
    engine_estimates,
    kernel_feed_seconds,
    kernel_references,
    kernel_references_per_second,
    refresh_cycle_seconds,
    refresh_cycles,
    refresh_drift_detected,
    refresh_publishes,
    refresh_quarantined_candidates,
    refresh_rollbacks,
    serving_batch_size,
    serving_batches,
    serving_latency,
    serving_queue_depth,
    serving_rejected,
    serving_requests,
    serving_tenant_evictions,
    serving_tenants_active,
    shard_feed_seconds,
    shard_merge_seconds,
    shard_seam_reuses,
)


def standard_family_names() -> List[str]:
    """Names of every standard family, sorted."""
    probe = MetricsRegistry(enabled=False)
    return sorted(
        accessor(probe).name for accessor in _STANDARD_ACCESSORS
    )


def register_standard_families(registry=None) -> None:
    """Declare every standard family on ``registry``.

    Exports then always carry the full family schema (``# HELP`` /
    ``# TYPE``) even for families nothing recorded into during the run;
    label-less families additionally materialize their zero-valued
    sample so dashboards see an explicit 0 rather than an absence.
    """
    registry = _registry(registry)
    for accessor in _STANDARD_ACCESSORS:
        family = accessor(registry)
        if not family.labelnames:
            family.labels()
