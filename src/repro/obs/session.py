"""One run's observability lifecycle, as a context manager.

:func:`observability_session` is what the CLI wraps command handlers
in.  When neither ``metrics_out`` nor ``trace_out`` is requested it
yields immediately and changes nothing — the global registry stays
disabled and instrumentation remains no-op-cheap.  When an export is
requested it:

1. enables the process-global registry and pre-declares the standard
   family catalog (so exports always carry the full schema);
2. installs a real :class:`~repro.obs.tracing.Tracer` as the active
   tracer, streaming finished spans to ``trace_out`` as JSON lines;
3. on exit, renders the registry snapshot to ``metrics_out`` —
   Prometheus text or canonical JSONL, chosen explicitly or by file
   extension (``-`` writes to stdout) — then restores the previous
   tracer and returns the registry to its disabled, empty state.

Export failures raise :class:`~repro.errors.ObservabilityError`; the
wrapped command's own result is never altered.
"""

from __future__ import annotations

import contextlib
import sys
import time
from typing import Callable, Iterator, Optional

from repro.errors import ObservabilityError
from repro.obs.export import to_jsonl, to_prometheus
from repro.obs.instruments import register_standard_families
from repro.obs.metrics import global_registry
from repro.obs.tracing import NULL_TRACER, Tracer, set_active_tracer

#: Accepted values for ``metrics_format``.
METRICS_FORMATS = ("auto", "prom", "jsonl")


def resolve_metrics_format(path: str, metrics_format: str) -> str:
    """The concrete exporter ("prom" or "jsonl") for ``path``.

    ``auto`` picks by extension: ``.jsonl``/``.json`` mean JSONL,
    anything else (including stdout's ``-``) means Prometheus text.
    """
    if metrics_format not in METRICS_FORMATS:
        raise ObservabilityError(
            f"unknown metrics format {metrics_format!r} "
            f"(want one of {list(METRICS_FORMATS)})"
        )
    if metrics_format != "auto":
        return metrics_format
    lowered = path.lower()
    if lowered.endswith(".jsonl") or lowered.endswith(".json"):
        return "jsonl"
    return "prom"


def _write_output(path: str, text: str, what: str) -> None:
    if path == "-":
        sys.stdout.write(text)
        return
    try:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    except OSError as exc:
        raise ObservabilityError(
            f"could not write {what} to {path!r}: {exc}"
        ) from exc


@contextlib.contextmanager
def observability_session(
    metrics_out: Optional[str] = None,
    trace_out: Optional[str] = None,
    metrics_format: str = "auto",
    clock_ns: Callable[[], int] = time.time_ns,
) -> Iterator[None]:
    """Enable, run, export, restore — see the module docstring."""
    if metrics_out is None and trace_out is None:
        yield
        return

    if metrics_out is not None:
        # Fail on a bad format choice before doing any work.
        resolve_metrics_format(metrics_out, metrics_format)

    registry = global_registry()
    registry.enable()
    register_standard_families(registry)

    trace_handle = None
    previous_tracer = None
    try:
        if trace_out is not None:
            if trace_out == "-":
                sink = sys.stdout
            else:
                try:
                    trace_handle = open(
                        trace_out, "w", encoding="utf-8"
                    )
                except OSError as exc:
                    raise ObservabilityError(
                        f"could not open trace sink {trace_out!r}: "
                        f"{exc}"
                    ) from exc
                sink = trace_handle
            tracer = Tracer(sink=sink, clock_ns=clock_ns)
            previous_tracer = set_active_tracer(tracer)
        yield
        if metrics_out is not None:
            fmt = resolve_metrics_format(metrics_out, metrics_format)
            render = to_prometheus if fmt == "prom" else to_jsonl
            _write_output(
                metrics_out, render(registry.snapshot()), "metrics"
            )
    finally:
        if previous_tracer is not None:
            set_active_tracer(previous_tracer)
        else:
            set_active_tracer(NULL_TRACER)
        if trace_handle is not None:
            trace_handle.close()
        registry.disable()
        registry.clear()
