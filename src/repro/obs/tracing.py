"""Structured tracing: spans with parent links and a JSONL sink.

A :class:`Span` covers one timed operation; a :class:`Tracer` hands out
spans as context managers and maintains a per-thread stack so nesting
produces correct parent links without any explicit plumbing::

    tracer = Tracer(sink=open("trace.jsonl", "w"))
    with tracer.span("experiment", dataset="synthetic-u"):
        with tracer.span("lru-fit"):        # parent: experiment
            with tracer.span("kernel-pass"):  # parent: lru-fit
                ...

Each finished span is appended to ``tracer.spans`` and — when a sink is
attached — written immediately as one minified, key-sorted JSON line.
Span/trace ids are sequential (deterministic per tracer) and the clock
is injectable, so traces golden-test cleanly.

Library code does not hold a tracer: it calls the module-level
:func:`span` helper, which delegates to the *active* tracer
(:func:`set_active_tracer`).  The default active tracer is
:data:`NULL_TRACER`, whose spans are a shared no-op object — an
untraced run pays one method call and a dict build per span site.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from typing import IO, Callable, List, Optional

#: Span completion statuses.
STATUS_OK = "ok"
STATUS_ERROR = "error"


class Span:
    """One timed operation; use as a context manager via ``Tracer.span``."""

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "start_ns",
        "end_ns", "attrs", "status", "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = tracer.trace_id
        self.span_id: Optional[str] = None
        self.parent_id: Optional[str] = None
        self.start_ns: Optional[int] = None
        self.end_ns: Optional[int] = None
        self.attrs = attrs
        self.status = STATUS_OK

    def set_attribute(self, key: str, value: object) -> None:
        """Attach one attribute (JSON-serializable value)."""
        self.attrs[key] = value

    @property
    def duration_ns(self) -> Optional[int]:
        """Wall-clock duration, once the span has finished."""
        if self.start_ns is None or self.end_ns is None:
            return None
        return self.end_ns - self.start_ns

    def record(self) -> dict:
        """The span's canonical dictionary form (what the sink writes)."""
        return {
            "attrs": self.attrs,
            "duration_ns": self.duration_ns,
            "name": self.name,
            "parent_id": self.parent_id,
            "span_id": self.span_id,
            "start_ns": self.start_ns,
            "status": self.status,
            "trace_id": self.trace_id,
        }

    def __enter__(self) -> "Span":
        self._tracer._start(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.status = STATUS_ERROR
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self)
        return False

    def __repr__(self) -> str:
        return (
            f"Span(name={self.name!r}, span_id={self.span_id!r}, "
            f"parent_id={self.parent_id!r})"
        )


#: Monotone source for default trace ids (deterministic per process).
_TRACE_IDS = itertools.count(1)


class Tracer:
    """Hands out spans, links parents per thread, writes a JSONL sink."""

    def __init__(
        self,
        sink: Optional[IO[str]] = None,
        clock_ns: Callable[[], int] = time.time_ns,
        trace_id: Optional[str] = None,
    ) -> None:
        self._sink = sink
        self._clock_ns = clock_ns
        self.trace_id = trace_id or f"{next(_TRACE_IDS):032x}"
        self._span_ids = itertools.count(1)
        self._local = threading.local()
        self._lock = threading.Lock()
        #: Every finished span, in completion order.
        self.spans: List[Span] = []

    @property
    def enabled(self) -> bool:
        """True — a real tracer records (cf. :class:`NullTracer`)."""
        return True

    def span(self, name: str, **attrs: object) -> Span:
        """A new span; enter it (``with``) to start the clock."""
        return Span(self, name, attrs)

    def current_span(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _start(self, span: Span) -> None:
        stack = self._stack()
        span.parent_id = stack[-1].span_id if stack else None
        with self._lock:
            span.span_id = f"{next(self._span_ids):016x}"
        span.start_ns = self._clock_ns()
        stack.append(span)

    def _finish(self, span: Span) -> None:
        span.end_ns = self._clock_ns()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # misnested exit: drop through to it
            while stack and stack.pop() is not span:
                pass
        with self._lock:
            self.spans.append(span)
            if self._sink is not None:
                self._sink.write(
                    json.dumps(
                        span.record(),
                        sort_keys=True,
                        separators=(",", ":"),
                    )
                    + "\n"
                )

    def flush(self) -> None:
        """Flush the sink, when it supports flushing."""
        if self._sink is not None and hasattr(self._sink, "flush"):
            self._sink.flush()

    def __repr__(self) -> str:
        return (
            f"Tracer(trace_id={self.trace_id!r}, "
            f"spans={len(self.spans)})"
        )


class _NullSpan:
    """Shared do-nothing span: the cost of tracing while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attribute(self, key: str, value: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every span is the shared no-op span."""

    enabled = False

    def span(self, name: str, **attrs: object) -> _NullSpan:
        """The shared no-op span; arguments are discarded."""
        return _NULL_SPAN

    def current_span(self) -> None:
        """Always ``None`` — a null tracer has no open spans."""
        return None

    def flush(self) -> None:
        """Nothing to flush."""


#: The default active tracer (tracing off).
NULL_TRACER = NullTracer()

_active = NULL_TRACER


def active_tracer():
    """The tracer library instrumentation currently records into."""
    return _active


def set_active_tracer(tracer) -> object:
    """Install ``tracer`` as the active tracer; returns the previous one.

    Pass :data:`NULL_TRACER` (or the returned previous tracer) to turn
    tracing back off; instrumentation sites never need to know.
    """
    global _active
    previous = _active
    _active = tracer if tracer is not None else NULL_TRACER
    return previous


def span(name: str, **attrs: object):
    """A span on the active tracer (no-op span when tracing is off)."""
    return _active.span(name, **attrs)
