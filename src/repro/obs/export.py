"""Exporters rendering a registry snapshot to wire formats.

Two formats, both produced from the canonical
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dictionary so equal
registry state always renders byte-identically:

* :func:`to_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, one sample per line, histograms as
  cumulative ``_bucket``/``_sum``/``_count`` series).  Validated by
  :mod:`repro.obs.promcheck`.
* :func:`to_jsonl` — canonical JSON lines: one minified, key-sorted
  JSON object per sample.  The machine-diffable form (goldens, CI
  artifacts).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Union

Number = Union[int, float]


def _fmt_value(value: Number) -> str:
    """Prometheus sample value: ints bare, floats via ``repr``."""
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_str(labels: Dict[str, str], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label(str(value))}"'
        for name, value in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _le_str(bound: Optional[Number]) -> str:
    return "+Inf" if bound is None else _fmt_value(bound)


def to_prometheus(snapshot: dict) -> str:
    """Render a registry snapshot as Prometheus exposition text."""
    lines: List[str] = []
    for family in snapshot["families"]:
        name = family["name"]
        if family["help"]:
            lines.append(f"# HELP {name} {_escape_help(family['help'])}")
        lines.append(f"# TYPE {name} {family['type']}")
        for sample in family["samples"]:
            labels = sample["labels"]
            if family["type"] == "histogram":
                for bound, cumulative in sample["buckets"]:
                    le = f'le="{_le_str(bound)}"'
                    lines.append(
                        f"{name}_bucket{_label_str(labels, le)} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_label_str(labels)} "
                    f"{_fmt_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_label_str(labels)} "
                    f"{sample['count']}"
                )
            else:
                lines.append(
                    f"{name}{_label_str(labels)} "
                    f"{_fmt_value(sample['value'])}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def to_jsonl(snapshot: dict) -> str:
    """Render a registry snapshot as canonical JSON lines.

    One object per sample; families with no samples still emit one
    schema line (``"samples": 0``) so the exported family set is
    identical between the two formats.
    """
    lines: List[str] = []
    for family in snapshot["families"]:
        base = {
            "name": family["name"],
            "type": family["type"],
            "help": family["help"],
        }
        if not family["samples"]:
            lines.append(_dump({**base, "samples": 0}))
            continue
        for sample in family["samples"]:
            record = {**base, "labels": sample["labels"]}
            if family["type"] == "histogram":
                record["buckets"] = sample["buckets"]
                record["sum"] = sample["sum"]
                record["count"] = sample["count"]
            else:
                record["value"] = sample["value"]
            lines.append(_dump(record))
    return "\n".join(lines) + "\n" if lines else ""


def _dump(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))
