"""Polynomial FPF-curve approximation (the paper's named alternative).

Section 4.1: "Any approximation method that permits sufficiently accurate
approximation (e.g., polynomial curve fitting) could be used.  We use the
simple but adequate method of approximating the FPF curve using line
segments."  This module implements the alternative so the choice can be
measured (``bench_ablation_fit_method.py``): a least-squares polynomial in
a normalized coordinate, with the same catalog footprint accounting
(degree d costs d+1 stored coefficients vs 2(k+1) floats for k segments).

The normal equations are solved with plain Gaussian elimination over the
Vandermonde system — for the degrees that fit in a catalog row (<= ~8) and
normalized x in [0, 1] this is numerically comfortable without any
third-party dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import FitError

Point = Tuple[float, float]


def _solve(matrix: List[List[float]], rhs: List[float]) -> List[float]:
    """Gaussian elimination with partial pivoting."""
    n = len(rhs)
    augmented = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(augmented[r][col]))
        if abs(augmented[pivot][col]) < 1e-12:
            raise FitError(
                "singular normal equations; lower the polynomial degree"
            )
        augmented[col], augmented[pivot] = augmented[pivot], augmented[col]
        pivot_row = augmented[col]
        for row_index in range(n):
            if row_index == col:
                continue
            factor = augmented[row_index][col] / pivot_row[col]
            if factor == 0.0:
                continue
            row = augmented[row_index]
            for k in range(col, n + 1):
                row[k] -= factor * pivot_row[k]
    return [augmented[i][n] / augmented[i][i] for i in range(n)]


@dataclass(frozen=True)
class PolynomialCurve:
    """A least-squares polynomial over normalized x.

    Evaluation maps ``x`` into ``[0, 1]`` via the stored range before
    applying Horner's rule; outside the fitted range the polynomial
    extrapolates (like the line segments' terminal slopes, but with
    polynomial growth — one reason the paper's segments are the safer
    default).
    """

    x_min: float
    x_max: float
    #: Coefficients, lowest order first, over the normalized coordinate.
    coefficients: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.coefficients:
            raise FitError("a polynomial needs at least one coefficient")
        if self.x_max <= self.x_min:
            raise FitError(
                f"need x_min < x_max, got [{self.x_min}, {self.x_max}]"
            )

    @property
    def degree(self) -> int:
        """Polynomial degree (coefficient count minus one)."""
        return len(self.coefficients) - 1

    @property
    def catalog_floats(self) -> int:
        """Floats a catalog entry stores: range ends + coefficients."""
        return 2 + len(self.coefficients)

    def _normalize(self, x: float) -> float:
        return (x - self.x_min) / (self.x_max - self.x_min)

    def evaluate(self, x: float) -> float:
        """Horner evaluation at (unnormalized) ``x``."""
        z = self._normalize(x)
        value = 0.0
        for coefficient in reversed(self.coefficients):
            value = value * z + coefficient
        return value

    def __call__(self, x: float) -> float:
        return self.evaluate(x)


def fit_polynomial(points: Sequence[Point], degree: int) -> PolynomialCurve:
    """Least-squares polynomial of the given degree through ``points``."""
    if degree < 0:
        raise FitError(f"degree must be >= 0, got {degree}")
    if degree > 8:
        raise FitError(
            f"degree {degree} is beyond what a catalog row (and double "
            "precision Vandermonde systems) comfortably holds; use <= 8"
        )
    unique = sorted(set((float(x), float(y)) for x, y in points))
    if len(unique) < degree + 1:
        raise FitError(
            f"need at least {degree + 1} distinct points for degree "
            f"{degree}, got {len(unique)}"
        )
    xs = [x for x, _y in unique]
    x_min, x_max = xs[0], xs[-1]
    if x_max <= x_min:
        raise FitError("points must span a nonzero x range")
    zs = [(x - x_min) / (x_max - x_min) for x in xs]
    ys = [y for _x, y in unique]

    n = degree + 1
    # Normal equations: (V^T V) c = V^T y with V the Vandermonde matrix.
    gram = [[0.0] * n for _ in range(n)]
    moments = [0.0] * n
    for z, y in zip(zs, ys):
        powers = [1.0]
        for _ in range(2 * degree):
            powers.append(powers[-1] * z)
        for i in range(n):
            moments[i] += powers[i] * y
            for j in range(n):
                gram[i][j] += powers[i + j]
    coefficients = _solve(gram, moments)
    return PolynomialCurve(
        x_min=x_min, x_max=x_max, coefficients=tuple(coefficients)
    )
