"""Piecewise-linear curve approximation.

The FPF curve is a set of ``(B_i, F_i)`` samples; LRU-Fit stores an
approximation using a small number of line segments whose knots are a
subset of the samples (so the stored curve passes exactly through the
retained data points, including both endpoints).  Est-IO later evaluates
the approximation at arbitrary buffer sizes, extrapolating linearly with
the terminal segments' slopes when ``B`` falls outside the modeled range
(Section 4.1: "extrapolation is used to generate page fetch estimates").
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import FitError

Point = Tuple[float, float]


@dataclass(frozen=True)
class PiecewiseLinear:
    """A continuous piecewise-linear function defined by its knots."""

    knots: Tuple[Point, ...]

    def __post_init__(self) -> None:
        if not self.knots:
            raise FitError("a piecewise-linear curve needs at least one knot")
        xs = [x for x, _y in self.knots]
        if any(b <= a for a, b in zip(xs, xs[1:])):
            raise FitError(
                f"knot x-coordinates must be strictly increasing, got {xs}"
            )

    @property
    def segment_count(self) -> int:
        """Number of line segments (knots minus one)."""
        return max(0, len(self.knots) - 1)

    @property
    def x_min(self) -> float:
        """Smallest knot x (start of the modeled range)."""
        return self.knots[0][0]

    @property
    def x_max(self) -> float:
        """Largest knot x (end of the modeled range)."""
        return self.knots[-1][0]

    def __call__(self, x: float) -> float:
        return self.evaluate(x)

    def evaluate(self, x: float) -> float:
        """Interpolate inside the knot range, extrapolate linearly outside."""
        knots = self.knots
        if len(knots) == 1:
            return knots[0][1]
        # Pick the segment: clamp to terminal segments outside the range.
        xs = [k[0] for k in knots]
        idx = bisect_right(xs, x) - 1
        idx = min(max(idx, 0), len(knots) - 2)
        (x0, y0), (x1, y1) = knots[idx], knots[idx + 1]
        slope = (y1 - y0) / (x1 - x0)
        return y0 + slope * (x - x0)

    def to_pairs(self) -> List[List[float]]:
        """JSON-friendly representation (catalog storage)."""
        return [[float(x), float(y)] for x, y in self.knots]

    @classmethod
    def from_pairs(cls, pairs: Sequence[Sequence[float]]) -> "PiecewiseLinear":
        """Rebuild from :meth:`to_pairs` output."""
        return cls(tuple((float(x), float(y)) for x, y in pairs))


def _chord_sse(points: Sequence[Point], i: int, j: int) -> float:
    """SSE of the chord from points[i] to points[j] over points i..j."""
    (x0, y0), (x1, y1) = points[i], points[j]
    slope = (y1 - y0) / (x1 - x0)
    sse = 0.0
    for k in range(i + 1, j):
        x, y = points[k]
        predicted = y0 + slope * (x - x0)
        sse += (y - predicted) ** 2
    return sse


def _validate(points: Sequence[Point], segments: int) -> List[Point]:
    if segments < 1:
        raise FitError(f"segments must be >= 1, got {segments}")
    unique = sorted(set((float(x), float(y)) for x, y in points))
    xs = [x for x, _y in unique]
    if len(set(xs)) != len(xs):
        raise FitError("duplicate x-coordinates with differing y values")
    if len(unique) < 2:
        raise FitError(
            f"need at least 2 distinct points to fit, got {len(unique)}"
        )
    return unique


def fit_optimal(points: Sequence[Point], segments: int) -> PiecewiseLinear:
    """Minimum-SSE knot selection by dynamic programming.

    O(n^2) chord evaluations of O(n) each; FPF tables are small (tens of
    samples — the paper's grid step is ``2 * sqrt(B_max - B_min)``), so the
    cubic cost is negligible.
    """
    data = _validate(points, segments)
    n = len(data)
    if n <= segments + 1:
        return PiecewiseLinear(tuple(data))

    sse = [[0.0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            sse[i][j] = _chord_sse(data, i, j)

    infinity = float("inf")
    # best[s][j]: minimal SSE covering points 0..j with s segments ending at j.
    best = [[infinity] * n for _ in range(segments + 1)]
    choice = [[-1] * n for _ in range(segments + 1)]
    best[0][0] = 0.0
    for s in range(1, segments + 1):
        for j in range(1, n):
            for i in range(j):
                if best[s - 1][i] == infinity:
                    continue
                candidate = best[s - 1][i] + sse[i][j]
                if candidate < best[s][j]:
                    best[s][j] = candidate
                    choice[s][j] = i

    # The final knot must be the last point.  A forced knot can *hurt* on
    # non-monotone data (the chosen knot pins the curve to a data point),
    # so take the best solution over any count up to the budget.
    best_s = min(
        range(1, segments + 1), key=lambda s: best[s][n - 1]
    )
    knot_indices = [n - 1]
    s, j = best_s, n - 1
    while s > 0:
        i = choice[s][j]
        if i < 0:
            raise FitError("dynamic program failed to cover the points")
        knot_indices.append(i)
        s, j = s - 1, i
    knot_indices.reverse()
    return PiecewiseLinear(tuple(data[i] for i in knot_indices))


def fit_greedy(points: Sequence[Point], segments: int) -> PiecewiseLinear:
    """Greedy top-down splitting (Douglas-Peucker flavour).

    Start with one chord over the whole range; repeatedly split the segment
    at its worst-approximated interior point until ``segments`` pieces
    exist.  Faster than the DP and usually within a few percent of optimal
    on monotone FPF curves.
    """
    data = _validate(points, segments)
    n = len(data)
    if n <= segments + 1:
        return PiecewiseLinear(tuple(data))

    def worst_point(i: int, j: int) -> Tuple[float, int]:
        (x0, y0), (x1, y1) = data[i], data[j]
        slope = (y1 - y0) / (x1 - x0)
        worst_err, worst_k = -1.0, -1
        for k in range(i + 1, j):
            x, y = data[k]
            err = abs(y - (y0 + slope * (x - x0)))
            if err > worst_err:
                worst_err, worst_k = err, k
        return worst_err, worst_k

    boundaries = [0, n - 1]
    while len(boundaries) - 1 < segments:
        best_err, best_split = -1.0, -1
        for a, b in zip(boundaries, boundaries[1:]):
            if b - a < 2:
                continue
            err, k = worst_point(a, b)
            if err > best_err:
                best_err, best_split = err, k
        if best_split < 0:
            break  # every segment is already exact
        boundaries.append(best_split)
        boundaries.sort()
    return PiecewiseLinear(tuple(data[i] for i in boundaries))


def fit_piecewise_linear(
    points: Sequence[Point], segments: int, method: str = "optimal"
) -> PiecewiseLinear:
    """Fit with the chosen method (``"optimal"`` or ``"greedy"``)."""
    fitters = {"optimal": fit_optimal, "greedy": fit_greedy}
    try:
        fitter = fitters[method]
    except KeyError:
        raise FitError(
            f"unknown fit method {method!r}; expected one of {sorted(fitters)}"
        ) from None
    return fitter(points, segments)
