"""Piecewise-linear approximation of FPF curves (paper Section 4.1).

"We use the simple but adequate method of approximating the FPF curve using
line segments ... we use six line segments to approximate the FPF curves."

Two fitters are provided: an optimal dynamic program (minimum total squared
error over knot subsets) and a greedy Douglas-Peucker-style splitter (the
flavour of streaming algorithm Natarajan (1991) describes).  Both return a
:class:`PiecewiseLinear` that interpolates inside its range and extrapolates
linearly outside it, which is how Est-IO handles buffer sizes outside the
modeled range.
"""

from repro.fit.polynomial import PolynomialCurve, fit_polynomial
from repro.fit.segments import (
    PiecewiseLinear,
    fit_piecewise_linear,
    fit_greedy,
    fit_optimal,
)

__all__ = [
    "PiecewiseLinear",
    "PolynomialCurve",
    "fit_greedy",
    "fit_optimal",
    "fit_piecewise_linear",
    "fit_polynomial",
]
