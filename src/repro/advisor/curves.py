"""Fleet curve evaluation: PF(B) per index, weighted into fetch rates.

One :class:`~repro.engine.EstimationEngine.estimate_grid` call per index
pulls the whole curve — every selectivity class crossed with every
buffer size — through the estimator's batched fast path, instead of
``cap × classes`` single estimates.  The grid rows are then collapsed
into one *fetch-rate curve* per index::

    rate[b] = scans_per_second * Σ_c (w_c / Σw) * PF_c(b)

i.e. expected page fetches **per second** with ``b`` buffer pages,
which is the unit the five-minute-rule pricing and the allocator both
want.  The curve is policy-aware for free: the engine binds estimators
to the catalog record's fitted curve, so an index fitted under
``clock`` or ``lecar-tinylfu`` advises differently than LRU.

Edge semantics the advisor relies on (see also
:class:`~repro.buffer.stack.FetchCurve` and
:meth:`~repro.estimators.base.PageFetchEstimator.estimate_grid`):

* **B = 0** — estimators reject ``buffer_pages < 1`` (a scan cannot run
  without a single buffer page), so the advisor clamps:
  ``rate[0] = rate[1]``.  Awarding an index zero pages therefore costs
  what running it with the minimum one page costs, and the first page's
  marginal gain is exactly zero — budget never flows to "page zero".
* **B > N** — curves flatten at each index's ``table_pages`` (more
  buffer than the table has pages cannot help), so curves are only
  evaluated up to ``cap = min(max_pages, table_pages)`` and the
  allocator never awards pages past the flat region.
* **Negative extrapolation** — piecewise-linear fits extrapolate with
  terminal slopes and can dip below zero past their last knot; fetch
  rates are clamped at 0 because negative expected fetches are
  unphysical and would manufacture fake marginal gain.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Tuple

from repro.advisor.allocator import lower_convex_envelope
from repro.advisor.workload import AdvisorSpec, IndexWorkload
from repro.engine.engine import EstimationEngine
from repro.errors import AdvisorError, ReproError
from repro.types import ScanSelectivity


@dataclass(frozen=True)
class FleetCurve:
    """One index's evaluated fetch-rate curve plus its convex envelope.

    ``fetch_rate[b]`` is expected page fetches per second with ``b``
    buffer pages (``b = 0 .. cap``, with the B=0 clamp above);
    ``envelope`` is its lower convex envelope as exact fractions, the
    form the allocator consumes.
    """

    index: str
    policy: str
    table_pages: int
    cap: int
    fetch_rate: Tuple[float, ...]
    envelope: Tuple[Fraction, ...]

    @property
    def points(self) -> int:
        """Grid points evaluated for this curve (rows × classes)."""
        return self.cap

    def rate_at(self, pages: int) -> float:
        """Fetch rate with ``pages`` buffer pages (flat past the cap)."""
        if pages < 0:
            raise AdvisorError(f"pages must be >= 0, got {pages}")
        return self.fetch_rate[min(pages, self.cap)]

    def envelope_at(self, pages: int) -> Fraction:
        """Envelope value with ``pages`` buffer pages (flat past cap)."""
        if pages < 0:
            raise AdvisorError(f"pages must be >= 0, got {pages}")
        return self.envelope[min(pages, self.cap)]


def evaluate_index_curve(
    engine: EstimationEngine,
    workload: IndexWorkload,
    estimator: str,
    max_pages: int,
) -> FleetCurve:
    """Evaluate one index's fetch-rate curve through the engine."""
    if max_pages < 1:
        raise AdvisorError(
            f"max_pages must be >= 1, got {max_pages}"
        )
    try:
        stats = engine.statistics(workload.index)
    except ReproError as exc:
        raise AdvisorError(
            f"fleet index {workload.index!r} is not in the catalog: "
            f"{exc}"
        ) from exc
    cap = max(1, min(max_pages, stats.table_pages))
    selectivities = [
        ScanSelectivity(cls.sigma, cls.sargable)
        for cls in workload.classes
    ]
    grid = engine.estimate_grid(
        workload.index,
        estimator,
        selectivities,
        list(range(1, cap + 1)),
    )
    total_weight = sum(cls.weight for cls in workload.classes)
    rates = [0.0]  # placeholder for b=0, clamped below
    for row in grid:
        per_scan = sum(
            cls.weight * max(0.0, estimate)
            for cls, estimate in zip(workload.classes, row)
        ) / total_weight
        rates.append(workload.scans_per_second * per_scan)
    rates[0] = rates[1]  # B=0 clamp: see module docstring
    return FleetCurve(
        index=workload.index,
        policy=stats.policy,
        table_pages=stats.table_pages,
        cap=cap,
        fetch_rate=tuple(rates),
        envelope=lower_convex_envelope(rates),
    )


def evaluate_fleet(
    engine: EstimationEngine,
    spec: AdvisorSpec,
    max_pages: int,
) -> Dict[str, FleetCurve]:
    """Evaluate every fleet index, keyed by name (insertion = sorted)."""
    return {
        workload.index: evaluate_index_curve(
            engine, workload, spec.estimator, max_pages
        )
        for workload in sorted(spec.fleet, key=lambda w: w.index)
    }
