"""Marginal-gain buffer allocation with a convexity-repairing envelope.

Given per-index *fetch-rate curves* ``rate[b]`` (expected page fetches
per second with ``b`` buffer pages, ``b = 0 .. cap``), splitting a total
page budget to minimize fleet fetches is a resource-allocation problem.
When every curve is convex (diminishing returns), the classic greedy —
repeatedly give the next page to the index with the largest marginal
fetch reduction — is exactly optimal (Fox 1966).  Real PF(B) curves are
*not* convex: policy kernels (``clock``, ``2q``, ``lecar-tinylfu``)
produce plateaus and Belady-style bumps, and even LRU curves fitted as
piecewise-linear segments have slope changes in the wrong direction
after clamping.  So the allocator works on each curve's **lower convex
envelope** (its greatest convex minorant after a monotone repair), on
which greedy is optimal again; the envelope never overstates achievable
savings at the budget actually allocated *on the envelope's own terms*,
and an exhaustive dynamic program over the *same* envelopes serves as a
differential oracle for small fleets.

Everything here is exact: curve values are converted to
:class:`fractions.Fraction` (floats are dyadic rationals, so the
conversion is lossless) and all comparisons, hull cross-products, and
running totals stay in ℚ.  ``greedy == dp`` assertions therefore never
hinge on float summation order.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.errors import AdvisorError

#: ``auto`` oracle-mode bounds: the exhaustive DP runs only when the
#: fleet is at most this many indexes…
ORACLE_MAX_INDEXES = 5
#: …each curve has at most this many pages…
ORACLE_MAX_CAP = 64
#: …and the budget is at most this many pages.
ORACLE_MAX_BUDGET = 320


def monotone_repair(
    values: Sequence[Fraction],
) -> Tuple[Fraction, ...]:
    """Running minimum: the tightest non-increasing curve under ``values``.

    More memory can always be ignored, so any achievable fetch rate at
    ``b`` pages is achievable at ``b+1`` (operationally: pin the extra
    page unused).  Belady-style bumps in policy curves violate this on
    paper; the repair restores it before convexification.
    """
    repaired: List[Fraction] = []
    best = None
    for value in values:
        best = value if best is None or value < best else best
        repaired.append(best)
    return tuple(repaired)


def lower_convex_envelope(
    values: Sequence[object],
) -> Tuple[Fraction, ...]:
    """The greatest convex non-increasing minorant of ``values``.

    ``values[b]`` is the curve at ``b`` pages; the result has the same
    length, lies on or below the (monotone-repaired) input, is convex
    (marginal gains non-increasing), and touches the input at the hull
    knots.  Input entries may be ``float``/``int``/``Fraction``; output
    entries are always :class:`~fractions.Fraction`.
    """
    points = monotone_repair(
        [Fraction(v) for v in values]
    )
    n = len(points)
    if n == 0:
        raise AdvisorError("cannot convexify an empty curve")
    if n <= 2:
        return points
    # Lower hull, Andrew monotone-chain style.  x is the integer index;
    # a <=0 cross product means the middle hull point is on or above the
    # chord and gets dropped (collinear points are dropped too, which
    # only merges equal-slope segments).
    hull: List[Tuple[int, Fraction]] = []
    for x in range(n):
        p = (x, points[x])
        while len(hull) >= 2:
            o, a = hull[-2], hull[-1]
            cross = (a[0] - o[0]) * (p[1] - o[1]) - (
                (a[1] - o[1]) * (p[0] - o[0])
            )
            if cross <= 0:
                hull.pop()
            else:
                break
        hull.append(p)
    envelope: List[Fraction] = []
    seg = 0
    for x in range(n):
        while seg + 1 < len(hull) and hull[seg + 1][0] <= x:
            seg += 1
        if hull[seg][0] == x or seg + 1 >= len(hull):
            envelope.append(hull[seg][1])
        else:
            (x0, y0), (x1, y1) = hull[seg], hull[seg + 1]
            envelope.append(
                y0 + (y1 - y0) * Fraction(x - x0, x1 - x0)
            )
    return tuple(envelope)


@dataclass(frozen=True)
class AllocationResult:
    """One allocator run: pages per index plus the envelope total.

    ``total`` is the sum of each index's envelope value at its awarded
    page count — exact, so two runs over the same curves compare with
    ``==``.  ``pages_used`` can be below the budget when every curve has
    flattened (no strictly positive marginal gain remains).
    """

    pages: Mapping[str, int]
    total: Fraction
    pages_used: int
    budget: int

    def as_dict(self) -> Dict[str, int]:
        """The per-index page awards as a plain sorted dict."""
        return dict(self.pages)


def _validate_curves(
    curves: Mapping[str, Sequence[Fraction]],
) -> Dict[str, Tuple[Fraction, ...]]:
    if not curves:
        raise AdvisorError("allocator needs at least one curve")
    validated: Dict[str, Tuple[Fraction, ...]] = {}
    for name in sorted(curves):
        curve = tuple(Fraction(v) for v in curves[name])
        if len(curve) < 1:
            raise AdvisorError(f"curve for {name!r} is empty")
        for b in range(1, len(curve)):
            if curve[b] > curve[b - 1]:
                raise AdvisorError(
                    f"curve for {name!r} is not non-increasing at "
                    f"b={b}; run lower_convex_envelope first"
                )
        validated[name] = curve
    return validated


def greedy_allocate(
    curves: Mapping[str, Sequence[Fraction]],
    budget: int,
) -> AllocationResult:
    """Give pages one at a time to the largest marginal fetch reduction.

    ``curves`` maps index name to its **envelope** (convex,
    non-increasing — enforced; raw curves are rejected so a caller can
    never silently allocate on a non-convex curve where greedy is not
    optimal).  Ties break deterministically: larger gain first, then
    lexicographically smaller index name, then smaller page count.
    Pages with zero marginal gain are never awarded, so ``pages_used``
    reports only memory that actually reduces fetches.
    """
    if budget < 0:
        raise AdvisorError(f"budget must be >= 0, got {budget}")
    validated = _validate_curves(curves)
    pages = {name: 0 for name in validated}
    total = sum(
        (curve[0] for curve in validated.values()), Fraction(0)
    )
    # Heap entries: (-gain, name, next_b).  Convexity means the gain for
    # page b+1 never exceeds the gain for page b, so pushing only the
    # next page per index keeps the heap truthful.
    heap: List[Tuple[Fraction, str, int]] = []
    for name, curve in validated.items():
        if len(curve) > 1:
            gain = curve[0] - curve[1]
            if gain > 0:
                heapq.heappush(heap, (-gain, name, 1))
    used = 0
    while used < budget and heap:
        neg_gain, name, b = heapq.heappop(heap)
        pages[name] = b
        total += neg_gain  # == -gain
        used += 1
        curve = validated[name]
        if b + 1 < len(curve):
            gain = curve[b] - curve[b + 1]
            if gain > 0:
                heapq.heappush(heap, (-gain, name, b + 1))
    return AllocationResult(
        pages=pages, total=total, pages_used=used, budget=budget
    )


def dp_allocate(
    curves: Mapping[str, Sequence[Fraction]],
    budget: int,
) -> AllocationResult:
    """Exhaustive optimum over the same envelopes, as a greedy oracle.

    A multiple-choice-knapsack dynamic program: O(n · budget · cap)
    time, so it is gated to small fleets (:data:`ORACLE_MAX_INDEXES`
    × :data:`ORACLE_MAX_CAP`, budget ≤ :data:`ORACLE_MAX_BUDGET` in
    ``auto`` mode).  The tie-break matches greedy's exactly — minimize
    total fetches, then total pages used, then prefer giving tied pages
    to lexicographically earlier names — so on convex curves
    ``dp_allocate(...) == greedy_allocate(...)`` holds as full-structure
    equality, not just equal totals.
    """
    if budget < 0:
        raise AdvisorError(f"budget must be >= 0, got {budget}")
    validated = _validate_curves(curves)
    names = sorted(validated)
    # best[i][r]: (total, pages) for names[i:] with r pages available.
    # Later rows are built first; reconstruction walks forward choosing,
    # per index, the *largest* b achieving the optimum — earlier names
    # thus absorb tied pages, mirroring greedy's name-ordered tie-break.
    width = budget + 1
    best: List[List[Tuple[Fraction, int]]] = [
        [(Fraction(0), 0)] * width for _ in range(len(names) + 1)
    ]
    for i in range(len(names) - 1, -1, -1):
        curve = validated[names[i]]
        for r in range(width):
            choice = None
            for b in range(min(r, len(curve) - 1) + 1):
                tail_total, tail_pages = best[i + 1][r - b]
                cand = (curve[b] + tail_total, b + tail_pages)
                if choice is None or cand < choice:
                    choice = cand
            best[i][r] = choice
    pages: Dict[str, int] = {}
    remaining = budget
    for i, name in enumerate(names):
        curve = validated[name]
        target = best[i][remaining]
        chosen = 0
        for b in range(min(remaining, len(curve) - 1) + 1):
            tail_total, tail_pages = best[i + 1][remaining - b]
            if (curve[b] + tail_total, b + tail_pages) == target:
                chosen = b
        pages[name] = chosen
        remaining -= chosen
    total, used = best[0][budget]
    return AllocationResult(
        pages=pages, total=total, pages_used=used, budget=budget
    )


def oracle_applicable(
    curves: Mapping[str, Sequence[object]],
    budget: int,
) -> bool:
    """Whether ``auto`` oracle mode runs the DP for this problem size."""
    return (
        len(curves) <= ORACLE_MAX_INDEXES
        and all(
            len(curve) - 1 <= ORACLE_MAX_CAP
            for curve in curves.values()
        )
        and budget <= ORACLE_MAX_BUDGET
    )
