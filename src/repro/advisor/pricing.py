"""Five-minute-rule dollar pricing of a fleet allocation.

Gray & Graefe's rule prices the RAM-vs-I/O trade: a page is worth
caching when its re-access interval is shorter than the *break-even
reference interval*::

    BreakEvenInterval = (PagesPerMBofRAM × PricePerDiskDrive)
                      / (AccessesPerSecondPerDisk × PricePerMBofRAM)

The advisor applies it per index at the margin: with ``p`` pages
awarded, the *last* page bought saves ``gain`` fetches/second, so the
marginal page behaves like a page re-accessed every ``1/gain`` seconds.
If that residency interval is within the break-even interval the page
"pays rent"; the first page that would not is where a rational operator
stops buying memory for that index.  Capital costs use the same
constants: disk dollars are the drive capital needed to sustain the
residual fetch rate (``rate × $drive / IOPS``), RAM dollars the memory
capital of the awarded pages.

Everything is reported under the spec's :class:`CostModel` and re-priced
under its ``sensitivity`` RAM-price scale factors, because the rule's
output moves linearly with the RAM/disk price ratio and a capacity plan
that flips under a 2× price move is worth flagging.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.advisor.curves import FleetCurve
from repro.advisor.workload import CostModel
from repro.errors import AdvisorError


@dataclass(frozen=True)
class IndexPricing:
    """One index's share of the plan, priced at the margin.

    ``marginal_gain`` is the fetch-rate saving of the last page awarded
    (0 when no pages were awarded); ``next_gain`` the saving the *next*
    page would bring.  ``residency_interval_s`` is the marginal page's
    implied re-access interval (``inf`` with no awarded pages) and
    ``pays_rent`` whether it is within the five-minute-rule break-even.
    """

    index: str
    policy: str
    pages: int
    fetch_rate: float
    saved_rate: float
    marginal_gain: float
    next_gain: float
    residency_interval_s: float
    pays_rent: bool

    def to_dict(self) -> dict:
        """JSON-ready per-index pricing row (residency None when infinite)."""
        return {
            "index": self.index,
            "policy": self.policy,
            "pages": self.pages,
            "fetch_rate": self.fetch_rate,
            "saved_rate": self.saved_rate,
            "marginal_gain": self.marginal_gain,
            "next_gain": self.next_gain,
            "residency_interval_s": (
                None
                if math.isinf(self.residency_interval_s)
                else self.residency_interval_s
            ),
            "pays_rent": self.pays_rent,
        }


@dataclass(frozen=True)
class FleetPricing:
    """Dollar view of one budget point's allocation."""

    budget: int
    pages_used: int
    total_rate: float
    saved_rate: float
    ram_dollars: float
    disk_dollars: float
    break_even_interval_s: float
    per_index: Tuple[IndexPricing, ...]
    sensitivity: Dict[str, float]

    @property
    def total_dollars(self) -> float:
        """RAM rent plus disk capital for the whole allocation."""
        return self.ram_dollars + self.disk_dollars

    def to_dict(self) -> dict:
        """JSON-ready fleet pricing: totals, per-index rows, sensitivity."""
        return {
            "budget": self.budget,
            "pages_used": self.pages_used,
            "total_rate": self.total_rate,
            "saved_rate": self.saved_rate,
            "ram_dollars": self.ram_dollars,
            "disk_dollars": self.disk_dollars,
            "total_dollars": self.total_dollars,
            "break_even_interval_s": self.break_even_interval_s,
            "indexes": [p.to_dict() for p in self.per_index],
            "sensitivity": dict(self.sensitivity),
        }


def price_allocation(
    curves: Mapping[str, FleetCurve],
    pages: Mapping[str, int],
    budget: int,
    costs: CostModel,
) -> FleetPricing:
    """Price one allocation under ``costs``.

    ``pages`` maps every curve's index to its awarded page count;
    marginal gains are read off each curve's convex envelope (the basis
    the allocator optimized on), converted to float only for reporting.
    """
    if set(pages) != set(curves):
        raise AdvisorError(
            "allocation and curves disagree on the fleet: "
            f"{sorted(set(pages) ^ set(curves))}"
        )
    break_even = costs.break_even_interval_s()
    per_index = []
    total_rate = 0.0
    saved_rate = 0.0
    for name in sorted(curves):
        curve = curves[name]
        awarded = pages[name]
        rate = curve.rate_at(awarded)
        saved = curve.rate_at(0) - rate
        marginal = (
            float(
                curve.envelope_at(awarded - 1)
                - curve.envelope_at(awarded)
            )
            if awarded > 0
            else 0.0
        )
        next_gain = float(
            curve.envelope_at(awarded) - curve.envelope_at(awarded + 1)
        )
        interval = 1.0 / marginal if marginal > 0.0 else math.inf
        per_index.append(
            IndexPricing(
                index=name,
                policy=curve.policy,
                pages=awarded,
                fetch_rate=rate,
                saved_rate=saved,
                marginal_gain=marginal,
                next_gain=next_gain,
                residency_interval_s=interval,
                pays_rent=interval <= break_even,
            )
        )
        total_rate += rate
        saved_rate += saved
    pages_used = sum(pages.values())
    return FleetPricing(
        budget=budget,
        pages_used=pages_used,
        total_rate=total_rate,
        saved_rate=saved_rate,
        ram_dollars=pages_used * costs.ram_dollars_per_page,
        disk_dollars=total_rate * costs.dollars_per_access_per_second,
        break_even_interval_s=break_even,
        per_index=tuple(per_index),
        sensitivity={
            # JSON object keys are strings; "0.5x" reads better in the
            # report than a bare float anyway.
            f"{factor:g}x": costs.break_even_interval_s(factor)
            for factor in costs.sensitivity
        },
    )
