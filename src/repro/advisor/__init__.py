"""Fleet-wide buffer advisor: marginal-gain memory allocation.

The paper's output — a fetch-vs-buffer-pages curve PF(B) per index — is
a marginal-gain function for memory.  This package is the system that
consumes it at fleet scope: given per-index workloads, a total page
budget, and a cost model, it allocates buffer pages by marginal fetch
reduction (greedy over convexified curves, differentially verified
against an exhaustive DP oracle) and prices the result with Gray &
Graefe's five-minute rule.  See DESIGN.md, "Fleet advisor".
"""

from repro.advisor.advisor import (
    AdvisorReport,
    SweepPoint,
    advise,
    default_budget_sweep,
)
from repro.advisor.allocator import (
    AllocationResult,
    dp_allocate,
    greedy_allocate,
    lower_convex_envelope,
    monotone_repair,
    oracle_applicable,
)
from repro.advisor.curves import (
    FleetCurve,
    evaluate_fleet,
    evaluate_index_curve,
)
from repro.advisor.pricing import (
    FleetPricing,
    IndexPricing,
    price_allocation,
)
from repro.advisor.workload import (
    AdvisorSpec,
    CostModel,
    IndexWorkload,
    SelectivityClass,
    uniform_fleet,
)

__all__ = [
    "AdvisorReport",
    "AdvisorSpec",
    "AllocationResult",
    "CostModel",
    "FleetCurve",
    "FleetPricing",
    "IndexPricing",
    "IndexWorkload",
    "SelectivityClass",
    "SweepPoint",
    "advise",
    "default_budget_sweep",
    "dp_allocate",
    "evaluate_fleet",
    "evaluate_index_curve",
    "greedy_allocate",
    "lower_convex_envelope",
    "monotone_repair",
    "oracle_applicable",
    "price_allocation",
    "uniform_fleet",
]
