"""The advisory pipeline: curves → allocation → oracle → pricing.

:func:`advise` is the one entry point every surface shares — the
``repro advise`` CLI, the serving tier's ``advise`` request, and direct
library use all call it with an :class:`AdvisorSpec` and get back an
:class:`AdvisorReport` whose :meth:`~AdvisorReport.to_dict` is pure and
deterministic (sorted keys, plain floats).  Byte-identity between the
offline CLI path and the multi-tenant server path is pinned in tests on
exactly that property.

Per budget point the pipeline runs greedy marginal-gain allocation over
the fleet's convex envelopes and — in ``auto``/``always`` oracle mode —
differentially verifies it against the exhaustive DP.  A mismatch is a
*bug*, not a degraded answer: it raises :class:`AdvisorError` after
counting ``repro_advisor_oracle_checks_total{result="mismatch"}``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.advisor.allocator import (
    AllocationResult,
    dp_allocate,
    greedy_allocate,
    oracle_applicable,
)
from repro.advisor.curves import FleetCurve, evaluate_fleet
from repro.advisor.pricing import FleetPricing, price_allocation
from repro.advisor.workload import AdvisorSpec
from repro.catalog.catalog import SystemCatalog
from repro.catalog.store import CatalogStore
from repro.engine.engine import EstimationEngine
from repro.errors import AdvisorError
from repro.obs import instruments
from repro.obs.metrics import MetricsRegistry, global_registry
from repro.obs.tracing import span as obs_span

#: Default budget sweep, as fractions of the fleet's total table pages.
DEFAULT_SWEEP_FRACTIONS = (
    (1, 8), (1, 4), (1, 2), (3, 4), (1, 1),
)


def _bind_advisor_families(registry: MetricsRegistry) -> dict:
    return {
        "runs": instruments.advisor_runs(registry),
        "points": instruments.advisor_curve_points(registry),
        "seconds": instruments.advisor_allocation_seconds(registry),
        "oracle": instruments.advisor_oracle_checks(registry),
    }


@dataclass(frozen=True)
class SweepPoint:
    """One budget point of the sweep: allocation, oracle verdict, price."""

    budget: int
    allocation: AllocationResult
    oracle: str
    pricing: FleetPricing

    def to_dict(self) -> dict:
        """One JSON-ready sweep row: allocation, pricing, oracle verdict."""
        doc = self.pricing.to_dict()
        doc["pages"] = {
            name: self.allocation.pages[name]
            for name in sorted(self.allocation.pages)
        }
        doc["envelope_total_rate"] = float(self.allocation.total)
        doc["oracle"] = self.oracle
        return doc


@dataclass(frozen=True)
class AdvisorReport:
    """The full advisory: spec echo, per-index curves, budget sweep."""

    spec: AdvisorSpec
    curves: Dict[str, FleetCurve]
    sweep: Tuple[SweepPoint, ...]

    def to_dict(self) -> dict:
        """Deterministic JSON-ready form (the wire/`--out` payload)."""
        return {
            "spec": self.spec.to_dict(),
            "break_even_interval_s": (
                self.spec.costs.break_even_interval_s()
            ),
            "fleet": {
                name: {
                    "policy": curve.policy,
                    "table_pages": curve.table_pages,
                    "cap": curve.cap,
                    "unconstrained_rate": curve.rate_at(0),
                }
                for name, curve in sorted(self.curves.items())
            },
            "sweep": [point.to_dict() for point in self.sweep],
        }

    def to_json(self) -> str:
        """Canonical one-line JSON (the byte-identity form)."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )


def default_budget_sweep(
    engine: EstimationEngine, spec: AdvisorSpec
) -> Tuple[int, ...]:
    """Budget sweep derived from the fleet's total table pages.

    Used when the spec lists no budgets: fractions
    :data:`DEFAULT_SWEEP_FRACTIONS` of ``Σ table_pages``, deduplicated
    (tiny fleets collapse adjacent fractions to the same page count).
    """
    total = 0
    for workload in spec.fleet:
        try:
            total += engine.statistics(workload.index).table_pages
        except Exception as exc:
            raise AdvisorError(
                f"fleet index {workload.index!r} is not in the "
                f"catalog: {exc}"
            ) from exc
    return tuple(
        sorted({
            max(1, total * num // den)
            for num, den in DEFAULT_SWEEP_FRACTIONS
        })
    )


def _check_oracle(
    envelopes: Dict[str, tuple],
    budget: int,
    greedy: AllocationResult,
    mode: str,
) -> str:
    """Run the DP oracle per the spec's mode; return the verdict label."""
    if mode == "never":
        return "skipped"
    if mode == "auto" and not oracle_applicable(envelopes, budget):
        return "skipped"
    oracle = dp_allocate(envelopes, budget)
    if (
        oracle.total == greedy.total
        and dict(oracle.pages) == dict(greedy.pages)
    ):
        return "match"
    return "mismatch"


def advise(
    source: Union[
        EstimationEngine, SystemCatalog, CatalogStore, str, Path
    ],
    spec: AdvisorSpec,
    registry: Optional[MetricsRegistry] = None,
    path: str = "library",
) -> AdvisorReport:
    """Produce a budget-sweep advisory for ``spec``'s fleet.

    ``source`` is anything :class:`EstimationEngine` accepts, or an
    already-built engine (the serving tier passes its per-tenant one so
    advisories see exactly the catalog that tenant's estimates see).
    ``path`` labels ``repro_advisor_runs_total`` (``cli``, ``serving``,
    ``library``).
    """
    if not isinstance(source, EstimationEngine):
        source = EstimationEngine(source)
    fam = _bind_advisor_families(
        registry if registry is not None else global_registry()
    )
    mirror = None
    if registry is not None and registry is not global_registry():
        mirror = _bind_advisor_families(global_registry())
    started = time.perf_counter_ns()
    with obs_span("advise", fleet=len(spec.fleet), path=path):
        budgets = spec.budgets or default_budget_sweep(source, spec)
        with obs_span("advise-curves", indexes=len(spec.fleet)):
            curves = evaluate_fleet(source, spec, max(budgets))
        points = sum(
            curve.cap * len(spec.workload_for(name).classes)
            for name, curve in curves.items()
        )
        envelopes = {
            name: curve.envelope for name, curve in curves.items()
        }
        sweep = []
        for budget in budgets:
            with obs_span("advise-allocate", budget=budget):
                allocation = greedy_allocate(envelopes, budget)
                verdict = _check_oracle(
                    envelopes, budget, allocation, spec.oracle
                )
            for fams in (fam, mirror):
                if fams is not None:
                    fams["oracle"].labels(result=verdict).inc()
            if verdict == "mismatch":
                raise AdvisorError(
                    f"greedy/DP oracle divergence at budget {budget}: "
                    f"greedy={dict(allocation.pages)} "
                    f"total={float(allocation.total)!r}"
                )
            with obs_span("advise-price", budget=budget):
                pricing = price_allocation(
                    curves, allocation.pages, budget, spec.costs
                )
            sweep.append(
                SweepPoint(
                    budget=budget,
                    allocation=allocation,
                    oracle=verdict,
                    pricing=pricing,
                )
            )
    elapsed = time.perf_counter_ns() - started
    for fams in (fam, mirror):
        if fams is None:
            continue
        fams["runs"].labels(path=path).inc()
        fams["points"].labels().inc(points)
        fams["seconds"].labels().observe(elapsed)
    return AdvisorReport(
        spec=spec, curves=curves, sweep=tuple(sweep)
    )
