"""Fleet workload and cost-model specifications.

The advisor's input is a *fleet workload*: for every index, how often it
is scanned and with what selectivity mix.  Together with a total page
budget and a :class:`CostModel` this fully determines an advisory run,
so — like :class:`~repro.eval.spec.ExperimentSpec` — the whole thing is
one JSON-round-trippable value (``repro advise --spec FILE`` replays a
saved one byte for byte, and the serving tier's ``advise`` request
carries the same payload on the wire).

Wire format (``fleet`` required; everything else optional)::

    {
      "fleet": [
        {"index": "synthetic-...", "scans_per_second": 120.0,
         "selectivities": [
            {"sigma": 0.05, "weight": 0.5},
            {"sigma": 0.2, "sargable": 0.5, "weight": 0.3}
         ]}
      ],
      "estimator": "epfis",
      "budgets": [64, 128, 256],
      "costs": {"page_bytes": 8192, "ram_dollars_per_mb": 0.005,
                "disk_dollars": 300.0,
                "disk_accesses_per_second": 10000.0,
                "sensitivity": [0.5, 2.0]},
      "oracle": "auto"
    }

Defaults are omitted on serialization (house style: a default-valued
spec renders the minimal file), and unknown keys are rejected so a typo
never silently changes an advisory.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Tuple, Union

from repro.errors import AdvisorError
from repro.estimators.registry import available_estimators

#: Selectivity mix assumed when a workload does not specify one: mostly
#: small range scans with a tail of medium and large ones.
DEFAULT_SELECTIVITY_MIX: Tuple[Tuple[float, float, float], ...] = (
    (0.05, 1.0, 0.5),
    (0.2, 1.0, 0.3),
    (0.5, 1.0, 0.2),
)

#: Oracle verification modes: ``auto`` runs the exhaustive DP only when
#: the fleet is small enough (see :mod:`repro.advisor.allocator`),
#: ``always`` forces it, ``never`` skips it.
ORACLE_MODES = ("auto", "always", "never")


@dataclass(frozen=True)
class SelectivityClass:
    """One scan shape in an index's mix: ``(sigma, S)`` plus a weight."""

    sigma: float
    sargable: float = 1.0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.sigma <= 1.0:
            raise AdvisorError(
                f"selectivity sigma must be in (0, 1], got {self.sigma}"
            )
        if not 0.0 < self.sargable <= 1.0:
            raise AdvisorError(
                f"sargable selectivity must be in (0, 1], got "
                f"{self.sargable}"
            )
        if not self.weight > 0.0:
            raise AdvisorError(
                f"selectivity-class weight must be > 0, got {self.weight}"
            )

    def to_dict(self) -> dict:
        """JSON form with defaulted fields omitted."""
        doc = {"sigma": self.sigma}
        if self.sargable != 1.0:
            doc["sargable"] = self.sargable
        if self.weight != 1.0:
            doc["weight"] = self.weight
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "SelectivityClass":
        """Parse one selectivity class, rejecting unknown keys."""
        if not isinstance(doc, dict):
            raise AdvisorError(
                f"selectivity class must be an object, got "
                f"{type(doc).__name__}"
            )
        unknown = sorted(set(doc) - {"sigma", "weight", "sargable"})
        if unknown:
            raise AdvisorError(
                f"unknown selectivity-class keys {unknown}"
            )
        if "sigma" not in doc:
            raise AdvisorError("selectivity class is missing 'sigma'")
        return cls(
            sigma=float(doc["sigma"]),
            sargable=float(doc.get("sargable", 1.0)),
            weight=float(doc.get("weight", 1.0)),
        )


def default_selectivity_classes() -> Tuple[SelectivityClass, ...]:
    """The default mix as :class:`SelectivityClass` values."""
    return tuple(
        SelectivityClass(sigma, sargable, weight)
        for sigma, sargable, weight in DEFAULT_SELECTIVITY_MIX
    )


@dataclass(frozen=True)
class IndexWorkload:
    """One index's traffic: scan rate times a selectivity mix.

    ``scans_per_second`` is the paper's missing production dimension —
    PF(B) prices one scan, the advisor prices a *rate* — and the class
    weights (normalized at evaluation time) describe what those scans
    look like.
    """

    index: str
    scans_per_second: float = 1.0
    classes: Tuple[SelectivityClass, ...] = field(
        default_factory=default_selectivity_classes
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "classes", tuple(self.classes))
        if not self.index or not isinstance(self.index, str):
            raise AdvisorError(
                f"workload index name must be a non-empty string, got "
                f"{self.index!r}"
            )
        if not self.scans_per_second > 0.0:
            raise AdvisorError(
                f"scans_per_second must be > 0, got "
                f"{self.scans_per_second}"
            )
        if not self.classes:
            raise AdvisorError(
                f"workload for index {self.index!r} needs at least one "
                f"selectivity class"
            )

    def to_dict(self) -> dict:
        """JSON form with defaulted fields omitted."""
        doc: dict = {"index": self.index}
        if self.scans_per_second != 1.0:
            doc["scans_per_second"] = self.scans_per_second
        if self.classes != default_selectivity_classes():
            doc["selectivities"] = [c.to_dict() for c in self.classes]
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "IndexWorkload":
        """Parse one fleet entry, rejecting unknown keys."""
        if not isinstance(doc, dict):
            raise AdvisorError(
                f"fleet entry must be an object, got "
                f"{type(doc).__name__}"
            )
        unknown = sorted(
            set(doc) - {"index", "scans_per_second", "selectivities"}
        )
        if unknown:
            raise AdvisorError(f"unknown fleet-entry keys {unknown}")
        if "index" not in doc:
            raise AdvisorError("fleet entry is missing 'index'")
        raw = doc.get("selectivities")
        if raw is None:
            classes = default_selectivity_classes()
        else:
            if not isinstance(raw, list) or not raw:
                raise AdvisorError(
                    f"'selectivities' must be a non-empty array, got "
                    f"{raw!r}"
                )
            classes = tuple(
                SelectivityClass.from_dict(entry) for entry in raw
            )
        return cls(
            index=str(doc["index"]),
            scans_per_second=float(doc.get("scans_per_second", 1.0)),
            classes=classes,
        )


@dataclass(frozen=True)
class CostModel:
    """Five-minute-rule economics (Gray & Graefe, SIGMOD Record 1997).

    The break-even reference interval — how rarely a page may be
    touched and still earn its memory rent — is::

        (pages_per_mb / disk_accesses_per_second)
            * (disk_dollars / ram_dollars_per_mb)

    Defaults are deliberately round modern-ish numbers (8 KiB pages,
    ~$5/GB server DRAM, a ~$300 device sustaining 10k IOPS); every run
    reports its cost model, and ``sensitivity`` lists RAM-price scale
    factors the report re-prices under.
    """

    page_bytes: int = 8192
    ram_dollars_per_mb: float = 0.005
    disk_dollars: float = 300.0
    disk_accesses_per_second: float = 10_000.0
    sensitivity: Tuple[float, ...] = (0.5, 2.0)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "sensitivity", tuple(self.sensitivity)
        )
        if self.page_bytes < 1:
            raise AdvisorError(
                f"page_bytes must be >= 1, got {self.page_bytes}"
            )
        for name in (
            "ram_dollars_per_mb",
            "disk_dollars",
            "disk_accesses_per_second",
        ):
            if not getattr(self, name) > 0.0:
                raise AdvisorError(
                    f"{name} must be > 0, got {getattr(self, name)}"
                )
        if any(not factor > 0.0 for factor in self.sensitivity):
            raise AdvisorError(
                f"sensitivity factors must be > 0, got "
                f"{self.sensitivity}"
            )

    @property
    def pages_per_mb(self) -> float:
        """Buffer pages per MiB of RAM."""
        return (1 << 20) / self.page_bytes

    @property
    def ram_dollars_per_page(self) -> float:
        """Capital cost of keeping one page resident."""
        return self.ram_dollars_per_mb / self.pages_per_mb

    @property
    def dollars_per_access_per_second(self) -> float:
        """Capital cost of sustaining one disk access per second."""
        return self.disk_dollars / self.disk_accesses_per_second

    def break_even_interval_s(self, ram_scale: float = 1.0) -> float:
        """Five-minute-rule break-even reference interval in seconds."""
        return (
            self.pages_per_mb / self.disk_accesses_per_second
        ) * (self.disk_dollars / (self.ram_dollars_per_mb * ram_scale))

    def to_dict(self) -> dict:
        """JSON form with defaulted fields omitted."""
        doc: dict = {}
        default = CostModel()
        for key in (
            "page_bytes",
            "ram_dollars_per_mb",
            "disk_dollars",
            "disk_accesses_per_second",
        ):
            if getattr(self, key) != getattr(default, key):
                doc[key] = getattr(self, key)
        if self.sensitivity != default.sensitivity:
            doc["sensitivity"] = list(self.sensitivity)
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "CostModel":
        """Parse a cost model, rejecting unknown keys."""
        if not isinstance(doc, dict):
            raise AdvisorError(
                f"'costs' must be an object, got {type(doc).__name__}"
            )
        known = {
            "page_bytes", "ram_dollars_per_mb", "disk_dollars",
            "disk_accesses_per_second", "sensitivity",
        }
        unknown = sorted(set(doc) - known)
        if unknown:
            raise AdvisorError(f"unknown 'costs' keys {unknown}")
        default = cls()
        return cls(
            page_bytes=int(doc.get("page_bytes", default.page_bytes)),
            ram_dollars_per_mb=float(
                doc.get("ram_dollars_per_mb", default.ram_dollars_per_mb)
            ),
            disk_dollars=float(
                doc.get("disk_dollars", default.disk_dollars)
            ),
            disk_accesses_per_second=float(
                doc.get(
                    "disk_accesses_per_second",
                    default.disk_accesses_per_second,
                )
            ),
            sensitivity=tuple(
                float(f) for f in doc.get(
                    "sensitivity", default.sensitivity
                )
            ),
        )


@dataclass(frozen=True)
class AdvisorSpec:
    """One fleet advisory, fully specified.

    ``budgets`` may be empty: the advisor then derives a default sweep
    from the fleet's total table pages (see
    :func:`~repro.advisor.advisor.default_budget_sweep`).  Budgets are
    normalized to a sorted, duplicate-free tuple.
    """

    fleet: Tuple[IndexWorkload, ...]
    estimator: str = "epfis"
    budgets: Tuple[int, ...] = ()
    costs: CostModel = field(default_factory=CostModel)
    oracle: str = "auto"

    def __post_init__(self) -> None:
        object.__setattr__(self, "fleet", tuple(self.fleet))
        if not self.fleet:
            raise AdvisorError(
                "an advisor spec needs at least one fleet index"
            )
        names = [w.index for w in self.fleet]
        if len(set(names)) != len(names):
            duplicates = sorted(
                {n for n in names if names.count(n) > 1}
            )
            raise AdvisorError(
                f"fleet lists duplicate indexes {duplicates}"
            )
        known = set(available_estimators())
        if (
            not isinstance(self.estimator, str)
            or self.estimator.lower() not in known
        ):
            raise AdvisorError(
                f"unknown estimator {self.estimator!r}; available: "
                f"{', '.join(sorted(known))}"
            )
        budgets = []
        for budget in self.budgets:
            if (
                isinstance(budget, bool)
                or not isinstance(budget, int)
                or budget < 1
            ):
                raise AdvisorError(
                    f"budgets must be integers >= 1, got {budget!r}"
                )
            budgets.append(budget)
        object.__setattr__(
            self, "budgets", tuple(sorted(set(budgets)))
        )
        if self.oracle not in ORACLE_MODES:
            raise AdvisorError(
                f"oracle mode must be one of {ORACLE_MODES}, got "
                f"{self.oracle!r}"
            )

    def workload_for(self, index: str) -> IndexWorkload:
        """The fleet entry for ``index``."""
        for workload in self.fleet:
            if workload.index == index:
                return workload
        raise AdvisorError(f"fleet has no workload for index {index!r}")

    # ------------------------------------------------------------------
    # dict / JSON round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready dictionary form (regenerates this spec exactly)."""
        payload: dict = {
            "fleet": [w.to_dict() for w in self.fleet],
        }
        if self.estimator != "epfis":
            payload["estimator"] = self.estimator
        if self.budgets:
            payload["budgets"] = list(self.budgets)
        costs = self.costs.to_dict()
        if costs:
            payload["costs"] = costs
        if self.oracle != "auto":
            payload["oracle"] = self.oracle
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "AdvisorSpec":
        """Rebuild a spec from :meth:`to_dict` output (or hand-written
        JSON), rejecting unknown keys."""
        if not isinstance(payload, dict):
            raise AdvisorError(
                f"advisor spec must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        known = {"fleet", "estimator", "budgets", "costs", "oracle"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise AdvisorError(
                f"unknown advisor-spec keys {unknown}; known: "
                f"{sorted(known)}"
            )
        if "fleet" not in payload:
            raise AdvisorError("advisor spec is missing 'fleet'")
        fleet = payload["fleet"]
        if not isinstance(fleet, list):
            raise AdvisorError(
                f"'fleet' must be an array, got {type(fleet).__name__}"
            )
        budgets = payload.get("budgets", [])
        if not isinstance(budgets, list):
            raise AdvisorError(
                f"'budgets' must be an array, got "
                f"{type(budgets).__name__}"
            )
        return cls(
            fleet=tuple(IndexWorkload.from_dict(doc) for doc in fleet),
            estimator=payload.get("estimator", "epfis"),
            budgets=tuple(budgets),
            costs=CostModel.from_dict(payload.get("costs", {})),
            oracle=payload.get("oracle", "auto"),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "AdvisorSpec":
        """Parse a spec from :meth:`to_json` output."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise AdvisorError(
                f"invalid advisor-spec JSON: {exc}"
            ) from exc
        return cls.from_dict(payload)

    def save(self, path: Union[str, Path]) -> None:
        """Write the spec to a JSON file."""
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "AdvisorSpec":
        """Read a spec previously written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise AdvisorError(
                f"advisor spec file {str(path)!r} does not exist"
            )
        return cls.from_json(path.read_text(encoding="utf-8"))


def uniform_fleet(
    index_names: Sequence[str],
    scans_per_second: float = 1.0,
) -> Tuple[IndexWorkload, ...]:
    """A fleet giving every index the same rate and the default mix.

    The CLI's no-spec path: point the advisor at a catalog and it
    assumes uniform traffic — good enough for a first budget sweep,
    replaced by a real workload spec when one exists.
    """
    return tuple(
        IndexWorkload(index=name, scans_per_second=scans_per_second)
        for name in index_names
    )
