"""The cost model for access-path selection.

Costs are measured in *page fetches*, "a major component of the cost of an
access plan" (Section 2).  Sorting, when required, is charged as a
configurable per-record penalty expressed in equivalent page fetches — a
deliberately simple surrogate (the paper does not model sort costs; it only
notes that an unordered access method "adds to the cost of the retrieval").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OptimizerError


@dataclass(frozen=True)
class CostModel:
    """Knobs of the plan-cost computation.

    ``sort_penalty_per_record`` converts a required sort of ``n`` records
    into equivalent page fetches (default approximates an external merge
    sort writing and reading each record once: 2 / records_per_page with
    the common R = 50 gives 0.04).

    ``index_page_overhead`` charges for reading index leaf pages during a
    scan, as a fraction of the examined entries (0 disables it; the paper's
    estimates cover data pages only).
    """

    sort_penalty_per_record: float = 0.04
    index_page_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.sort_penalty_per_record < 0:
            raise OptimizerError(
                f"sort_penalty_per_record must be >= 0, got "
                f"{self.sort_penalty_per_record}"
            )
        if self.index_page_overhead < 0:
            raise OptimizerError(
                f"index_page_overhead must be >= 0, got "
                f"{self.index_page_overhead}"
            )

    def sort_cost(self, records: float) -> float:
        """Equivalent page fetches to sort ``records`` records."""
        if records < 0:
            raise OptimizerError(f"records must be >= 0, got {records}")
        return self.sort_penalty_per_record * records

    def index_overhead_cost(self, entries_examined: float) -> float:
        """Equivalent page fetches for walking the index entries."""
        if entries_examined < 0:
            raise OptimizerError(
                f"entries_examined must be >= 0, got {entries_examined}"
            )
        return self.index_page_overhead * entries_examined
