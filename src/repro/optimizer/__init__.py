"""Access-path selection: the motivating application (Section 2).

"The optimizer may have several access plans to choose from: (1) perform a
table scan ... (2) use a partial scan on a relevant index ... (3) use a full
scan on a relevant index to obtain the desired sort order ..."

This subpackage implements that choice with page fetches as the cost: a
table-scan plan costs exactly ``T``; index-scan plans cost whatever the
configured page-fetch estimator predicts, plus an optional sort penalty when
the plan's output order does not satisfy a required order.  Swapping the
estimator (EPFIS vs the baselines) changes which plan wins — the ablation
bench quantifies how often each estimator picks the truly cheapest plan.
"""

from repro.optimizer.access_path import (
    AccessPlan,
    IndexScanPlan,
    PlanChoice,
    TableScanPlan,
    choose_access_plan,
)
from repro.optimizer.cost import CostModel

__all__ = [
    "AccessPlan",
    "CostModel",
    "IndexScanPlan",
    "PlanChoice",
    "TableScanPlan",
    "choose_access_plan",
]
