"""Enumerating and choosing access plans (Section 2).

"The number of basic access plans to be considered is the number of
relevant indexes plus one (for the table scan)."  A query here is a key
range on one column (optionally with a sargable predicate baked into the
scan spec) plus an optional required output order; an index is *relevant*
if it can evaluate the range (it indexes that column) or deliver the order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import OptimizerError
from repro.estimators.base import PageFetchEstimator
from repro.optimizer.cost import CostModel
from repro.storage.index import Index
from repro.storage.table import Table
from repro.workload.scans import ScanSpec


@dataclass(frozen=True)
class AccessPlan:
    """A costed access plan."""

    description: str
    page_fetches: float
    sort_fetch_equivalent: float

    @property
    def total_cost(self) -> float:
        """Page fetches plus the sort penalty, in fetch units."""
        return self.page_fetches + self.sort_fetch_equivalent


@dataclass(frozen=True)
class TableScanPlan(AccessPlan):
    """Full table scan: fetches exactly T pages, then sorts if required."""


@dataclass(frozen=True)
class IndexScanPlan(AccessPlan):
    """(Partial) index scan costed by a page-fetch estimator."""

    index_name: str = ""
    estimator_name: str = ""


@dataclass(frozen=True)
class PlanChoice:
    """The selected plan plus the full costed alternatives."""

    chosen: AccessPlan
    alternatives: Tuple[AccessPlan, ...]

    def costs(self) -> Dict[str, float]:
        """Map each alternative's description to its total cost."""
        return {p.description: p.total_cost for p in self.alternatives}


def choose_access_plan(
    table: Table,
    scan: ScanSpec,
    candidate_indexes: Sequence[Tuple[Index, PageFetchEstimator]],
    buffer_pages: int,
    order_required: bool = False,
    ordering_column: Optional[str] = None,
    cost_model: Optional[CostModel] = None,
) -> PlanChoice:
    """Cost every basic plan and pick the cheapest.

    ``candidate_indexes`` pairs each relevant index with the estimator the
    optimizer should consult for it.  When ``order_required``, plans whose
    output is not ordered on ``ordering_column`` pay the sort penalty on the
    qualifying records.
    """
    if buffer_pages < 1:
        raise OptimizerError(f"buffer_pages must be >= 1, got {buffer_pages}")
    model = cost_model or CostModel()
    selectivity = scan.selectivity()
    qualifying_records = selectivity.combined * table.record_count

    plans: List[AccessPlan] = []

    sort_after_table_scan = (
        model.sort_cost(qualifying_records) if order_required else 0.0
    )
    plans.append(
        TableScanPlan(
            description=f"table scan({table.name})",
            page_fetches=float(table.page_count),
            sort_fetch_equivalent=sort_after_table_scan,
        )
    )

    for index, estimator in candidate_indexes:
        if index.table is not table:
            raise OptimizerError(
                f"index {index.name!r} does not belong to table "
                f"{table.name!r}"
            )
        fetches = estimator.estimate(selectivity, buffer_pages)
        fetches += model.index_overhead_cost(
            selectivity.range_selectivity * index.entry_count
        )
        delivers_order = (
            ordering_column is None or index.column == ordering_column
        )
        sort_cost = (
            0.0
            if (not order_required or delivers_order)
            else model.sort_cost(qualifying_records)
        )
        plans.append(
            IndexScanPlan(
                description=f"index scan({index.name})",
                page_fetches=fetches,
                sort_fetch_equivalent=sort_cost,
                index_name=index.name,
                estimator_name=estimator.name,
            )
        )

    chosen = min(plans, key=lambda p: p.total_cost)
    return PlanChoice(chosen=chosen, alternatives=tuple(plans))
