"""Command-line interface: ``python -m repro <command>``.

Commands mirror how a DBA would interact with EPFIS:

* ``generate``  — build a synthetic dataset and report its vital signs.
* ``fit``       — run LRU-Fit on a generated dataset and write the catalog.
* ``estimate``  — query a saved catalog for page-fetch estimates.
* ``experiment``— run one error-behaviour experiment (a paper figure).
* ``gwl``       — build the simulated GWL database and print Tables 2-3.
* ``locality``  — profile a dataset's index-order trace locality.
* ``contention``— simulate concurrent scans sharing one LRU pool.
* ``perf``      — time one LRU-Fit pass per stack-distance kernel.
* ``verify``    — run the differential verification harness (LRU oracle
  cross-checks, metamorphic invariants, golden-fixture regression).
* ``serve``     — serve estimates over NDJSON/TCP with micro-batching
  across per-tenant catalog namespaces (see :mod:`repro.serving`).
* ``loadgen``   — drive a deterministic closed- or open-loop load
  against the serving tier and report p50/p99 latency and QPS.
* ``refresh``   — run the online catalog refresh loop (windowed
  decayed fit, drift detection, breaker-guarded roll-forward with
  rollback) against a synthetic live feed — see :mod:`repro.refresh`.
* ``advise``    — fleet-wide buffer capacity planning: allocate a total
  page budget across a catalog's indexes by marginal fetch reduction
  (greedy over convexified PF(B) curves, DP-oracle-verified) and price
  the result with the five-minute rule — see :mod:`repro.advisor`.
* ``metrics``   — print the standard metric-family schema this build
  exports (Prometheus text or canonical JSONL).

``fit``, ``estimate``, ``experiment``, ``verify``, ``serve``,
``loadgen``, ``refresh``, and ``advise`` additionally take
``--metrics-out FILE`` (export every metric recorded during the run;
``-`` for stdout; format by extension or ``--metrics-format``) and
``--trace-out FILE`` (stream the run's span tree as JSON lines) — see
:mod:`repro.obs`.  When an export targets stdout (``-``) the command's
human-readable report moves to stderr so stdout stays machine-parseable
(``repro experiment --metrics-out - | promcheck -`` just works).
Without these flags the observability layer stays disabled and costs
nothing.

``fit`` and ``experiment`` accept ``--policy`` to run the statistics
pass under a non-LRU replacement policy kernel (``clock``, ``2q``,
``lecar-tinylfu``); the fitted curve and the catalog record carry the
policy, and ``estimate --policy`` asserts a served record was fitted
under the expected one.  ``experiment --policy-ablation`` skips the
error-behaviour experiment and instead prints the LRU-drift table (how
far each policy's fetch curve departs from the LRU curve per trace
family) — see :mod:`repro.eval.ablation`.

Every command is deterministic given its ``--seed``.  ``experiment`` is a
thin builder over the declarative :class:`~repro.eval.spec.ExperimentSpec`:
the positional flags construct a spec, ``--spec FILE`` runs a saved one,
and ``--save-spec FILE`` writes the flags out as a spec file — the three
paths produce byte-identical output for equivalent parameters.
``estimate`` serves from a saved catalog through the
:class:`~repro.engine.EstimationEngine`, so any registered estimator
(``--estimator``) can answer, not just EPFIS; ``--fallback`` arms the
engine's degraded-mode chain so a failing estimator is answered by the
next name instead of an error.

Long statistics passes survive interruption: ``fit`` and ``experiment``
accept ``--checkpoint DIR`` (periodic atomic snapshots of the kernel
state) and ``--resume`` (continue an interrupted pass from the latest
snapshot); a resumed run produces byte-identical results — see
:mod:`repro.resilience.checkpoint`.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import List, Optional

from repro.buffer.kernels import available_kernels, available_policy_kernels
from repro.catalog.catalog import SystemCatalog
from repro.datagen.gwl import build_gwl_database
from repro.datagen.synthetic import SyntheticSpec, build_synthetic_dataset
from repro.engine import EstimationEngine
from repro.errors import ReproError
from repro.estimators.epfis import LRUFit, LRUFitConfig
from repro.estimators.registry import (
    PAPER_ESTIMATOR_NAMES,
    available_estimators,
)
from repro.eval.figures import table2_rows, table3_rows
from repro.eval.report import format_table
from repro.eval.spec import ExperimentSpec, run_experiment_spec
from repro.obs.metrics import global_registry
from repro.obs.session import observability_session
from repro.types import ScanSelectivity


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--records", type=int, default=100_000,
                        help="number of records N (default 100000)")
    parser.add_argument("--distinct", type=int, default=1_000,
                        help="distinct key values I (default 1000)")
    parser.add_argument("--records-per-page", type=int, default=40,
                        help="records per page R (default 40)")
    parser.add_argument("--theta", type=float, default=0.0,
                        help="generalized Zipf skew (0 = uniform)")
    parser.add_argument("--window", type=float, default=0.2,
                        help="window clustering parameter K in [0, 1]")
    parser.add_argument("--noise", type=float, default=0.05,
                        help="placement noise factor (default 0.05)")
    parser.add_argument("--seed", type=int, default=0)


def _spec_from_args(args: argparse.Namespace) -> SyntheticSpec:
    return SyntheticSpec(
        records=args.records,
        distinct_values=args.distinct,
        records_per_page=args.records_per_page,
        theta=args.theta,
        window=args.window,
        noise=args.noise,
        seed=args.seed,
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = build_synthetic_dataset(_spec_from_args(args))
    stats = LRUFit().run(dataset.index)
    print(
        format_table(
            ["property", "value"],
            [
                ("dataset", dataset.name),
                ("pages (T)", stats.table_pages),
                ("records (N)", stats.table_records),
                ("distinct keys (I)", stats.distinct_keys),
                ("clustering factor (C)", f"{stats.clustering_factor:.4f}"),
                ("fetches at B_min", stats.f_min),
                ("fetches at B=1", stats.fetches_b1),
            ],
            title="Generated dataset",
        )
    )
    return 0


def _checkpointer_from_args(args: argparse.Namespace):
    """Build the Checkpointer for ``--checkpoint``; None when unset."""
    if not args.checkpoint:
        if args.resume:
            raise ReproError("--resume requires --checkpoint DIR")
        return None
    from repro.resilience.checkpoint import Checkpointer, CheckpointPolicy

    return Checkpointer(
        args.checkpoint,
        CheckpointPolicy(every_refs=args.checkpoint_every),
    )


def _add_checkpoint_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.resilience.checkpoint import DEFAULT_EVERY_REFS

    parser.add_argument("--checkpoint", default=None, metavar="DIR",
                        help="checkpoint the statistics pass into DIR "
                             "(periodic atomic snapshots)")
    parser.add_argument("--resume", action="store_true",
                        help="resume an interrupted pass from the latest "
                             "checkpoint in --checkpoint DIR")
    parser.add_argument("--checkpoint-every", type=int,
                        default=DEFAULT_EVERY_REFS, metavar="REFS",
                        help="snapshot cadence in consumed references "
                             f"(default {DEFAULT_EVERY_REFS})")


def _add_shard_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--shards", type=int, default=1,
                        help="split the statistics pass into N contiguous "
                             "shards merged into one curve (default 1: "
                             "single pass; exact kernels stay "
                             "bit-identical)")
    parser.add_argument("--shard-workers", type=int, default=1,
                        help="process-pool workers for the sharded pass "
                             "(1 = serial, 0 = one per core)")


def _cmd_fit(args: argparse.Namespace) -> int:
    dataset = build_synthetic_dataset(_spec_from_args(args))
    config = LRUFitConfig(
        segments=args.segments,
        grid_rule=args.grid_rule,
        shards=args.shards,
        shard_workers=args.shard_workers,
        policy=args.policy,
    )
    stats = LRUFit(config).run(
        dataset.index,
        checkpoint=_checkpointer_from_args(args),
        resume=args.resume,
    )
    from pathlib import Path

    if args.append and Path(args.catalog).exists():
        catalog = SystemCatalog.load(args.catalog)
    else:
        catalog = SystemCatalog()
    catalog.put(stats)
    catalog.save(args.catalog)
    print(
        f"wrote catalog entry {stats.index_name!r} "
        f"({stats.fpf_curve.segment_count} segments, "
        f"C = {stats.clustering_factor:.4f}, "
        f"policy = {stats.policy}) to {args.catalog}"
        + (f" ({len(catalog)} entries)" if args.append else "")
    )
    return 0


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="export metrics recorded during the run "
                             "('-' for stdout)")
    parser.add_argument("--metrics-format",
                        choices=("auto", "prom", "jsonl"), default="auto",
                        help="metrics export format (auto: by file "
                             "extension; '-' means prom)")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write the run's span tree as JSON lines "
                             "('-' for stdout)")


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs.export import to_jsonl, to_prometheus
    from repro.obs.instruments import register_standard_families
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    register_standard_families(registry)
    render = to_prometheus if args.format == "prom" else to_jsonl
    sys.stdout.write(render(registry.snapshot()))
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    engine = EstimationEngine(
        args.catalog,
        fallback_chain=args.fallback,
        registry=global_registry(),
    )
    names = [args.index] if args.index else engine.index_names()
    selectivity = ScanSelectivity(args.sigma, args.sargable)
    rows = []
    display_name = args.estimator
    for name in names:
        if args.policy is not None:
            fitted = engine.statistics(name).policy
            if fitted != args.policy:
                raise ReproError(
                    f"catalog entry {name!r} was fitted under policy "
                    f"{fitted!r}, not {args.policy!r}; refit with "
                    f"'repro fit --policy {args.policy}' or drop "
                    f"--policy"
                )
        estimates = engine.estimate_many(
            name,
            args.estimator,
            [(selectivity, buffer_pages) for buffer_pages in args.buffers],
        )
        display_name = engine.estimator(name, args.estimator).name
        for buffer_pages, estimate in zip(args.buffers, estimates):
            rows.append((name, buffer_pages, f"{estimate:.1f}"))
    print(
        format_table(
            ["index", "buffer pages", "estimated fetches"],
            rows,
            title=(
                f"{display_name} estimates "
                f"(sigma={args.sigma}, S={args.sargable})"
            ),
        )
    )
    return 0


def _experiment_spec_from_args(args: argparse.Namespace) -> ExperimentSpec:
    """The positional ``experiment`` flags, as a declarative spec."""
    return ExperimentSpec(
        dataset=_spec_from_args(args),
        estimators=tuple(args.estimators or PAPER_ESTIMATOR_NAMES),
        scan_count=args.scans,
        buffer_floor=args.floor,
        kernel=args.kernel,
        workers=args.workers,
        seed=args.seed,
        shards=args.shards,
        shard_workers=args.shard_workers,
        policy=args.policy,
    )


def _cmd_policy_ablation(args: argparse.Namespace) -> int:
    """``experiment --policy-ablation``: print the LRU-drift table."""
    from repro.eval.ablation import run_policy_ablation

    result = run_policy_ablation(
        policies=args.policies,
        families=args.families,
        kernel=args.kernel,
    )
    print(
        f"LRU-drift ablation — policy fetch curves vs the "
        f"{result.kernel!r} LRU curve, per corpus family"
    )
    print(result.render())
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.policy_ablation:
        return _cmd_policy_ablation(args)
    if args.spec:
        spec = ExperimentSpec.load(args.spec)
    else:
        spec = _experiment_spec_from_args(args)
    if args.save_spec:
        spec.save(args.save_spec)
        print(f"wrote experiment spec to {args.save_spec}")
        return 0
    result = run_experiment_spec(
        spec,
        checkpoint=_checkpointer_from_args(args),
        resume=args.resume,
    )
    grid = result.buffer_grid
    rows = []
    for buffer_pages, percent in zip(grid, grid.percents()):
        row: List[object] = [buffer_pages, f"{percent:.0f}%"]
        for curve in result.curves:
            error = dict(curve.points)[buffer_pages]
            row.append(f"{100 * error:+.1f}")
        rows.append(row)
    print(
        format_table(
            ["B", "B/T", *(c.estimator for c in result.curves)],
            rows,
            title=f"Error metric (%) by buffer size — {result.dataset}",
        )
    )
    return 0


def _cmd_locality(args: argparse.Namespace) -> int:
    from repro.trace.locality import summarize_locality

    dataset = build_synthetic_dataset(_spec_from_args(args))
    trace = dataset.index.page_sequence()
    summary = summarize_locality(trace)
    print(
        format_table(
            ["property", "value"],
            [
                ("dataset", dataset.name),
                ("references", summary.references),
                ("distinct pages (A)", summary.distinct_pages),
                ("mean run length", f"{summary.mean_run_length:.2f}"),
                ("reuse fraction", f"{summary.reuse_fraction:.1%}"),
                ("median reuse depth", summary.median_reuse_depth),
                ("p90 reuse depth", summary.depth_p90),
            ],
            title="Index-order trace locality",
        )
    )
    return 0


def _cmd_contention(args: argparse.Namespace) -> int:
    from repro.workload.interleave import simulate_contention

    datasets = [
        build_synthetic_dataset(
            SyntheticSpec(
                records=args.records,
                distinct_values=args.distinct,
                records_per_page=args.records_per_page,
                theta=args.theta,
                window=args.window,
                noise=args.noise,
                seed=args.seed + i,
            )
        )
        for i in range(args.scans)
    ]
    traces = [d.index.page_sequence() for d in datasets]
    result = simulate_contention(traces, args.buffer)
    print(
        format_table(
            ["scan", "dedicated fetches", "shared-pool fetches"],
            [
                (i, dedicated, shared)
                for i, (dedicated, shared) in enumerate(
                    zip(result.dedicated_fetches, result.per_scan_fetches)
                )
            ],
            title=(
                f"{args.scans} full scans sharing a {args.buffer}-page "
                f"LRU pool (overhead "
                f"{100 * result.contention_overhead:+.1f}%)"
            ),
        )
    )
    return 0


def _cmd_perf_sharded(args: argparse.Namespace) -> int:
    """Time one sharded pass against the single-process equivalent."""
    from repro.buffer.kernels import as_shard_source
    from repro.perf.shard import shard_timing, single_pass

    kernel = args.kernels[0] if args.kernels else "compact"
    if args.paper_scale:
        from repro.trace.paper_scale import (
            PAPER_SCALE_PAGES,
            PAPER_SCALE_REFS,
            paper_scale_source,
        )

        refs = (
            args.paper_refs if args.paper_refs is not None
            else PAPER_SCALE_REFS
        )
        pages = (
            args.paper_pages if args.paper_pages is not None
            else PAPER_SCALE_PAGES
        )
        source = paper_scale_source(
            pattern=args.paper_pattern,
            refs=refs,
            pages=pages,
            seed=args.seed,
        )
        origin = (
            f"paper-scale {args.paper_pattern} "
            f"({refs} refs, {pages} pages)"
        )
    else:
        dataset = build_synthetic_dataset(_spec_from_args(args))
        source = as_shard_source(dataset.index.page_sequence())
        origin = f"{dataset.name} ({source.total_refs} refs)"
    shards = max(args.shards, 1)
    reference = single_pass(kernel, source)
    row = shard_timing(
        source, shards, args.shard_workers, kernel,
        exact_curve=reference["curve"],
    )
    single_ms = reference["wall_ns"] / 1e6
    rows = [
        (f"single {kernel}", f"{single_ms:.1f}", "1.00x", ""),
        (
            f"sharded x{row['shards']} "
            f"({args.shard_workers} worker(s))",
            f"{row['wall_ms']:.1f}",
            f"{reference['wall_ns'] / row['wall_ns']:.2f}x",
            f"merge {row['merge_ms']:.1f} ms; critical path "
            f"{row['critical_path_ms']:.1f} ms "
            f"({reference['wall_ns'] / row['critical_path_ns']:.2f}x)",
        ),
    ]
    print(
        format_table(
            ["pass", "wall ms", "speedup", "profile"],
            rows,
            title=f"Sharded LRU-Fit pass — {origin}",
        )
    )
    if not row["merged_equals_exact"]:
        print(
            "error: merged curve diverged from the single pass",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro.perf.timing import compare_kernels

    if args.paper_scale or args.shards > 1:
        return _cmd_perf_sharded(args)
    dataset = build_synthetic_dataset(_spec_from_args(args))
    trace = dataset.index.page_sequence()
    comparison = compare_kernels(
        trace, kernels=args.kernels or None, repeats=args.repeats
    )
    rows = []
    for t in comparison.timings:
        rows.append(
            (
                t.kernel,
                "yes" if t.exact else "no",
                f"{t.median_ns / 1e6:.1f}",
                f"{t.speedup:.2f}x",
                f"{t.max_rel_error_pct:.2f}",
                "ok" if t.agrees else "MISMATCH",
            )
        )
    print(
        format_table(
            ["kernel", "exact", "median ms", "speedup", "max err %",
             "agreement"],
            rows,
            title=(
                f"LRU-Fit pass per kernel — {dataset.name} "
                f"({comparison.references} refs, "
                f"{comparison.distinct_pages} pages)"
            ),
        )
    )
    if not comparison.all_agree:
        print("error: kernel disagreement detected", file=sys.stderr)
        return 1
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify import DEFAULT_GOLDEN_PATH, run_verification

    golden_path = (
        None if args.no_golden else (args.golden or DEFAULT_GOLDEN_PATH)
    )
    report = run_verification(
        families=args.families,
        names=args.cases,
        kernels=args.kernels,
        invariants=not args.no_invariants,
        golden_path=golden_path,
        regen=args.regen,
    )
    rows = []
    for case in report.cases:
        for result in case.differentials:
            if result.held_exact:
                status = (
                    "exact" if not result.mismatches
                    else f"{len(result.mismatches)} MISMATCHES"
                )
            else:
                status = (
                    f"band {100 * result.max_band_error:.2f}% "
                    f"/ {100 * result.error_bound:.0f}%"
                )
            if not result.streaming_consistent:
                status += " +stream-DIVERGED"
            if not result.sharded_consistent:
                status += " +shard-DIVERGED"
            rows.append(
                (
                    case.case,
                    result.kernel,
                    len(result.checked_sizes),
                    status,
                    "ok" if result.ok else "FAIL",
                )
            )
    print(
        format_table(
            ["case", "kernel", "sizes", "oracle agreement", "verdict"],
            rows,
            title=(
                f"Differential verification — {len(report.cases)} corpus "
                f"traces vs the LRU oracle"
            ),
        )
    )
    violations = [v for c in report.cases for v in c.violations]
    if args.no_invariants:
        print("invariants: skipped")
    else:
        print(f"invariants: {len(violations)} violation(s)")
        for violation in violations:
            print(f"  {violation}")
    if report.regenerated_path:
        print(f"goldens: regenerated {report.regenerated_path}")
    elif args.no_golden:
        print("goldens: skipped")
    elif report.golden_drift:
        print(f"goldens: {len(report.golden_drift)} drift(s)")
        for drift in report.golden_drift:
            print(f"  {drift}")
    else:
        print("goldens: no drift")
    if not report.ok:
        print("error: verification failed", file=sys.stderr)
        return 1
    return 0


def _add_serving_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.serving import (
        DEFAULT_BATCH_WINDOW_MS,
        DEFAULT_MAX_BATCH,
        DEFAULT_MAX_QUEUE,
        DEFAULT_TENANT_CACHE,
    )

    parser.add_argument("--tenant-root", required=True, metavar="DIR",
                        help="directory of per-tenant catalog namespaces "
                             "(<root>/<tenant>/catalog.json)")
    parser.add_argument("--batch-window-ms", type=float,
                        default=DEFAULT_BATCH_WINDOW_MS,
                        help="micro-batch coalescing window "
                             f"(default {DEFAULT_BATCH_WINDOW_MS} ms)")
    parser.add_argument("--max-batch", type=int,
                        default=DEFAULT_MAX_BATCH,
                        help="most requests coalesced per engine call "
                             f"(default {DEFAULT_MAX_BATCH})")
    parser.add_argument("--max-queue", type=int,
                        default=DEFAULT_MAX_QUEUE,
                        help="admission-control queue bound; beyond it "
                             f"requests shed (default {DEFAULT_MAX_QUEUE})")
    parser.add_argument("--tenant-cache", type=int,
                        default=DEFAULT_TENANT_CACHE,
                        help="tenant engines kept resident "
                             f"(default {DEFAULT_TENANT_CACHE})")
    parser.add_argument("--fallback", nargs="+", default=None,
                        choices=available_estimators(), metavar="NAME",
                        help="degraded-mode fallback chain for every "
                             "tenant engine")


def _serving_server(args: argparse.Namespace):
    from repro.serving import EstimationServer, ServingConfig

    config = ServingConfig(
        batch_window_ms=args.batch_window_ms,
        max_batch=args.max_batch,
        max_queue=args.max_queue,
        tenant_cache=args.tenant_cache,
        fallback_chain=(
            tuple(args.fallback) if args.fallback else None
        ),
    )
    return EstimationServer(args.tenant_root, config).start()


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.serving import ServingTCPServer

    server = _serving_server(args)
    tcp = ServingTCPServer(server, host=args.host, port=args.port)
    host, port = tcp.address
    tenants = server.tenants.tenant_names()

    # Graceful shutdown: SIGTERM/SIGINT stop accepting connections and
    # drain in-flight work instead of killing the process mid-batch.
    # The stop runs on a helper thread — socketserver's shutdown blocks
    # until the accept loop exits, and the handler interrupts that very
    # loop on the main thread, so calling it inline would deadlock.
    # Dispositions are process-global; restore them on the way out so
    # in-process callers (tests) don't leak the handlers.
    def _stop_from_signal(*_):
        threading.Thread(target=tcp.request_stop, daemon=True).start()

    previous_handlers = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous_handlers[signum] = signal.signal(
                signum, _stop_from_signal
            )
        except ValueError:
            # Not the main thread: serve without handlers.
            break

    print(
        f"serving {len(tenants)} tenant(s) "
        f"({', '.join(tenants) or 'none provisioned yet'}) "
        f"on {host}:{port} — batch window "
        f"{args.batch_window_ms} ms, max queue {args.max_queue}",
        flush=True,
    )
    if args.max_seconds is not None:
        timer = threading.Timer(args.max_seconds, tcp.request_stop)
        timer.daemon = True
        timer.start()
    try:
        tcp.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
        tcp.shutdown()
    metrics = server.metrics()
    print(
        f"served {metrics['completed']} request(s) in "
        f"{metrics['batches']} batch(es); rejected "
        f"{sum(metrics['rejected'].values())} "
        f"({metrics['rejected']})"
    )
    return 0


def _cmd_refresh(args: argparse.Namespace) -> int:
    import math

    from repro.catalog.store import CatalogStore
    from repro.refresh import (
        DriftingFeed,
        FaultyFeed,
        FeedPhase,
        RefreshConfig,
        RefreshController,
    )
    from repro.trace.paper_scale import PaperScaleSpec

    phases = [
        FeedPhase(
            0,
            PaperScaleSpec(
                refs=1,
                pages=args.pages,
                pattern=args.pattern,
                theta=args.theta,
                seed=args.seed,
            ),
        )
    ]
    if args.drift_at is not None:
        phases.append(
            FeedPhase(
                args.drift_at,
                PaperScaleSpec(
                    refs=1,
                    pages=(
                        args.drift_pages
                        if args.drift_pages is not None
                        else args.pages
                    ),
                    pattern=args.pattern,
                    theta=(
                        args.drift_theta
                        if args.drift_theta is not None
                        else args.theta
                    ),
                    seed=(
                        args.drift_seed
                        if args.drift_seed is not None
                        else args.seed + 1
                    ),
                ),
            )
        )
    feed = DriftingFeed(phases)
    if args.feed_fault_period:
        feed = FaultyFeed(
            feed, period=args.feed_fault_period, seed=args.seed
        )
    store = CatalogStore(args.catalog, history=args.history)
    config = RefreshConfig(
        index_name=args.index,
        window_refs=args.window,
        decay=args.decay,
        drift_threshold=args.drift_threshold,
        checkpoint_every=args.checkpoint_every,
        corrupt_publish_cycles=tuple(args.chaos_corrupt_publish or ()),
    )
    state_dir = (
        args.state_dir
        if args.state_dir is not None
        else f"{args.catalog}.refresh"
    )
    controller = RefreshController(store, feed, config, state_dir)
    results = controller.run(args.cycles)
    rows = [
        [
            result.cycle,
            f"[{result.start_ref}, {result.stop_ref})",
            (
                "new"
                if math.isinf(result.magnitude)
                else f"{result.magnitude:.4f}"
            ),
            result.action,
            result.version if result.version is not None else "-",
        ]
        for result in results
    ]
    print(
        format_table(
            ["cycle", "window", "drift", "action", "version"], rows
        )
    )
    metrics = controller.metrics()
    print(
        f"published {metrics['publishes']}, "
        f"rolled back {metrics['rollbacks']}, "
        f"quarantined {metrics['quarantined']}; "
        f"breaker {metrics['breaker_state']} "
        f"({metrics['breaker_opens']} open(s))"
    )
    current = store.current_version()
    print(
        f"serving version "
        f"{current if current is not None else '<none>'} "
        f"of retained {list(store.versions())}"
    )
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.serving import (
        TCPTransport,
        TenantCatalogs,
        WorkloadSpec,
        request_stream,
        run_closed_loop,
        run_open_loop,
        validate_tenant_name,
    )
    from repro.serving.loadgen import InProcessTransport

    tenants = TenantCatalogs(args.tenant_root,
                             cache_size=args.tenant_cache)
    names = args.tenant_names or tenants.tenant_names()
    if not names:
        raise ReproError(
            f"no tenant namespaces found under {args.tenant_root!r}; "
            f"provision one with `repro fit` + TenantCatalogs.save or "
            f"pass --tenant-names"
        )
    pools = []
    for name in names:
        validate_tenant_name(name)
        pools.append((name, tuple(tenants.engine(name).index_names())))
    spec = WorkloadSpec(
        tenants=tuple(names),
        tenant_indexes=tuple(pools),
        estimators=tuple(args.estimators or ("epfis",)),
        seed=args.seed,
    )
    requests = request_stream(spec, args.requests)
    if args.connect:
        host, _, port = args.connect.rpartition(":")
        if not host or not port.isdigit():
            raise ReproError(
                f"--connect wants HOST:PORT, got {args.connect!r}"
            )
        if args.mode == "open":
            raise ReproError(
                "open-loop mode drives an in-process server; drop "
                "--connect or use --mode closed"
            )
        result = run_closed_loop(
            lambda: TCPTransport(host, int(port)),
            requests,
            clients=args.clients,
        )
    else:
        server = _serving_server(args)
        try:
            if args.mode == "open":
                result = run_open_loop(server, requests, qps=args.qps)
            else:
                result = run_closed_loop(
                    lambda: InProcessTransport(server),
                    requests,
                    clients=args.clients,
                    server=server,
                )
        finally:
            server.close()
    latency = result.latency_ms()
    rows = [
        ("mode", result.mode),
        ("clients", result.clients),
        ("sent", result.sent),
        ("completed", result.completed),
        ("rejected", result.rejected),
        ("errors", result.errors),
        ("sustained QPS", f"{result.sustained_qps:.0f}"),
        ("p50 latency (ms)", f"{latency['p50']:.2f}"),
        ("p99 latency (ms)", f"{latency['p99']:.2f}"),
    ]
    if result.mode == "open":
        rows.insert(2, ("target QPS", f"{args.qps:.0f}"))
    mean_batch = result.server_metrics.get("mean_batch_size")
    if mean_batch is not None:
        rows.append(("mean batch size", f"{mean_batch:.2f}"))
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=(
                f"Load generation — {len(names)} tenant(s), "
                f"workload {result.workload_digest[:12]}"
            ),
        )
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json_module.dump(result.to_dict(), handle, indent=2,
                             sort_keys=True)
            handle.write("\n")
        print(f"wrote loadgen results to {args.out}")
    if not result.accounted:
        print(
            "error: request accounting mismatch (dropped-but-"
            "unreported requests)",
            file=sys.stderr,
        )
        return 1
    return 0


def _advisor_spec_from_args(args: argparse.Namespace):
    """The ``advise`` flags, as a declarative advisor spec."""
    from repro.advisor import AdvisorSpec, CostModel, uniform_fleet

    names = args.indexes
    if not names:
        engine = EstimationEngine(args.catalog)
        names = engine.index_names()
    if not names:
        raise ReproError(
            f"catalog {args.catalog!r} holds no indexes; run "
            f"`repro fit` (with --append for a multi-index fleet) first"
        )
    return AdvisorSpec(
        fleet=uniform_fleet(names, scans_per_second=args.frequency),
        estimator=args.estimator,
        budgets=tuple(args.budgets or ()),
        costs=CostModel(
            page_bytes=args.page_bytes,
            ram_dollars_per_mb=args.ram_dollars_per_mb,
            disk_dollars=args.disk_dollars,
            disk_accesses_per_second=args.disk_iops,
            sensitivity=tuple(args.sensitivity),
        ),
        oracle=args.oracle,
    )


def _cmd_advise(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.advisor import AdvisorSpec, advise

    if args.spec:
        spec = AdvisorSpec.load(args.spec)
    else:
        spec = _advisor_spec_from_args(args)
    if args.save_spec:
        spec.save(args.save_spec)
        print(f"wrote advisor spec to {args.save_spec}")
        return 0
    report = advise(
        args.catalog, spec, registry=global_registry(), path="cli"
    )
    doc = report.to_dict()
    sweep_rows = []
    for point in doc["sweep"]:
        allocation = " ".join(
            f"{name}={pages}"
            for name, pages in sorted(point["pages"].items())
        )
        sweep_rows.append(
            (
                point["budget"],
                point["pages_used"],
                f"{point['total_rate']:.1f}",
                f"{point['saved_rate']:.1f}",
                f"{point['ram_dollars']:.2f}",
                f"{point['disk_dollars']:.2f}",
                point["oracle"],
                allocation,
            )
        )
    print(
        format_table(
            ["budget", "used", "fetch/s", "saved/s", "RAM $",
             "disk $", "oracle", "allocation"],
            sweep_rows,
            title=(
                f"Budget sweep — {len(spec.fleet)} index(es), "
                f"estimator {spec.estimator}"
            ),
        )
    )
    final = doc["sweep"][-1]
    index_rows = []
    for entry in final["indexes"]:
        residency = entry["residency_interval_s"]
        index_rows.append(
            (
                entry["index"],
                entry["policy"],
                entry["pages"],
                f"{entry['fetch_rate']:.1f}",
                f"{entry['marginal_gain']:.3f}",
                "-" if residency is None else f"{residency:.1f}",
                "yes" if entry["pays_rent"] else "no",
            )
        )
    print()
    print(
        format_table(
            ["index", "policy", "pages", "fetch/s", "marginal gain",
             "residency s", "pays rent"],
            index_rows,
            title=f"Allocation at budget {final['budget']}",
        )
    )
    sensitivity = ", ".join(
        f"{factor} RAM price -> {interval:.0f} s"
        for factor, interval in sorted(final["sensitivity"].items())
    )
    print(
        f"five-minute-rule break-even: "
        f"{doc['break_even_interval_s']:.0f} s "
        f"(sensitivity: {sensitivity})"
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json_module.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote advisory report to {args.out}")
    return 0


def _cmd_gwl(args: argparse.Namespace) -> int:
    db = build_gwl_database(scale=args.scale, seed=args.seed)
    print(
        format_table(
            ["table", "pages", "records/page"],
            table2_rows(db),
            title=f"Table 2 (scale={args.scale})",
        )
    )
    print()
    print(
        format_table(
            ["column", "cardinality", "C measured (%)", "C paper (%)"],
            [
                (name, card, f"{measured:.1f}", target)
                for name, card, measured, target in table3_rows(db)
            ],
            title="Table 3",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "EPFIS reproduction: page-fetch estimation for index scans "
            "with finite LRU buffers"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_generate = sub.add_parser(
        "generate", help="build a synthetic dataset and print statistics"
    )
    _add_spec_arguments(p_generate)
    p_generate.set_defaults(handler=_cmd_generate)

    p_fit = sub.add_parser(
        "fit", help="run LRU-Fit and persist the catalog record"
    )
    _add_spec_arguments(p_fit)
    p_fit.add_argument("--catalog", required=True,
                       help="output catalog JSON path")
    p_fit.add_argument("--append", action="store_true",
                       help="merge into an existing catalog file instead "
                            "of overwriting it (build multi-index "
                            "fleets for `repro advise`)")
    p_fit.add_argument("--segments", type=int, default=6)
    p_fit.add_argument("--grid-rule", choices=("paper", "graefe"),
                       default="paper")
    p_fit.add_argument("--policy",
                       choices=("lru",) + available_policy_kernels(),
                       default="lru",
                       help="replacement policy the fetch curve is fitted "
                            "under (default lru: the paper's stack-"
                            "distance pass)")
    _add_shard_arguments(p_fit)
    _add_checkpoint_arguments(p_fit)
    _add_obs_arguments(p_fit)
    p_fit.set_defaults(handler=_cmd_fit)

    p_estimate = sub.add_parser(
        "estimate", help="estimate page fetches from a saved catalog"
    )
    p_estimate.add_argument("--catalog", required=True)
    p_estimate.add_argument("--index", default=None,
                            help="index name (default: all in catalog)")
    p_estimate.add_argument("--sigma", type=float, required=True,
                            help="range selectivity of the scan")
    p_estimate.add_argument("--sargable", type=float, default=1.0,
                            help="sargable-predicate selectivity S")
    p_estimate.add_argument("--buffers", type=int, nargs="+", required=True,
                            help="buffer sizes to estimate at")
    p_estimate.add_argument("--estimator", default="epfis",
                            choices=available_estimators(),
                            help="registered estimator to serve with "
                                 "(default epfis)")
    p_estimate.add_argument("--fallback", nargs="+", default=None,
                            choices=available_estimators(),
                            metavar="NAME",
                            help="degraded-mode fallback chain tried in "
                                 "order when the estimator fails")
    p_estimate.add_argument("--policy",
                            choices=("lru",) + available_policy_kernels(),
                            default=None,
                            help="assert the served record was fitted "
                                 "under this replacement policy")
    _add_obs_arguments(p_estimate)
    p_estimate.set_defaults(handler=_cmd_estimate)

    p_experiment = sub.add_parser(
        "experiment", help="run one error-behaviour experiment"
    )
    _add_spec_arguments(p_experiment)
    p_experiment.add_argument("--scans", type=int, default=100)
    p_experiment.add_argument("--floor", type=int, default=12,
                              help="smallest buffer size in the grid")
    p_experiment.add_argument("--workers", type=int, default=1,
                              help="ground-truth worker processes "
                                   "(1 = serial, 0 = one per CPU)")
    p_experiment.add_argument("--kernel", choices=available_kernels(),
                              default="baseline",
                              help="stack-distance kernel for ground truth")
    p_experiment.add_argument("--policy",
                              choices=("lru",) + available_policy_kernels(),
                              default="lru",
                              help="replacement policy for the statistics "
                                   "pass and ground truth (default lru)")
    p_experiment.add_argument("--policy-ablation", action="store_true",
                              help="print the LRU-drift table (policy "
                                   "fetch curves vs the LRU curve over "
                                   "the verification corpus) instead of "
                                   "running an experiment")
    p_experiment.add_argument("--policies", nargs="+", default=None,
                              choices=available_policy_kernels(),
                              help="policies for --policy-ablation "
                                   "(default: all registered)")
    p_experiment.add_argument("--families", nargs="+", default=None,
                              metavar="FAMILY",
                              help="corpus families for --policy-ablation "
                                   "(default: uniform, zipf, loop)")
    p_experiment.add_argument("--estimators", nargs="+", default=None,
                              choices=available_estimators(),
                              help="estimators to compare (default: the "
                                   "paper's five)")
    p_experiment.add_argument("--spec", default=None, metavar="FILE",
                              help="run a saved experiment spec (JSON); "
                                   "other experiment flags are ignored")
    p_experiment.add_argument("--save-spec", default=None, metavar="FILE",
                              help="write the equivalent spec JSON instead "
                                   "of running")
    _add_shard_arguments(p_experiment)
    _add_checkpoint_arguments(p_experiment)
    _add_obs_arguments(p_experiment)
    p_experiment.set_defaults(handler=_cmd_experiment)

    p_gwl = sub.add_parser(
        "gwl", help="build the simulated GWL database, print Tables 2-3"
    )
    p_gwl.add_argument("--scale", type=float, default=0.05)
    p_gwl.add_argument("--seed", type=int, default=0)
    p_gwl.set_defaults(handler=_cmd_gwl)

    p_locality = sub.add_parser(
        "locality", help="profile a dataset's index-order trace locality"
    )
    _add_spec_arguments(p_locality)
    p_locality.set_defaults(handler=_cmd_locality)

    p_contention = sub.add_parser(
        "contention",
        help="simulate concurrent full scans sharing one LRU pool",
    )
    _add_spec_arguments(p_contention)
    p_contention.add_argument("--scans", type=int, default=2,
                              help="number of concurrent scans")
    p_contention.add_argument("--buffer", type=int, required=True,
                              help="shared pool size in pages")
    p_contention.set_defaults(handler=_cmd_contention)

    p_perf = sub.add_parser(
        "perf",
        help="time one LRU-Fit pass per stack-distance kernel",
    )
    _add_spec_arguments(p_perf)
    p_perf.add_argument("--kernels", nargs="+", default=None,
                        choices=available_kernels(),
                        help="kernels to time (default: all registered)")
    p_perf.add_argument("--repeats", type=int, default=5,
                        help="timing repetitions per kernel (median)")
    _add_shard_arguments(p_perf)
    p_perf.add_argument("--paper-scale", action="store_true",
                        help="time the pass on a streamed paper-scale "
                             "trace instead of a synthetic dataset "
                             "(implies the sharded timing mode)")
    p_perf.add_argument("--paper-refs", type=int, default=None,
                        help="paper-scale trace length "
                             "(default 10^7 references)")
    p_perf.add_argument("--paper-pages", type=int, default=None,
                        help="paper-scale page universe (default 200000)")
    p_perf.add_argument("--paper-pattern",
                        choices=("zipf", "clustered"), default="zipf",
                        help="paper-scale reference pattern")
    p_perf.set_defaults(handler=_cmd_perf)

    p_verify = sub.add_parser(
        "verify",
        help="run the differential verification harness",
    )
    p_verify.add_argument("--families", nargs="+", default=None,
                          metavar="FAMILY",
                          help="trace families to verify (default: all)")
    p_verify.add_argument("--cases", nargs="+", default=None,
                          metavar="NAME",
                          help="corpus cases to verify (default: all)")
    p_verify.add_argument("--kernels", nargs="+", default=None,
                          choices=(
                              available_kernels()
                              + available_policy_kernels()
                          ),
                          help="kernels to cross-check (default: every "
                               "stack and policy kernel)")
    p_verify.add_argument("--no-invariants", action="store_true",
                          help="skip the metamorphic invariant stage")
    p_verify.add_argument("--no-golden", action="store_true",
                          help="skip the golden-fixture stage")
    p_verify.add_argument("--golden", default=None, metavar="FILE",
                          help="golden fixture path (default: the "
                               "committed fixture)")
    p_verify.add_argument("--regen", action="store_true",
                          help="regenerate the golden fixture instead of "
                               "comparing against it")
    _add_obs_arguments(p_verify)
    p_verify.set_defaults(handler=_cmd_verify)

    p_serve = sub.add_parser(
        "serve",
        help="serve estimates over NDJSON/TCP with micro-batching",
    )
    _add_serving_arguments(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="interface to bind (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8337,
                         help="port to bind; 0 picks a free port "
                              "(default 8337)")
    p_serve.add_argument("--max-seconds", type=float, default=None,
                         help="stop serving after this many seconds "
                              "(default: run until interrupted)")
    _add_obs_arguments(p_serve)
    p_serve.set_defaults(handler=_cmd_serve)

    p_loadgen = sub.add_parser(
        "loadgen",
        help="drive a deterministic load against the serving tier",
    )
    _add_serving_arguments(p_loadgen)
    p_loadgen.add_argument("--mode", choices=("closed", "open"),
                           default="closed",
                           help="closed: N clients, one outstanding "
                                "request each; open: fixed-rate arrivals "
                                "(default closed)")
    p_loadgen.add_argument("--connect", default=None, metavar="HOST:PORT",
                           help="drive a running `repro serve` socket "
                                "instead of an in-process server "
                                "(closed mode only)")
    p_loadgen.add_argument("--clients", type=int, default=8,
                           help="closed-loop client threads (default 8)")
    p_loadgen.add_argument("--requests", type=int, default=400,
                           help="requests to issue (default 400)")
    p_loadgen.add_argument("--qps", type=float, default=500.0,
                           help="open-loop arrival rate (default 500)")
    p_loadgen.add_argument("--seed", type=int, default=0,
                           help="workload stream seed (default 0)")
    p_loadgen.add_argument("--estimators", nargs="+", default=None,
                           choices=available_estimators(),
                           help="estimators the stream draws from "
                                "(default epfis)")
    p_loadgen.add_argument("--tenant-names", nargs="+", default=None,
                           metavar="NAME",
                           help="tenants to target (default: every "
                                "namespace under --tenant-root)")
    p_loadgen.add_argument("--out", default=None, metavar="FILE",
                           help="write the full result JSON here")
    _add_obs_arguments(p_loadgen)
    p_loadgen.set_defaults(handler=_cmd_loadgen)

    p_refresh = sub.add_parser(
        "refresh",
        help="run the online catalog refresh loop against a live "
             "synthetic feed",
    )
    from repro.trace.paper_scale import DEFAULT_THETA, PATTERNS

    p_refresh.add_argument("--catalog", required=True,
                           help="catalog file to keep refreshed "
                                "(version archive lives beside it)")
    p_refresh.add_argument("--index", default="paper_scale",
                           help="index name the loop maintains "
                                "(default paper_scale)")
    p_refresh.add_argument("--cycles", type=int, default=3,
                           help="refresh cycles to run (default 3)")
    p_refresh.add_argument("--window", type=int, default=20_000,
                           help="feed references consumed per cycle "
                                "(default 20000)")
    p_refresh.add_argument("--decay", type=float, default=0.5,
                           help="weight of the previously emitted curve "
                                "in the blend (default 0.5)")
    p_refresh.add_argument("--drift-threshold", type=float, default=0.01,
                           help="relative curve drift that triggers a "
                                "roll-forward (default 0.01)")
    p_refresh.add_argument("--history", type=int, default=4,
                           help="catalog versions retained for rollback "
                                "(default 4; must cover a full cycle's "
                                "publish attempts plus last-known-good, "
                                "i.e. >= publish retries + 2)")
    p_refresh.add_argument("--state-dir", default=None, metavar="DIR",
                           help="loop state directory (default "
                                "<catalog>.refresh)")
    p_refresh.add_argument("--checkpoint-every", type=int, default=4096,
                           metavar="REFS",
                           help="kernel-pass snapshot cadence "
                                "(default 4096)")
    p_refresh.add_argument("--pages", type=int, default=200,
                           help="distinct pages in the synthetic feed "
                                "(default 200)")
    p_refresh.add_argument("--pattern", choices=PATTERNS,
                           default="zipf",
                           help="feed reference pattern (default zipf)")
    p_refresh.add_argument("--theta", type=float, default=DEFAULT_THETA,
                           help="feed Zipf skew "
                                f"(default {DEFAULT_THETA})")
    p_refresh.add_argument("--seed", type=int, default=0)
    p_refresh.add_argument("--drift-at", type=int, default=None,
                           metavar="REF",
                           help="inject workload drift at this feed "
                                "position (second stationary phase)")
    p_refresh.add_argument("--drift-theta", type=float, default=None,
                           help="Zipf skew after --drift-at "
                                "(default: unchanged)")
    p_refresh.add_argument("--drift-pages", type=int, default=None,
                           help="distinct pages after --drift-at "
                                "(default: unchanged)")
    p_refresh.add_argument("--drift-seed", type=int, default=None,
                           help="feed seed after --drift-at "
                                "(default: --seed + 1)")
    p_refresh.add_argument("--feed-fault-period", type=int, default=None,
                           metavar="N",
                           help="chaos: inject a transient feed fault "
                                "at ~1/N chunk boundaries (retried "
                                "through the checkpoint)")
    p_refresh.add_argument("--chaos-corrupt-publish", type=int,
                           nargs="+", default=None, metavar="CYCLE",
                           help="chaos drill: corrupt the publish of "
                                "these cycles to force the "
                                "breaker-guarded rollback")
    _add_obs_arguments(p_refresh)
    p_refresh.set_defaults(handler=_cmd_refresh)

    p_advise = sub.add_parser(
        "advise",
        help="allocate a fleet page budget over PF(B) curves and "
             "price it with the five-minute rule",
    )
    p_advise.add_argument("--catalog", required=True,
                          help="catalog JSON holding the fleet's "
                               "statistics (build multi-index fleets "
                               "with `repro fit --append`)")
    p_advise.add_argument("--estimator", default="epfis",
                          choices=available_estimators(),
                          help="estimator the curves are pulled through "
                               "(default epfis)")
    p_advise.add_argument("--indexes", nargs="+", default=None,
                          metavar="NAME",
                          help="fleet indexes (default: every index in "
                               "the catalog)")
    p_advise.add_argument("--budgets", type=int, nargs="+", default=None,
                          metavar="PAGES",
                          help="total page budgets to sweep (default: "
                               "1/8..1x of the fleet's table pages)")
    p_advise.add_argument("--frequency", type=float, default=1.0,
                          help="scans/second per index for the uniform "
                               "workload (default 1.0; use --spec for "
                               "per-index mixes)")
    p_advise.add_argument("--oracle",
                          choices=("auto", "always", "never"),
                          default="auto",
                          help="greedy-vs-DP differential verification "
                               "(auto: only for small fleets)")
    p_advise.add_argument("--page-bytes", type=int, default=8192,
                          help="page size for the cost model "
                               "(default 8192)")
    p_advise.add_argument("--ram-dollars-per-mb", type=float,
                          default=0.005,
                          help="RAM capital cost per MB (default 0.005)")
    p_advise.add_argument("--disk-dollars", type=float, default=300.0,
                          help="capital cost per disk device "
                               "(default 300)")
    p_advise.add_argument("--disk-iops", type=float, default=10_000.0,
                          help="sustained accesses/second per disk "
                               "(default 10000)")
    p_advise.add_argument("--sensitivity", type=float, nargs="+",
                          default=(0.5, 2.0), metavar="FACTOR",
                          help="RAM-price scale factors to re-price the "
                               "break-even under (default 0.5 2.0)")
    p_advise.add_argument("--spec", default=None, metavar="FILE",
                          help="run a saved advisor spec (JSON); fleet "
                               "and cost flags are ignored")
    p_advise.add_argument("--save-spec", default=None, metavar="FILE",
                          help="write the equivalent spec JSON instead "
                               "of running")
    p_advise.add_argument("--out", default=None, metavar="FILE",
                          help="write the full advisory report JSON "
                               "here")
    _add_obs_arguments(p_advise)
    p_advise.set_defaults(handler=_cmd_advise)

    p_metrics = sub.add_parser(
        "metrics",
        help="print the standard metric-family schema this build exports",
    )
    p_metrics.add_argument("--format", choices=("prom", "jsonl"),
                           default="prom",
                           help="output format (default prom)")
    p_metrics.set_defaults(handler=_cmd_metrics)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    metrics_out = getattr(args, "metrics_out", None)
    trace_out = getattr(args, "trace_out", None)
    try:
        with observability_session(
            metrics_out=metrics_out,
            trace_out=trace_out,
            metrics_format=getattr(args, "metrics_format", "auto"),
        ):
            if "-" in (metrics_out, trace_out):
                # An export claimed stdout: keep it machine-parseable
                # by moving the human-readable report to stderr.
                with contextlib.redirect_stdout(sys.stderr):
                    return args.handler(args)
            return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
