"""Name-based registry of replacement-policy buffer-pool simulators.

This is the single source of truth for which replacement policies the
library can simulate.  Three layers consume it:

* :func:`repro.buffer.pool.simulate_fetches` — the one-shot convenience
  simulation.
* :class:`repro.buffer.kernels.policy.SimulatedPolicyKernel` — the
  policy-parametric fetch-curve provider that replays a pool per buffer
  size.
* the differential verify oracle — each policy kernel is cross-checked
  fetch-for-fetch against the pool simulator registered here.

``"lru"`` is deliberately registered too: it makes
``simulate_fetches(trace, b, policy)`` uniform over every policy, even
though LRU fetch curves normally go through the far faster
stack-distance kernels.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.buffer.clock import ClockBufferPool
from repro.buffer.fifo import FIFOBufferPool
from repro.buffer.lecar import LeCaRBufferPool
from repro.buffer.lru import LRUBufferPool
from repro.buffer.pool import BufferPool
from repro.buffer.twoq import TwoQBufferPool
from repro.errors import BufferError_

_POOLS: Dict[str, Callable[[int], BufferPool]] = {
    "lru": LRUBufferPool,
    "fifo": FIFOBufferPool,
    "clock": ClockBufferPool,
    "2q": TwoQBufferPool,
    "lecar-tinylfu": LeCaRBufferPool,
}


def available_policies() -> Tuple[str, ...]:
    """Sorted names of every replacement policy with a simulator."""
    return tuple(sorted(_POOLS))


def get_policy_pool(policy: str, capacity: int) -> BufferPool:
    """A fresh pool simulator for ``policy`` with ``capacity`` slots."""
    try:
        pool_cls = _POOLS[policy]
    except KeyError:
        raise BufferError_(
            f"unknown replacement policy {policy!r}; expected one of "
            f"{', '.join(available_policies())}"
        ) from None
    return pool_cls(capacity)
