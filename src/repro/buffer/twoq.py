"""2Q buffer-pool simulator (Johnson & Shasha, VLDB 1994).

2Q splits the pool into a small FIFO admission queue ``A1in`` for pages
seen once and a main LRU queue ``Am`` for pages with proven reuse; a
ghost FIFO ``A1out`` remembers recently evicted one-timers so a
re-reference within the ghost window promotes straight into ``Am``.
The net effect is scan resistance: a single sequential sweep churns
through ``A1in`` without displacing the hot set in ``Am`` — exactly the
behaviour that makes 2Q's fetch curve diverge from LRU's under looping
workloads, which is what the policy-drift ablation quantifies.

This is the simplified 2Q of the paper's Section 2 with the full
version's tuning constants: ``Kin`` (max resident one-timers) defaults
to 25% of capacity and ``Kout`` (ghost window) to 50%, the settings the
authors report as robust.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.buffer.pool import BufferPool


class TwoQBufferPool(BufferPool):
    """Fetch-counting 2Q pool: A1in FIFO + A1out ghosts + Am LRU.

    Residency is ``A1in`` union ``Am`` and never exceeds ``capacity``;
    ``A1out`` holds page identifiers only (it is a history, not storage)
    and never contributes fetch slots.  Eviction happens only when the
    pool is full, so like every pool here the curve floors at one
    compulsory miss per distinct page once ``B >= A``.
    """

    def __init__(
        self,
        capacity: int,
        kin_fraction: float = 0.25,
        kout_fraction: float = 0.5,
    ) -> None:
        super().__init__(capacity)
        self._kin = max(1, int(capacity * kin_fraction))
        self._kout = max(1, int(capacity * kout_fraction))
        self._a1in: OrderedDict = OrderedDict()   # resident, FIFO order
        self._am: OrderedDict = OrderedDict()     # resident, LRU order
        self._a1out: OrderedDict = OrderedDict()  # ghosts, FIFO order

    def access(self, page: int) -> bool:
        if page in self._am:
            self._am.move_to_end(page)
            self._hits += 1
            return True
        if page in self._a1in:
            # 2Q deliberately does not reorder A1in on a hit: the queue
            # stays FIFO so one-timers age out at a constant rate.
            self._hits += 1
            return True
        if page in self._a1out:
            # Ghost hit: the page proved reuse beyond the FIFO window,
            # so it enters the main LRU queue directly.
            del self._a1out[page]
            self._reclaim()
            self._am[page] = None
        else:
            self._reclaim()
            self._a1in[page] = None
        self._fetches += 1
        return False

    def _reclaim(self) -> None:
        """Free one slot when the pool is full (2Q's ``reclaimfor``)."""
        if len(self._a1in) + len(self._am) < self._capacity:
            return
        if len(self._a1in) >= self._kin or not self._am:
            victim, _ = self._a1in.popitem(last=False)
            self._a1out[victim] = None
            while len(self._a1out) > self._kout:
                self._a1out.popitem(last=False)
        else:
            self._am.popitem(last=False)

    def resident_pages(self) -> frozenset:
        return frozenset(self._a1in) | frozenset(self._am)

    def reset(self) -> None:
        self._a1in.clear()
        self._am.clear()
        self._a1out.clear()
        self._fetches = 0
        self._hits = 0
