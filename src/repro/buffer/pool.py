"""Buffer-pool protocol shared by the replacement-policy simulators.

A buffer pool here is a pure *simulator*: it tracks page residency and counts
fetches, it never stores page contents.  That is exactly what the paper's
LRU modeling needs — the number of page fetches ``F`` for a reference trace.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable

from repro.errors import BufferError_


class BufferPool(ABC):
    """Abstract fetch-counting buffer pool of a fixed capacity.

    Subclasses implement one replacement policy each.  Usage::

        pool = LRUBufferPool(capacity=64)
        for page in trace:
            pool.access(page)
        print(pool.fetches, pool.hits)
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise BufferError_(f"buffer capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._fetches = 0
        self._hits = 0

    @property
    def capacity(self) -> int:
        """Number of page slots (the paper's ``B``)."""
        return self._capacity

    @property
    def fetches(self) -> int:
        """Pages fetched from disk so far (misses)."""
        return self._fetches

    @property
    def hits(self) -> int:
        """Accesses satisfied from the pool."""
        return self._hits

    @property
    def accesses(self) -> int:
        """Total page accesses observed."""
        return self._fetches + self._hits

    @property
    def hit_ratio(self) -> float:
        """Fraction of accesses that hit; 0.0 before any access."""
        total = self.accesses
        return self._hits / total if total else 0.0

    @abstractmethod
    def access(self, page: int) -> bool:
        """Reference ``page``; return True on a hit, False on a fetch.

        The return-value convention every subclass must honour (and that
        :mod:`tests.unit.test_buffer_pools` enforces across all of them):

        * **True — hit.** ``page`` was resident when the access arrived;
          no I/O is simulated, ``hits`` increments by one.  Whether the
          policy also updates metadata (LRU reorders, CLOCK sets a
          reference bit, 2Q leaves A1in untouched) is its own business.
        * **False — fetch.** ``page`` was *not* resident — including
          when the policy remembers it in a ghost/history structure
          (2Q's A1out, LeCaR's ghost lists): history is not residency.
          ``fetches`` increments by one and the page is resident when
          ``access`` returns.

        Equivalently: the return value is ``page in resident_pages()``
        evaluated immediately *before* the access, and exactly one of
        the two counters moves per call.  Getting this inverted in a new
        policy simulator silently flips its whole fetch curve, which is
        why the convention is pinned here and by contract tests rather
        than left to each subclass's docstring.
        """

    @abstractmethod
    def resident_pages(self) -> frozenset:
        """The set of pages currently in the pool (for tests/invariants)."""

    @abstractmethod
    def reset(self) -> None:
        """Empty the pool and zero the counters (a cold start)."""

    def run(self, trace: Iterable[int]) -> int:
        """Access every page in ``trace``; return total fetches afterwards."""
        access = self.access
        for page in trace:
            access(page)
        return self._fetches


def simulate_fetches(trace: Iterable[int], capacity: int, policy: str = "lru") -> int:
    """Convenience one-shot simulation: fetches for ``trace`` at ``capacity``.

    ``policy`` is any name in
    :func:`repro.buffer.policies.available_policies` (``"lru"``,
    ``"fifo"``, ``"clock"``, ``"2q"``, ``"lecar-tinylfu"``).
    """
    # Imported here to avoid a circular import at module load time.
    from repro.buffer.policies import get_policy_pool

    return get_policy_pool(policy, capacity).run(trace)
