"""Buffer-pool simulation and single-pass LRU stack analysis.

This subpackage provides the machinery behind the paper's Subprogram LRU-Fit
(Section 4.1):

* :class:`~repro.buffer.lru.LRUBufferPool` — an exact least-recently-used
  buffer-pool simulator that counts page fetches for one buffer size.
* :class:`~repro.buffer.stack.StackDistanceAnalyzer` — the Mattson et al.
  (1970) stack-property trick the paper cites: one pass over a page-reference
  trace yields the fetch count for *every* buffer size simultaneously.
* :class:`~repro.buffer.fifo.FIFOBufferPool` and
  :class:`~repro.buffer.clock.ClockBufferPool` — alternative replacement
  policies used by the ablation benches (LRU is what the paper models; these
  quantify how policy-sensitive the FPF curve is).
* :mod:`repro.buffer.kernels` — pluggable implementations of the stack
  pass (exact Fenwick baseline, exact compact big-integer kernel, SHARDS
  sampling, optional numpy vectorization) behind one registry.
"""

from repro.buffer.clock import ClockBufferPool
from repro.buffer.fenwick import FenwickTree
from repro.buffer.fifo import FIFOBufferPool
from repro.buffer.kernels import (
    KernelStream,
    StackDistanceKernel,
    available_kernels,
    get_kernel,
    register_kernel,
)
from repro.buffer.lru import LRUBufferPool
from repro.buffer.pool import BufferPool, simulate_fetches
from repro.buffer.stack import FetchCurve, StackDistanceAnalyzer, stack_distances

__all__ = [
    "BufferPool",
    "ClockBufferPool",
    "FIFOBufferPool",
    "FenwickTree",
    "FetchCurve",
    "KernelStream",
    "LRUBufferPool",
    "StackDistanceAnalyzer",
    "StackDistanceKernel",
    "available_kernels",
    "get_kernel",
    "register_kernel",
    "simulate_fetches",
    "stack_distances",
]
