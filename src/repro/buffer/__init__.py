"""Buffer-pool simulation and single-pass LRU stack analysis.

This subpackage provides the machinery behind the paper's Subprogram LRU-Fit
(Section 4.1):

* :class:`~repro.buffer.lru.LRUBufferPool` — an exact least-recently-used
  buffer-pool simulator that counts page fetches for one buffer size.
* :class:`~repro.buffer.stack.StackDistanceAnalyzer` — the Mattson et al.
  (1970) stack-property trick the paper cites: one pass over a page-reference
  trace yields the fetch count for *every* buffer size simultaneously.
* :class:`~repro.buffer.fifo.FIFOBufferPool`,
  :class:`~repro.buffer.clock.ClockBufferPool`,
  :class:`~repro.buffer.twoq.TwoQBufferPool`, and
  :class:`~repro.buffer.lecar.LeCaRBufferPool` — alternative replacement
  policies behind the :mod:`repro.buffer.policies` registry (LRU is what
  the paper models; these quantify how policy-sensitive the FPF curve
  is via the simulated-policy kernels and the drift ablation).
* :mod:`repro.buffer.kernels` — pluggable implementations of the stack
  pass (exact Fenwick baseline, exact compact big-integer kernel, SHARDS
  sampling, optional numpy vectorization) behind one registry.
"""

from repro.buffer.clock import ClockBufferPool
from repro.buffer.fenwick import FenwickTree
from repro.buffer.fifo import FIFOBufferPool
from repro.buffer.kernels import (
    FetchCurveProvider,
    KernelStream,
    SimulatedPolicyKernel,
    StackDistanceKernel,
    available_kernels,
    available_policy_kernels,
    get_kernel,
    register_kernel,
)
from repro.buffer.lecar import LeCaRBufferPool
from repro.buffer.lru import LRUBufferPool
from repro.buffer.policies import available_policies, get_policy_pool
from repro.buffer.pool import BufferPool, simulate_fetches
from repro.buffer.stack import FetchCurve, StackDistanceAnalyzer, stack_distances
from repro.buffer.twoq import TwoQBufferPool

__all__ = [
    "BufferPool",
    "ClockBufferPool",
    "FIFOBufferPool",
    "FenwickTree",
    "FetchCurve",
    "FetchCurveProvider",
    "KernelStream",
    "LRUBufferPool",
    "LeCaRBufferPool",
    "SimulatedPolicyKernel",
    "StackDistanceAnalyzer",
    "StackDistanceKernel",
    "TwoQBufferPool",
    "available_kernels",
    "available_policies",
    "available_policy_kernels",
    "get_kernel",
    "get_policy_pool",
    "register_kernel",
    "simulate_fetches",
    "stack_distances",
]
