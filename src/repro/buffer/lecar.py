"""Deterministic LeCaR-style learned LRU/LFU mixture with TinyLFU aging.

LeCaR (Vietri et al., HotStorage 2018) treats cache replacement as an
online learning problem over two experts — recency (LRU) and frequency
(LFU) — with regret feedback delivered through per-expert ghost lists: a
miss on a page an expert recently evicted is evidence against that
expert, so its weight is discounted multiplicatively.  The frequency
expert here uses TinyLFU-style aging (Einziger et al.): counters are
halved every ``decay_window`` accesses so stale popularity decays
instead of pinning pages forever.

One deliberate departure from the published algorithm: LeCaR *samples*
the acting expert from the weight distribution, which would make fetch
counts run-dependent.  Every simulator in this package must be a pure
function of the reference trace (the differential verify oracle replays
them fetch-for-fetch), so this implementation always follows the
currently dominant expert (ties favour LRU).  The learning dynamics are
unchanged — weights still move on ghost hits — only the tie to an RNG
is gone.
"""

from __future__ import annotations

import heapq
import math
from collections import OrderedDict
from typing import Dict, List, Tuple

from repro.buffer.pool import BufferPool


class LeCaRBufferPool(BufferPool):
    """Fetch-counting learned mixture of LRU and LFU experts.

    State: one resident LRU queue (shared by both experts — they differ
    only in victim choice), decayed frequency counters over resident
    *and* recently-seen pages, two bounded ghost lists (one per expert),
    and the expert weights.  Victim selection scans nothing: the LFU
    side keeps a lazily-invalidated min-heap, so evictions stay
    ``O(log n)`` amortized.
    """

    def __init__(
        self,
        capacity: int,
        learning_rate: float = 0.45,
        decay_window: int = 0,
    ) -> None:
        super().__init__(capacity)
        self._discount = math.exp(-learning_rate)
        self._decay_window = decay_window or max(64, 8 * capacity)
        self._since_decay = 0
        self._lru: OrderedDict = OrderedDict()  # resident, MRU at end
        self._freq: Dict[int, int] = {}         # decayed access counts
        self._ghost_lru: OrderedDict = OrderedDict()
        self._ghost_lfu: OrderedDict = OrderedDict()
        self._w_lru = 0.5
        self._w_lfu = 0.5
        # Lazy min-heap of (freq, tie, page); stale entries (freq or
        # residency changed since push) are discarded on pop.
        self._heap: List[Tuple[int, int, int]] = []
        self._tick = 0

    def access(self, page: int) -> bool:
        self._bump_frequency(page)
        if page in self._lru:
            self._lru.move_to_end(page)
            self._push_heap(page)
            self._hits += 1
            return True
        if page in self._ghost_lru:
            del self._ghost_lru[page]
            self._apply_regret("lru")
        elif page in self._ghost_lfu:
            del self._ghost_lfu[page]
            self._apply_regret("lfu")
        if len(self._lru) >= self._capacity:
            self._evict()
        self._lru[page] = None
        self._push_heap(page)
        self._fetches += 1
        return False

    # ------------------------------------------------------------------
    # Experts
    # ------------------------------------------------------------------
    def _evict(self) -> None:
        lru_victim = next(iter(self._lru))
        lfu_victim = self._lfu_victim()
        if self._w_lru >= self._w_lfu:
            expert, victim, ghosts = "lru", lru_victim, self._ghost_lru
        else:
            expert, victim, ghosts = "lfu", lfu_victim, self._ghost_lfu
        del self._lru[victim]
        if lru_victim != lfu_victim:
            # Only a disagreement is informative: when both experts name
            # the same victim a later re-reference carries no regret
            # signal, so the ghost entry would only dilute the window.
            ghosts[victim] = None
            while len(ghosts) > self._capacity:
                ghosts.popitem(last=False)
        del expert

    def _lfu_victim(self) -> int:
        heap = self._heap
        while heap:
            freq, _, page = heap[0]
            if page in self._lru and self._freq.get(page, 0) == freq:
                return page
            heapq.heappop(heap)
        self._rebuild_heap()
        return self._heap[0][2]

    def _push_heap(self, page: int) -> None:
        self._tick += 1
        heapq.heappush(
            self._heap, (self._freq.get(page, 0), self._tick, page)
        )

    def _rebuild_heap(self) -> None:
        self._tick = 0
        self._heap = [
            (self._freq.get(page, 0), tick, page)
            for tick, page in enumerate(self._lru)
        ]
        self._tick = len(self._heap)
        heapq.heapify(self._heap)

    def _apply_regret(self, expert: str) -> None:
        if expert == "lru":
            self._w_lru *= self._discount
        else:
            self._w_lfu *= self._discount
        total = self._w_lru + self._w_lfu
        self._w_lru /= total
        self._w_lfu /= total

    # ------------------------------------------------------------------
    # TinyLFU frequency aging
    # ------------------------------------------------------------------
    def _bump_frequency(self, page: int) -> None:
        self._freq[page] = self._freq.get(page, 0) + 1
        self._since_decay += 1
        if self._since_decay >= self._decay_window:
            self._since_decay = 0
            self._freq = {
                p: c >> 1 for p, c in self._freq.items() if c >> 1
            }
            self._rebuild_heap()

    def resident_pages(self) -> frozenset:
        return frozenset(self._lru)

    def reset(self) -> None:
        self._lru.clear()
        self._freq.clear()
        self._ghost_lru.clear()
        self._ghost_lfu.clear()
        self._w_lru = 0.5
        self._w_lfu = 0.5
        self._since_decay = 0
        self._heap = []
        self._tick = 0
        self._fetches = 0
        self._hits = 0
