"""Pluggable stack-distance kernels behind a common registry.

Four implementations of the Mattson pass (Section 4.1's "simultaneous
simulation for a number of buffer pool sizes"), selectable by name anywhere
the library runs an LRU analysis (``LRUFitConfig.kernel``, the experiment
runner, ``repro perf``):

``baseline``
    The original Fenwick-tree-over-positions pass; exact, O(M log M).
``compact``
    Exact big-integer recency kernel keyed by distinct live pages,
    O(M · D/w) word operations — typically 3-30x faster than baseline.
``sampled``
    SHARDS-style spatial hash sampling; approximate with a documented
    error bound, an order of magnitude faster on large traces.
``numpy``
    Exact vectorized offline computation; registered only when numpy is
    importable (the package itself stays zero-dependency).

Beyond the LRU stack kernels, the registry carries a **policy**
dimension: ``clock``, ``2q``, and ``lecar-tinylfu`` resolve to
:class:`~repro.buffer.kernels.policy.SimulatedPolicyKernel` providers
that replay the matching :class:`~repro.buffer.pool.BufferPool`
simulator per buffer size — same streaming/checkpoint/metrics API,
exact with respect to their own policy rather than LRU.

See :mod:`repro.buffer.kernels.base` for the provider/stream interface
and :mod:`repro.buffer.kernels.registry` for registration.
"""

from repro.buffer.kernels.base import (
    FetchCurveProvider,
    KernelStream,
    StackDistanceKernel,
)
from repro.buffer.kernels.baseline import BaselineKernel
from repro.buffer.kernels.compact import CompactKernel
from repro.buffer.kernels.policy import (
    SimulatedFetchCurve,
    SimulatedPolicyKernel,
)
from repro.buffer.kernels.registry import (
    DEFAULT_KERNEL,
    available_kernels,
    available_policy_kernels,
    get_kernel,
    register_kernel,
    register_policy_kernel,
    resolve_kernel,
)
from repro.buffer.kernels.mergeable import (
    ExactShardSummary,
    SeamStats,
    merge_exact_summaries,
)
from repro.buffer.kernels.sampled import (
    SAMPLED_BAND_ERROR_BOUND,
    ApproximateFetchCurve,
    SampledKernel,
    SampledShardSummary,
    merge_sampled_summaries,
)
from repro.buffer.kernels.sharded import (
    ShardRunResult,
    as_shard_source,
    run_sharded_pass,
    shard_bounds,
    sharded_chunked_curve,
    sharded_fetch_curve,
)
from repro.buffer.kernels.vectorized import HAVE_NUMPY, VectorizedKernel

register_kernel(BaselineKernel.name, BaselineKernel)
register_kernel(CompactKernel.name, CompactKernel)
register_kernel(SampledKernel.name, SampledKernel)
if HAVE_NUMPY:
    register_kernel(VectorizedKernel.name, VectorizedKernel)

#: Non-LRU replacement policies exposed as fetch-curve providers (the
#: registry's ``policy=`` dimension).  LRU itself is *not* here: its
#: curve comes from the far faster stack kernels above.
POLICY_KERNEL_NAMES = ("clock", "2q", "lecar-tinylfu")
for _policy in POLICY_KERNEL_NAMES:
    register_policy_kernel(
        _policy,
        # Bind the loop variable now; a bare lambda would capture the
        # final value for every factory.
        lambda _policy=_policy, **options: SimulatedPolicyKernel(
            _policy, **options
        ),
    )
del _policy

__all__ = [
    "ApproximateFetchCurve",
    "BaselineKernel",
    "CompactKernel",
    "DEFAULT_KERNEL",
    "ExactShardSummary",
    "FetchCurveProvider",
    "HAVE_NUMPY",
    "KernelStream",
    "POLICY_KERNEL_NAMES",
    "SAMPLED_BAND_ERROR_BOUND",
    "SampledKernel",
    "SampledShardSummary",
    "SeamStats",
    "ShardRunResult",
    "SimulatedFetchCurve",
    "SimulatedPolicyKernel",
    "StackDistanceKernel",
    "VectorizedKernel",
    "as_shard_source",
    "available_kernels",
    "available_policy_kernels",
    "get_kernel",
    "merge_exact_summaries",
    "merge_sampled_summaries",
    "register_kernel",
    "register_policy_kernel",
    "resolve_kernel",
    "run_sharded_pass",
    "shard_bounds",
    "sharded_chunked_curve",
    "sharded_fetch_curve",
]
