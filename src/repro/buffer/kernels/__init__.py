"""Pluggable stack-distance kernels behind a common registry.

Four implementations of the Mattson pass (Section 4.1's "simultaneous
simulation for a number of buffer pool sizes"), selectable by name anywhere
the library runs an LRU analysis (``LRUFitConfig.kernel``, the experiment
runner, ``repro perf``):

``baseline``
    The original Fenwick-tree-over-positions pass; exact, O(M log M).
``compact``
    Exact big-integer recency kernel keyed by distinct live pages,
    O(M · D/w) word operations — typically 3-30x faster than baseline.
``sampled``
    SHARDS-style spatial hash sampling; approximate with a documented
    error bound, an order of magnitude faster on large traces.
``numpy``
    Exact vectorized offline computation; registered only when numpy is
    importable (the package itself stays zero-dependency).

See :mod:`repro.buffer.kernels.base` for the kernel/stream interface and
:mod:`repro.buffer.kernels.registry` for registration.
"""

from repro.buffer.kernels.base import KernelStream, StackDistanceKernel
from repro.buffer.kernels.baseline import BaselineKernel
from repro.buffer.kernels.compact import CompactKernel
from repro.buffer.kernels.registry import (
    DEFAULT_KERNEL,
    available_kernels,
    get_kernel,
    register_kernel,
    resolve_kernel,
)
from repro.buffer.kernels.mergeable import (
    ExactShardSummary,
    SeamStats,
    merge_exact_summaries,
)
from repro.buffer.kernels.sampled import (
    SAMPLED_BAND_ERROR_BOUND,
    ApproximateFetchCurve,
    SampledKernel,
    SampledShardSummary,
    merge_sampled_summaries,
)
from repro.buffer.kernels.sharded import (
    ShardRunResult,
    as_shard_source,
    run_sharded_pass,
    shard_bounds,
    sharded_chunked_curve,
    sharded_fetch_curve,
)
from repro.buffer.kernels.vectorized import HAVE_NUMPY, VectorizedKernel

register_kernel(BaselineKernel.name, BaselineKernel)
register_kernel(CompactKernel.name, CompactKernel)
register_kernel(SampledKernel.name, SampledKernel)
if HAVE_NUMPY:
    register_kernel(VectorizedKernel.name, VectorizedKernel)

__all__ = [
    "ApproximateFetchCurve",
    "BaselineKernel",
    "CompactKernel",
    "DEFAULT_KERNEL",
    "ExactShardSummary",
    "HAVE_NUMPY",
    "KernelStream",
    "SAMPLED_BAND_ERROR_BOUND",
    "SampledKernel",
    "SampledShardSummary",
    "SeamStats",
    "ShardRunResult",
    "StackDistanceKernel",
    "VectorizedKernel",
    "as_shard_source",
    "available_kernels",
    "get_kernel",
    "merge_exact_summaries",
    "merge_sampled_summaries",
    "register_kernel",
    "resolve_kernel",
    "run_sharded_pass",
    "shard_bounds",
    "sharded_chunked_curve",
    "sharded_fetch_curve",
]
