"""Provider interface for trace-to-fetch-curve analysis passes.

A :class:`FetchCurveProvider` is one interchangeable implementation of
the pass that turns a page-reference trace into a queryable
``B -> F(B)`` fetch curve.  The classic providers are the
:class:`StackDistanceKernel` subclasses — Mattson passes exploiting
LRU's stack property (Section 4.1 of the paper); simulated-policy
kernels (:mod:`repro.buffer.kernels.policy`) extend the same interface
to non-stack replacement policies.  All providers share two entry
points:

* :meth:`FetchCurveProvider.analyze` — one-shot analysis of a full trace.
* :meth:`FetchCurveProvider.stream` — a :class:`KernelStream` that accepts
  the trace in arbitrary chunks, so LRU-Fit can consume generator-produced
  references without materializing the whole trace in memory.

Exact kernels (``exact = True``) are required to produce results
*bit-identical* to :func:`repro.buffer.stack.stack_distances` — the same
:class:`~repro.buffer.stack.FetchCurve` dataclass, equal field-for-field.
Approximate kernels return a curve-compatible estimate and document their
error bound (see :mod:`repro.buffer.kernels.sampled`).
"""

from __future__ import annotations

import abc
import pickle
import time
from typing import ClassVar, Iterable

from repro.errors import CheckpointError, KernelError
from repro.obs import instruments
from repro.obs.metrics import global_registry


def _record_kernel_pass(
    kernel_name: str, references: int, elapsed_ns: int
) -> None:
    """Publish one finished pass's profile to the global registry.

    Called from both the streaming path (:meth:`KernelStream.finish`)
    and one-shot fast paths that bypass streams; a no-op while the
    global registry is disabled.
    """
    if not global_registry().enabled:
        return
    labels = {"kernel": kernel_name}
    instruments.kernel_references().labels(**labels).inc(references)
    instruments.kernel_feed_seconds().labels(**labels).inc(elapsed_ns)
    if elapsed_ns > 0:
        instruments.kernel_references_per_second().labels(**labels).set(
            references * 1e9 / elapsed_ns
        )


class KernelStream(abc.ABC):
    """Incremental (chunked) trace consumption for one analysis pass.

    Feed page references in any number of chunks, then call :meth:`finish`
    exactly once to obtain the fetch curve.  Streams are single-use: after
    ``finish()`` both methods raise :class:`~repro.errors.KernelError`.

    Streams are also *snapshotable*: :meth:`snapshot_state` serializes the
    complete mid-pass state so a long statistics scan can be checkpointed
    and later resumed with :meth:`from_snapshot` — feeding the restored
    stream the remaining references produces output identical to an
    uninterrupted pass (see :mod:`repro.resilience.checkpoint`).
    """

    _finished: bool = False
    # Class-level defaults keep pre-observability pickled snapshots
    # loadable: a restored stream missing these attributes falls back
    # here instead of raising AttributeError.
    kernel_name: str = "unknown"
    _obs_feed_ns: int = 0

    def feed(self, pages: Iterable[int]) -> None:
        """Consume the next chunk of page references."""
        if self._finished:
            raise KernelError("cannot feed a finished kernel stream")
        if not global_registry().enabled:
            self._consume(pages)
            return
        started = time.perf_counter_ns()
        try:
            self._consume(pages)
        finally:
            self._obs_feed_ns = self._obs_feed_ns + (
                time.perf_counter_ns() - started
            )

    def finish(self):
        """Close the stream and return the fetch curve for everything fed.

        Raises :class:`~repro.errors.TraceError` when no references were
        fed (matching ``FetchCurve.from_trace`` on an empty trace) and
        :class:`~repro.errors.KernelError` on a second call.
        """
        if self._finished:
            raise KernelError("kernel stream already finished")
        self._finished = True
        if not global_registry().enabled:
            return self._result()
        started = time.perf_counter_ns()
        curve = self._result()
        elapsed = self._obs_feed_ns + (
            time.perf_counter_ns() - started
        )
        _record_kernel_pass(
            self.kernel_name, getattr(curve, "accesses", 0), elapsed
        )
        return curve

    def snapshot_state(self) -> bytes:
        """The stream's complete mid-pass state, serialized.

        Every built-in stream keeps only plain Python state (dicts, lists,
        integers), so the default pickle round-trip restores it exactly;
        a kernel holding unpicklable state must override this pair.
        Snapshots are internal wire data for checkpoints — not a stable
        cross-version format.
        """
        if self._finished:
            raise KernelError("cannot snapshot a finished kernel stream")
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    def shard_summary(self):
        """Close the stream and return a mergeable shard summary.

        Sharded passes (:mod:`repro.buffer.kernels.sharded`) feed each
        contiguous shard of a trace into its own stream and call this
        instead of :meth:`finish`; the summaries are later combined by
        the kernel's merge function into the same curve a single pass
        would have produced.  Kernels that support sharding override
        this; the default refuses, so the orchestrator fails loudly for
        unmergeable kernels instead of returning a wrong curve.
        """
        raise KernelError(
            f"kernel {self.kernel_name!r} streams do not produce "
            f"mergeable shard summaries"
        )

    def _close_for_summary(self) -> None:
        """Mark the stream finished on behalf of :meth:`shard_summary`.

        Shard summaries consume the stream exactly like :meth:`finish`
        does: a second close (or a later ``feed``) must raise.
        """
        if self._finished:
            raise KernelError("kernel stream already finished")
        self._finished = True

    @staticmethod
    def from_snapshot(blob: bytes) -> "KernelStream":
        """Rebuild a stream from :meth:`snapshot_state` output."""
        try:
            stream = pickle.loads(blob)
        except Exception as exc:
            raise CheckpointError(
                f"kernel stream snapshot failed to deserialize: {exc}"
            ) from exc
        if not isinstance(stream, KernelStream):
            raise CheckpointError(
                f"snapshot did not contain a kernel stream, got "
                f"{type(stream).__name__}"
            )
        return stream

    @abc.abstractmethod
    def _consume(self, pages: Iterable[int]) -> None:
        """Implementation hook: ingest one chunk."""

    @abc.abstractmethod
    def _result(self):
        """Implementation hook: build the final curve."""


class FetchCurveProvider(abc.ABC):
    """Anything that turns a reference trace into a ``B -> F(B)`` curve.

    This is the policy-parametric generalization of the original
    stack-distance kernel interface.  A provider names the replacement
    ``policy`` whose fetch counts its curves report; the stack-distance
    kernels are all ``policy = "lru"`` (the paper's model), while
    :class:`~repro.buffer.kernels.policy.SimulatedPolicyKernel` replays a
    :class:`~repro.buffer.pool.BufferPool` simulator per buffer size for
    non-stack policies (CLOCK, 2Q, LeCaR/TinyLFU).

    Every provider shares the same entry points:

    * :meth:`analyze` — one-shot analysis of a full trace.
    * :meth:`stream` — a :class:`KernelStream` accepting chunked feeds,
      with snapshot/resume checkpointing and pass metrics for free.

    Provider instances are stateless between calls and safe to reuse
    across traces; all per-trace state lives in the stream.
    """

    #: Registry key; also what ``LRUFitConfig.kernel`` and the CLI accept.
    name: ClassVar[str] = "abstract"
    #: True when results are bit-identical to the provider's own ground
    #: truth (the baseline Fenwick pass for LRU kernels; the policy's
    #: ``BufferPool`` simulator for simulated-policy kernels).
    exact: ClassVar[bool] = True
    #: True when :meth:`reseeded` produces a distinctly-seeded kernel.
    #: Exact kernels are deterministic functions of the trace alone and
    #: leave this False.
    seedable: ClassVar[bool] = False
    #: The replacement policy whose fetch counts this provider's curves
    #: report.  ``"lru"`` for every stack-distance kernel.
    policy: ClassVar[str] = "lru"
    #: True when streams produce mergeable shard summaries (see
    #: :meth:`KernelStream.shard_summary`); per-size replay providers
    #: cannot merge contiguous shards and leave this False.
    mergeable: ClassVar[bool] = False

    @abc.abstractmethod
    def _new_stream(self) -> KernelStream:
        """Implementation hook: a fresh single-use stream."""

    def stream(self) -> KernelStream:
        """A fresh single-use stream for one trace.

        The stream is tagged with this kernel's registry ``name`` so the
        pass profile it publishes at ``finish()`` (references consumed,
        feed time, references/second) is labeled per kernel.
        """
        s = self._new_stream()
        s.kernel_name = self.name
        return s

    def analyze(self, trace: Iterable[int]):
        """One-shot analysis: stream the whole ``trace`` and finish."""
        s = self.stream()
        s.feed(trace)
        return s.finish()

    def reseeded(
        self, seed: int, *, require: bool = False
    ) -> "FetchCurveProvider":
        """A copy of this kernel keyed to ``seed``.

        Deterministic parallel runs derive one seed per scan and call this
        so every worker sees the same randomness regardless of scheduling.
        The base-class contract is explicit: exact kernels are seed-free
        no-ops returning ``self``; seedable kernels (``seedable = True``,
        e.g. the SHARDS-style sampled kernel) override this to return a
        reconfigured copy.  Callers that genuinely depend on the seed
        taking effect — sharded sampled passes must share one hash seed
        across workers — pass ``require=True``, which turns the silent
        no-op into a :class:`~repro.errors.KernelError`.
        """
        if require and not self.seedable:
            raise KernelError(
                f"kernel {self.name!r} does not support seeding but the "
                f"caller requires seed {seed} to take effect"
            )
        del seed
        return self


class StackDistanceKernel(FetchCurveProvider):
    """One pluggable implementation of the LRU stack-distance pass.

    Subclasses set ``name`` (the registry key) and ``exact`` (whether the
    kernel reproduces the baseline bit-for-bit) and implement
    :meth:`stream`.  All stack kernels rely on LRU's stack (inclusion)
    property — one pass yields F(B) for every B simultaneously — so the
    policy dimension is pinned to ``"lru"`` here.
    """

    policy: ClassVar[str] = "lru"
    #: Every built-in stack kernel supports the shard-and-merge pass
    #: (:mod:`repro.buffer.kernels.sharded`).
    mergeable: ClassVar[bool] = True
