"""Optional numpy kernel: vectorized offline stack-distance computation.

The stack depth of a reuse at position ``t`` with previous occurrence
``prev(t)`` equals the number of positions ``j < t`` whose *own* previous
occurrence satisfies ``prev(j) <= prev(t)`` (each such ``j`` is the most
recent touch of a distinct page in the window), minus the window start —
a classic 2-D dominance-counting problem.  This kernel solves it offline
with a bottom-up merge over power-of-two levels: at each level the query
side is answered by one global ``np.searchsorted`` against per-block sorted
``prev`` arrays (a row-offset trick turns the ragged per-block queries into
a single flat call), giving O(M log^2 M) work executed entirely inside
numpy's C loops.

Results are bit-identical to the baseline kernel.  The module always
imports — :data:`HAVE_NUMPY` reports availability — but the kernel class
raises :class:`~repro.errors.KernelError` at construction when numpy is
missing, and :mod:`repro.buffer.kernels` only registers it when numpy
imports, keeping the package zero-dependency.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List

from repro.buffer.kernels.base import KernelStream, StackDistanceKernel
from repro.buffer.kernels.mergeable import ExactShardSummary
from repro.buffer.stack import FetchCurve
from repro.errors import KernelError, TraceError

try:  # pragma: no cover - exercised implicitly by the registry
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: True when numpy imported and the kernel is usable.
HAVE_NUMPY = _np is not None


def _vectorized_distances(pages) -> "tuple[list, int]":
    """Return ``(distances, cold_misses)`` for an int64 array of pages."""
    np = _np
    n = int(pages.size)
    # prev[t] = position of the previous occurrence of pages[t], or -1.
    order = np.lexsort((np.arange(n), pages))
    sorted_pages = pages[order]
    prev = np.full(n, -1, dtype=np.int64)
    same = sorted_pages[1:] == sorted_pages[:-1]
    prev[order[1:][same]] = order[:-1][same]

    q_t = np.nonzero(prev >= 0)[0]  # positions of reuses (queries)
    cold = n - int(q_t.size)
    if q_t.size == 0:
        return [], cold
    q_p = prev[q_t]  # query thresholds

    # acc[i] counts positions j < q_t[i] with prev[j] <= q_p[i]; every
    # such j is the most recent touch of a distinct page no later than
    # q_p[i], so distance = acc - q_p (depth is 1-based and the q_p + 1
    # positions at or before q_p are all dominated).
    acc = np.zeros(q_t.size, dtype=np.int64)

    # Pad to a power of two so every merge level is a clean reshape; the
    # sentinel n + 2 exceeds every real prev value but keeps the
    # row-offset arithmetic far from int64 overflow.
    n2 = 1 << (n - 1).bit_length() if n > 1 else 1
    big = np.int64(n + 2)
    prevpad = np.full(n2, big, dtype=np.int64)
    prevpad[:n] = prev

    width = 1
    while width < n2:
        block = q_t // (2 * width)  # which merge pair each query is in
        in_right = (q_t % (2 * width)) >= width
        sel = np.nonzero(in_right)[0]
        if sel.size:
            # Left-half values, sorted per block: the candidates dominated
            # by queries living in the right half of the same block.  The
            # row-offset trick lets one global searchsorted answer every
            # block's queries at once.
            lefts = prevpad.reshape(-1, 2 * width)[:, :width]
            sorted_left = np.sort(lefts, axis=1)
            off = big + 1
            row_offsets = (
                np.arange(sorted_left.shape[0], dtype=np.int64) * off
            )
            flat = (sorted_left + row_offsets[:, None]).ravel()
            qb = block[sel]
            keys = q_p[sel] + qb * off
            acc[sel] += np.searchsorted(flat, keys, side="right") - qb * width
        width *= 2

    return (acc - q_p).tolist(), cold


class _VectorizedStream(KernelStream):
    """Buffers chunks as arrays; the analysis itself is offline."""

    def __init__(self) -> None:
        self._chunks: List = []  # one int64 ndarray per fed chunk

    def _consume(self, pages: Iterable[int]) -> None:
        arr = _np.asarray(
            pages if isinstance(pages, (list, tuple)) else list(pages),
            dtype=_np.int64,
        )
        if arr.size:
            self._chunks.append(arr)

    def _result(self) -> FetchCurve:
        if not self._chunks:
            raise TraceError("cannot build a FetchCurve from an empty trace")
        pages = (
            self._chunks[0]
            if len(self._chunks) == 1
            else _np.concatenate(self._chunks)
        )
        self._chunks = []
        distances, cold = _vectorized_distances(pages)
        return FetchCurve.from_distances(distances, cold)

    def shard_summary(self) -> ExactShardSummary:
        """Reduce this stream's shard to a mergeable summary.

        First- and last-occurrence orders come from ``np.unique`` with
        ``return_index`` over the buffer and its reverse — still fully
        vectorized, no Python loop over references.
        """
        self._close_for_summary()
        np = _np
        if not self._chunks:
            return ExactShardSummary({}, (), (), 0)
        pages = (
            self._chunks[0]
            if len(self._chunks) == 1
            else np.concatenate(self._chunks)
        )
        self._chunks = []
        distances, cold = _vectorized_distances(pages)
        n = int(pages.size)
        uniq, first_idx = np.unique(pages, return_index=True)
        first_seen = tuple(
            int(p) for p in uniq[np.argsort(first_idx, kind="stable")]
        )
        uniq_r, rev_idx = np.unique(pages[::-1], return_index=True)
        last_idx = n - 1 - rev_idx
        recency = tuple(
            int(p) for p in uniq_r[np.argsort(last_idx, kind="stable")]
        )
        return ExactShardSummary(
            histogram=dict(Counter(distances)),
            first_seen=first_seen,
            recency=recency,
            references=n,
        )


class VectorizedKernel(StackDistanceKernel):
    """Exact numpy kernel (auto-registered only when numpy is present)."""

    name = "numpy"
    exact = True

    def __init__(self) -> None:
        if not HAVE_NUMPY:
            raise KernelError(
                "the 'numpy' kernel requires numpy, which is not installed"
            )

    def _new_stream(self) -> KernelStream:
        """A fresh buffering stream."""
        return _VectorizedStream()
