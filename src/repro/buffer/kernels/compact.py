"""Exact compact kernel: recency slots + one big-integer occupancy mask.

The baseline pass indexes its Fenwick tree by *trace position*, so its cost
is O(M log M) in the trace length M.  This kernel keys state by *live page*
instead: each currently-live page owns a slot, a single Python big integer
holds one occupancy bit per slot, and the stack depth of a reuse is

    depth = popcount(mask >> (prev_slot + 1)) + 1

i.e. the number of pages touched more recently than the previous occurrence.
CPython's ``int.bit_count`` makes the popcount one C call over D-bit words,
so the pass runs in O(M · D/w) word operations for D distinct live pages —
in practice 3-30x faster than the baseline, fastest on clustered traces
thanks to a repeated-page fast path (depth 1 without touching the mask).

Slots are assigned monotonically; when the slot space fills, live pages are
re-packed densely (ordered by recency, preserving all depths) and capacity
is re-sized to 3x the live-page count, keeping the mask width proportional
to D rather than M.

Results are bit-identical to the baseline kernel.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List

from repro.buffer.kernels.base import KernelStream, StackDistanceKernel
from repro.buffer.kernels.mergeable import ExactShardSummary
from repro.buffer.stack import FetchCurve

#: Initial slot capacity; compaction never shrinks below this.
_MIN_CAPACITY = 4096


class _CompactStream(KernelStream):
    """Chunk-fed big-integer recency pass."""

    def __init__(self) -> None:
        self._slot_of: Dict[int, int] = {}
        self._mask = 0
        self._next_slot = 0
        self._capacity = _MIN_CAPACITY
        # powers[i] == 1 << i, precomputed: the hot loop then never builds
        # a fresh big int for single-bit updates.
        self._powers: List[int] = [1 << i for i in range(_MIN_CAPACITY + 1)]
        self._distances: List[int] = []
        self._cold = 0
        # Cold misses in order: slot insertion order is recency (pages
        # are re-inserted on reuse), so first-touch order must be kept
        # separately for shard summaries.
        self._first_seen: List[int] = []
        self._last_page: object = object()  # sentinel unequal to any page

    def _compact(self) -> None:
        """Re-pack live pages into slots 0..D-1, ordered by recency."""
        live = sorted(self._slot_of.items(), key=lambda kv: kv[1])
        self._slot_of = {page: i for i, (page, _slot) in enumerate(live)}
        d = len(self._slot_of)
        powers = self._powers
        self._mask = powers[d] - 1
        self._next_slot = d
        capacity = max(_MIN_CAPACITY, 3 * d)
        if capacity > self._capacity:
            powers.extend(
                1 << i for i in range(self._capacity + 1, capacity + 1)
            )
        self._capacity = capacity

    def _consume(self, pages: Iterable[int]) -> None:
        slot_of = self._slot_of
        pop = slot_of.pop
        mask = self._mask
        next_slot = self._next_slot
        capacity = self._capacity
        powers = self._powers
        append = self._distances.append
        # setdefault tolerates snapshots pickled before _first_seen
        # existed (they resume, but cannot produce shard summaries).
        first_append = self.__dict__.setdefault("_first_seen", []).append
        cold = self._cold
        last_page = self._last_page
        for page in pages:
            if page == last_page:
                # Immediate re-reference: depth 1, recency order unchanged.
                append(1)
                continue
            last_page = page
            prev = pop(page, None)
            if prev is not None:
                append((mask >> (prev + 1)).bit_count() + 1)
                mask ^= powers[prev]
            else:
                cold += 1
                first_append(page)
            if next_slot >= capacity:
                self._slot_of = slot_of
                self._mask = mask
                self._compact()
                slot_of = self._slot_of
                pop = slot_of.pop
                mask = self._mask
                next_slot = self._next_slot
                capacity = self._capacity
            slot_of[page] = next_slot
            mask |= powers[next_slot]
            next_slot += 1
        self._slot_of = slot_of
        self._mask = mask
        self._next_slot = next_slot
        self._cold = cold
        self._last_page = last_page

    def _result(self) -> FetchCurve:
        return FetchCurve.from_distances(self._distances, self._cold)

    def shard_summary(self) -> ExactShardSummary:
        """Reduce this stream's shard to a mergeable summary.

        Live slots sorted by slot number are exactly last-access order
        (the invariant ``_compact`` relies on); first-touch order comes
        from the ``_first_seen`` list maintained on cold misses.
        """
        self._close_for_summary()
        slot_of = self._slot_of
        return ExactShardSummary(
            histogram=dict(Counter(self._distances)),
            first_seen=tuple(self.__dict__.get("_first_seen", ())),
            recency=tuple(sorted(slot_of, key=slot_of.__getitem__)),
            references=self._cold + len(self._distances),
        )


class CompactKernel(StackDistanceKernel):
    """Exact O(M log D)-style kernel keyed by distinct live pages."""

    name = "compact"
    exact = True

    def _new_stream(self) -> KernelStream:
        """A fresh big-integer recency stream."""
        return _CompactStream()
