"""Approximate kernel: SHARDS-style fixed-rate spatial hash sampling.

Instead of analyzing every reference, this kernel analyzes only the
references to a fixed pseudo-random *subset of pages* — every page whose
24-bit hash falls under ``rate * 2**24`` (Waldspurger et al.'s SHARDS
construction).  Sampling by page (not by reference) preserves each sampled
page's complete reuse pattern, so the sampled sub-trace yields unbiased
stack-depth observations; depths measured in the sub-trace are then rescaled
by the realized inverse sampling ratio ``k = A / A_s`` (distinct pages over
distinct *sampled* pages) to estimate true depths.

What stays **exact** (the hash cache sees every reference, so these are
free): the total reference count ``M``, the distinct-page count ``A``, and —
for the stratified estimator — every page's reference count.  Only the shape
of the depth distribution is estimated.

Robustness measures, each of which the bench traces demonstrably need:

* **Small-universe escape hatch** — references are buffered verbatim until
  more than ``min_pages`` distinct pages appear; tiny traces get an exact
  analysis (and exactly match the baseline kernel).
* **Adaptive minimum sample** — references are recorded at ``guard_factor``
  times the target rate; if fewer than ``min_pages`` pages fall under the
  target threshold, the threshold is raised to the ``min_pages``-th smallest
  page hash (never past the guard rate).  This bounds the variance blow-up
  of very small samples at a bounded cost.
* **Post-stratification** (``stratify=True``, the default) — pages are
  binned by the exact number of reuses they contribute
  (``(count-1).bit_length()``); each bin's *mass* is exact and only its
  depth distribution comes from the sample, which keeps heavy Zipf-skewed
  traces from being misrepresented when the sample happens to miss or
  over-draw hot pages.
* **Frequency-scaled extrapolation** — a fixed-rate spatial sample is very
  likely to miss the handful of hottest pages on a skewed trace, leaving
  the hottest strata with exact mass but no sampled depths.  Borrowing the
  nearest sampled stratum's distribution *unscaled* places that mass far
  too deep (a page referenced twice as often has roughly half the gap, and
  a concave working-set function maps half the gap to between 0.5x and 1x
  the depth).  Instead, the kernel fits the per-stratum geometric decay of
  mean depth on the well-observed strata and scales the borrowed histogram
  by ``decay ** (bin_distance)``, clamped to the physically meaningful
  band ``[0.5, 1]`` per bin.  On the benchmark's Zipf trace this cuts the
  band error from ~26% to ~3%.

Error bound: with the defaults (``rate=0.01``, ``min_pages=256``,
``guard_factor=16``, the default seed) the estimated curve's relative error
``|F_hat(B) - F(B)| / F(B)`` stays within :data:`SAMPLED_BAND_ERROR_BOUND`
(5%) across the evaluation band ``0.05*T <= B <= 0.9*T`` used by every
experiment in this repo (see
:func:`repro.eval.buffer_grid.evaluation_buffer_grid`) on the benchmark's
uniform *and* Zipf traces; ``benchmarks/run_core_bench.py`` measures and
records the realized bound.  Re-seeding (as the parallel experiment runner
does per scan) re-draws the page sample, so individual seeds can exceed the
bound by a few points; the mean over seeds stays well inside it.  Outside
the band — very small pools, or pools larger than 90% of the page universe
— the *relative* error can exceed the bound because ``F`` approaches its
compulsory-miss floor while the absolute error stays small.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.buffer.kernels.base import KernelStream, StackDistanceKernel
from repro.buffer.kernels.compact import _MIN_CAPACITY
from repro.errors import KernelError, TraceError

#: Width of the sampling hash; thresholds live in ``[0, 2**24)``.
HASH_BITS = 24
_HSPACE = 1 << HASH_BITS
_M64 = (1 << 64) - 1

#: Default sampling seed (any int works; fixed for reproducibility).
DEFAULT_SEED = 0x5EED
#: Default page-sampling rate.
DEFAULT_RATE = 0.01
#: Minimum sampled-page count before the rate is trusted.
DEFAULT_MIN_PAGES = 256
#: References are recorded at this multiple of the target rate so the
#: threshold can be raised after the fact without a second pass.
DEFAULT_GUARD_FACTOR = 16

#: Strata need at least this many sampled depths to anchor the
#: frequency-decay fit used to extrapolate unsampled strata.
_MIN_FIT_OBSERVATIONS = 24
#: Per-bin depth-decay clamp: doubling a page's reference count halves its
#: mean gap, which shrinks its mean depth by between 0.5x (linear
#: working-set function) and 1x (flat).
_MIN_BIN_DECAY = 0.5

#: Documented max relative F(B) error of the default configuration on the
#: evaluation band 0.05*T..0.9*T (see the module docstring).
SAMPLED_BAND_ERROR_BOUND = 0.05


def _hash24(page: int, seed: int) -> int:
    """SplitMix64-style avalanche of ``page`` truncated to 24 bits."""
    z = ((page + seed) * 0x9E3779B97F4A7C15) & _M64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _M64
    return (z ^ (z >> 31)) & (_HSPACE - 1)


def _tagged_distances(
    seq: Iterable[int],
) -> Tuple[List[Tuple[int, int]], int]:
    """Compact stack-distance pass that keeps the page of each reuse.

    Same big-integer recency algorithm as the ``compact`` kernel, but each
    output element is ``(page, depth)`` so depths can be post-stratified by
    page statistics.  Returns ``(pairs, cold_misses)``.
    """
    slot_of: Dict[int, int] = {}
    pop = slot_of.pop
    mask = 0
    next_slot = 0
    capacity = _MIN_CAPACITY
    powers = [1 << i for i in range(capacity + 1)]
    pairs: List[Tuple[int, int]] = []
    append = pairs.append
    cold = 0
    for page in seq:
        prev = pop(page, None)
        if prev is not None:
            append((page, (mask >> (prev + 1)).bit_count() + 1))
            mask ^= powers[prev]
        else:
            cold += 1
        if next_slot >= capacity:
            live = sorted(slot_of.items(), key=lambda kv: kv[1])
            slot_of = {p: i for i, (p, _s) in enumerate(live)}
            pop = slot_of.pop
            d = len(slot_of)
            mask = powers[d] - 1
            next_slot = d
            newcap = max(_MIN_CAPACITY, 3 * d)
            if newcap > capacity:
                powers.extend(
                    1 << i for i in range(capacity + 1, newcap + 1)
                )
            capacity = newcap
        slot_of[page] = next_slot
        mask |= powers[next_slot]
        next_slot += 1
    return pairs, cold


def _fit_bin_decay(hists: Dict[int, Dict[int, int]]) -> float:
    """Per-bin geometric decay of mean depth, fitted on sampled strata.

    Weighted least squares of ``log(mean depth)`` against the bin index
    over every stratum with at least :data:`_MIN_FIT_OBSERVATIONS` sampled
    depths; the result is ``exp(slope)``, clamped to the physically
    meaningful band ``[_MIN_BIN_DECAY, 1]`` (see the module docstring).
    Falls back to 1.0 (flat borrowing) when fewer than two strata qualify.
    """
    observations = []
    for b, hist in hists.items():
        n = sum(hist.values())
        if n >= _MIN_FIT_OBSERVATIONS:
            mean = sum(d * c for d, c in hist.items()) / n
            observations.append((b, math.log(mean), n))
    if len(observations) < 2:
        return 1.0
    weight = sum(n for _b, _l, n in observations)
    mean_b = sum(b * n for b, _l, n in observations) / weight
    mean_l = sum(l * n for _b, l, n in observations) / weight
    var = sum(n * (b - mean_b) ** 2 for b, _l, n in observations)
    if not var:
        return 1.0
    slope = sum(
        n * (b - mean_b) * (l - mean_l) for b, l, n in observations
    ) / var
    return min(1.0, max(_MIN_BIN_DECAY, math.exp(slope)))


class ApproximateFetchCurve:
    """A sampled estimate of ``B -> F(B)`` with the exact curve's query API.

    Drop-in compatible with :class:`~repro.buffer.stack.FetchCurve` for the
    operations the library performs (``fetches``, ``hits``, ``curve``,
    ``min_buffer_for``, and the ``accesses`` / ``distinct_pages`` /
    ``reuses`` counters — the counters are exact, only the depth
    distribution is estimated).
    """

    __slots__ = (
        "accesses",
        "distinct_pages",
        "effective_rate",
        "sampled_pages",
        "sampled_reuses",
        "_k",
        "_strata",
        "_max_scaled_depth",
    )

    def __init__(
        self,
        accesses: int,
        distinct_pages: int,
        k: float,
        strata: Tuple[Tuple[int, Tuple[Tuple[int, int], ...], int], ...],
        effective_rate: float,
        sampled_pages: int,
        sampled_reuses: int,
    ) -> None:
        #: Exact total references (the paper's M).
        self.accesses = accesses
        #: Exact distinct pages (compulsory misses; the paper's A).
        self.distinct_pages = distinct_pages
        #: Realized sampling rate after the min-pages guard.
        self.effective_rate = effective_rate
        #: Distinct pages that fell under the sampling threshold.
        self.sampled_pages = sampled_pages
        #: Reuse observations contributing depth information.
        self.sampled_reuses = sampled_reuses
        self._k = k
        # Each stratum: (exact reuse mass, sorted (depth, count) hist, n).
        self._strata = strata
        self._max_scaled_depth = max(
            (hist[-1][0] for _m, hist, _n in strata if hist), default=0
        )

    def __eq__(self, other: object) -> bool:
        """Value equality over the complete curve state.

        Two curves that compare equal answer every query identically —
        the check the sharded merge path's bit-identity claim rests on.
        """
        if not isinstance(other, ApproximateFetchCurve):
            return NotImplemented
        return all(
            getattr(self, slot) == getattr(other, slot)
            for slot in self.__slots__
        )

    __hash__ = None  # mutable-style value equality: not hashable

    @property
    def reuses(self) -> int:
        """Exact count of non-compulsory references."""
        return self.accesses - self.distinct_pages

    @property
    def max_depth(self) -> int:
        """Estimated largest reuse depth (scaled; 0 with no reuse info)."""
        return math.ceil(self._max_scaled_depth * self._k)

    def fetches(self, buffer_pages: int) -> int:
        """Estimated page fetches for an LRU pool of ``buffer_pages``.

        Each sampled depth ``d`` represents true depths spread uniformly
        over ``((d-1)*k, d*k]``; a pool of size B therefore absorbs the
        fraction ``min((B - (d-1)*k) / k, 1)`` of that depth's mass.  The
        result is clamped to the exact bounds ``[distinct_pages,
        accesses]`` and is non-increasing in B.
        """
        if buffer_pages < 1:
            raise TraceError(
                f"buffer size must be >= 1, got {buffer_pages}"
            )
        k = self._k
        est_hits = 0.0
        for mass, hist, n in self._strata:
            if not hist:
                continue
            frac = 0.0
            for depth, count in hist:
                lo = (depth - 1) * k
                if buffer_pages <= lo:
                    break
                covered = (buffer_pages - lo) / k
                frac += count if covered >= 1.0 else count * covered
            est_hits += mass * (frac / n)
        estimate = round(self.accesses - est_hits)
        return min(self.accesses, max(self.distinct_pages, estimate))

    def hits(self, buffer_pages: int) -> int:
        """Estimated accesses satisfied from the pool."""
        return self.accesses - self.fetches(buffer_pages)

    def curve(self, buffer_sizes: Iterable[int]) -> List[Tuple[int, int]]:
        """``[(B, F_hat(B)), ...]`` for each requested buffer size."""
        return [(b, self.fetches(b)) for b in buffer_sizes]

    def min_buffer_for(self, max_fetches: int) -> int:
        """Smallest ``B`` with estimated ``F(B) <= max_fetches``."""
        if max_fetches < self.distinct_pages:
            raise TraceError(
                f"no buffer size achieves <= {max_fetches} fetches; the "
                f"compulsory-miss floor is {self.distinct_pages}"
            )
        hi = max(1, self.max_depth)
        if self.fetches(hi) > max_fetches:
            raise TraceError(
                f"the sampled estimate never reaches <= {max_fetches} "
                f"fetches (no depth information beyond B={hi})"
            )
        lo = 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.fetches(mid) <= max_fetches:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def __repr__(self) -> str:
        return (
            f"ApproximateFetchCurve(accesses={self.accesses}, "
            f"distinct={self.distinct_pages}, "
            f"rate={self.effective_rate:.4f}, "
            f"sampled_pages={self.sampled_pages})"
        )


@dataclass(frozen=True)
class SampledShardSummary:
    """One shard's complete SHARDS state, mergeable by summation.

    Because the 24-bit page hash is a pure function of ``(page, seed)``,
    shards running under a shared seed sample *the same page subset*;
    their per-page states merge by adding reference counts, and their
    guard-rate sub-traces concatenate in shard order.  The merged state
    is byte-for-byte the state a single pass over the concatenated trace
    would hold — see :func:`merge_sampled_summaries`.
    """

    #: ``(seed, target_t, guard_t, min_pages, stratify)`` — shards with
    #: different fingerprints sampled different subsets and must not be
    #: merged.
    fingerprint: Tuple[int, int, int, int, bool]
    #: page -> [hash24, exact reference count].
    state: Dict[int, List[int]]
    #: Guard-rate recorded references, in shard trace order.
    sub: List[int]
    #: Verbatim buffer while the escape hatch was still armed, else None.
    raw: Optional[List[int]]
    #: References the shard consumed.
    references: int


class _SampledStream(KernelStream):
    """Chunk-fed SHARDS pass: hash-cache + guard-rate reference recording."""

    def __init__(self, kernel: "SampledKernel") -> None:
        self._seed = kernel.seed
        self._min_pages = kernel.min_pages
        self._stratify = kernel.stratify
        self._target_t = max(1, round(kernel.rate * _HSPACE))
        self._guard_t = min(_HSPACE, self._target_t * kernel.guard_factor)
        # page -> [hash24, exact reference count]
        self._state: Dict[int, List[int]] = {}
        # Pages of references recorded at the guard rate, in trace order.
        self._sub: List[int] = []
        # Verbatim buffer for the small-universe escape hatch; dropped
        # (set to None) once the universe outgrows min_pages.
        self._raw: Optional[List[int]] = []
        self._total = 0

    def _consume(self, pages: Iterable[int]) -> None:
        if self._raw is not None:
            self._consume_tiny(pages)
        else:
            self._consume_fast(pages)

    def _consume_tiny(self, pages: Iterable[int]) -> None:
        """Slow path while the escape hatch is armed (tiny universes)."""
        it = iter(pages)
        state = self._state
        raw = self._raw
        min_pages = self._min_pages
        for page in it:
            self._consume_fast((page,))
            raw.append(page)
            if len(state) > min_pages:
                self._raw = None
                self._consume_fast(it)
                return

    def _consume_fast(self, pages: Iterable[int]) -> None:
        """The hot loop: exact counting plus guard-rate recording."""
        state = self._state
        get = state.get
        sub_append = self._sub.append
        guard_t = self._guard_t
        seed = self._seed
        total = self._total
        for page in pages:
            total += 1
            v = get(page)
            if v is None:
                z = ((page + seed) * 0x9E3779B97F4A7C15) & _M64
                z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _M64
                z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _M64
                h = (z ^ (z >> 31)) & 0xFFFFFF
                state[page] = [h, 1]
                if h < guard_t:
                    sub_append(page)
            else:
                v[1] += 1
                if v[0] < guard_t:
                    sub_append(page)
        self._total = total

    def shard_summary(self) -> SampledShardSummary:
        """Hand over this stream's complete state for merging."""
        self._close_for_summary()
        return SampledShardSummary(
            fingerprint=_stream_fingerprint(self),
            state=self._state,
            sub=self._sub,
            raw=self._raw,
            references=self._total,
        )

    def _result(self):
        if not self._total:
            raise TraceError("cannot build a FetchCurve from an empty trace")
        if self._raw is not None:
            # Escape hatch: the universe never outgrew min_pages, so an
            # exact pass is both cheap and exactly right.
            from repro.buffer.kernels.compact import CompactKernel

            return CompactKernel().analyze(self._raw)

        state = self._state
        total = self._total
        distinct = len(state)
        hashes = sorted(v[0] for v in state.values())
        thresh = max(
            self._target_t,
            min(self._guard_t, hashes[self._min_pages - 1] + 1),
        )
        if thresh >= self._guard_t:
            filtered = self._sub
        else:
            filtered = [p for p in self._sub if state[p][0] < thresh]
        tagged, sampled_pages = _tagged_distances(filtered)
        k = distinct / sampled_pages if sampled_pages else 1.0

        masses: Dict[int, int] = {}
        hists: Dict[int, Dict[int, int]] = {}
        if self._stratify:
            for _page, (_h, count) in state.items():
                if count > 1:
                    b = (count - 1).bit_length()
                    masses[b] = masses.get(b, 0) + count - 1
            for page, depth in tagged:
                hist = hists.setdefault((state[page][1] - 1).bit_length(), {})
                hist[depth] = hist.get(depth, 0) + 1
        else:
            if total > distinct:
                masses[0] = total - distinct
            if tagged:
                hist = hists.setdefault(0, {})
                for _page, depth in tagged:
                    hist[depth] = hist.get(depth, 0) + 1

        sampled_bins = sorted(hists)
        decay = _fit_bin_decay(hists)
        strata = []
        for b in sorted(masses):
            if sampled_bins:
                src = min(sampled_bins, key=lambda x: abs(x - b))
                hist = hists[src]
                if b != src:
                    # Borrowed histogram: rescale depths by the fitted
                    # per-bin decay so strata the sample missed (usually
                    # the hottest) land at their own depth scale.
                    scale = decay ** (b - src)
                    scaled: Dict[int, int] = {}
                    for depth, count in hist.items():
                        d = max(1, round(depth * scale))
                        scaled[d] = scaled.get(d, 0) + count
                    hist = scaled
                hist_items = tuple(sorted(hist.items()))
                n = sum(hist.values())
            else:
                hist_items = ()
                n = 0
            strata.append((masses[b], hist_items, n))

        return ApproximateFetchCurve(
            accesses=total,
            distinct_pages=distinct,
            k=k,
            strata=tuple(strata),
            effective_rate=thresh / _HSPACE,
            sampled_pages=sampled_pages,
            sampled_reuses=len(tagged),
        )


def _stream_fingerprint(
    stream: "_SampledStream",
) -> Tuple[int, int, int, int, bool]:
    """The sampling configuration a shard's state depends on."""
    return (
        stream._seed,
        stream._target_t,
        stream._guard_t,
        stream._min_pages,
        stream._stratify,
    )


def merge_sampled_summaries(
    summaries: Sequence[SampledShardSummary], kernel: "SampledKernel"
) -> ApproximateFetchCurve:
    """Merge sampled shard summaries (in trace order) into one estimate.

    Reconstructs the internal state a single ``kernel`` pass over the
    concatenated trace would hold — per-page counts sum (hashes are
    identical under the shared seed), guard-rate sub-traces concatenate,
    and the escape-hatch buffer survives exactly when the *merged*
    universe stays within ``min_pages`` (which implies every shard kept
    its own buffer) — then runs the standard estimator on it.  The
    merged result is therefore **bit-identical** to single-pass
    ``kernel.analyze`` on the full trace, and the documented
    :data:`SAMPLED_BAND_ERROR_BOUND` transfers to merged estimates
    unchanged.

    Raises :class:`~repro.errors.KernelError` when the summaries were
    produced under differing sampling configurations (different seeds
    sample different page subsets; their states are incommensurable).
    """
    if not summaries:
        raise KernelError("cannot merge zero shard summaries")
    stream = kernel.stream()
    expected = _stream_fingerprint(stream)
    for i, summary in enumerate(summaries):
        if summary.fingerprint != expected:
            raise KernelError(
                f"sampled shard {i} was produced under fingerprint "
                f"{summary.fingerprint}, expected {expected}; sharded "
                f"sampled passes must share one hash seed and "
                f"configuration"
            )
    state: Dict[int, List[int]] = {}
    sub: List[int] = []
    total = 0
    for summary in summaries:
        total += summary.references
        get = state.get
        for page, (h, count) in summary.state.items():
            v = get(page)
            if v is None:
                state[page] = [h, count]
            else:
                v[1] += count
        sub.extend(summary.sub)
    raw: Optional[List[int]] = None
    if len(state) <= stream._min_pages:
        # Every shard's local universe is a subset of the merged one, so
        # each shard's escape hatch is still armed and the concatenated
        # buffers reconstruct the full trace verbatim.
        raw = []
        for summary in summaries:
            raw.extend(summary.raw or ())
    stream._state = state
    stream._sub = sub
    stream._raw = raw
    stream._total = total
    stream._finished = True
    return stream._result()


class SampledKernel(StackDistanceKernel):
    """SHARDS-style approximate kernel (page sampling at a fixed rate)."""

    name = "sampled"
    exact = False
    seedable = True

    def __init__(
        self,
        rate: float = DEFAULT_RATE,
        seed: int = DEFAULT_SEED,
        min_pages: int = DEFAULT_MIN_PAGES,
        guard_factor: int = DEFAULT_GUARD_FACTOR,
        stratify: bool = True,
    ) -> None:
        if not 0.0 < rate <= 1.0:
            raise KernelError(f"sampling rate must be in (0, 1], got {rate}")
        if min_pages < 1:
            raise KernelError(f"min_pages must be >= 1, got {min_pages}")
        if guard_factor < 1:
            raise KernelError(
                f"guard_factor must be >= 1, got {guard_factor}"
            )
        self.rate = rate
        self.seed = int(seed)
        self.min_pages = min_pages
        self.guard_factor = guard_factor
        self.stratify = stratify

    def _new_stream(self) -> KernelStream:
        """A fresh sampling stream bound to this kernel's configuration."""
        return _SampledStream(self)

    def reseeded(
        self, seed: int, *, require: bool = False
    ) -> "SampledKernel":
        """The same configuration under a different sampling seed."""
        del require  # seeding is always supported here
        return SampledKernel(
            rate=self.rate,
            seed=seed,
            min_pages=self.min_pages,
            guard_factor=self.guard_factor,
            stratify=self.stratify,
        )
