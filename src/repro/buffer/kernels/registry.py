"""Name-based registry of fetch-curve providers, in two dimensions.

The registry is how the rest of the library (``LRUFitConfig``, the CLI, the
benchmarks) names a kernel without importing its module.  It has two
dimensions:

* the **stack-kernel** dimension (:func:`register_kernel` /
  :func:`available_kernels`): interchangeable implementations of the LRU
  Mattson pass, all producing the same LRU curve.  Built-ins self-register
  when :mod:`repro.buffer.kernels` is imported; the optional numpy kernel
  registers only when numpy is importable, keeping the package itself
  zero-dependency.
* the **policy** dimension (:func:`register_policy_kernel` /
  :func:`available_policy_kernels`): one simulated-policy provider per
  non-LRU replacement policy (``clock``, ``2q``, ``lecar-tinylfu``).
  These are *not* listed by :func:`available_kernels` — every consumer of
  that tuple (sharded passes, the perf harness, kernel equivalence tests)
  assumes LRU semantics — but :func:`get_kernel` resolves both dimensions,
  so a policy name works anywhere a kernel name is accepted.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple, Union

from repro.buffer.kernels.base import FetchCurveProvider, StackDistanceKernel
from repro.errors import KernelError

#: The kernel used when none is named: the original Fenwick pass.
DEFAULT_KERNEL = "baseline"

_FACTORIES: Dict[str, Callable[..., StackDistanceKernel]] = {}
_POLICY_FACTORIES: Dict[str, Callable[..., FetchCurveProvider]] = {}


def register_kernel(
    name: str,
    factory: Callable[..., StackDistanceKernel],
    replace: bool = False,
) -> None:
    """Register ``factory`` (usually a kernel class) under ``name``.

    Registering an already-taken name raises
    :class:`~repro.errors.KernelError` unless ``replace=True`` — tests and
    downstream experiments may override a built-in deliberately, but should
    never do so by accident.  Names are shared across both registry
    dimensions, so a stack kernel can never shadow a policy kernel.
    """
    if not name or not isinstance(name, str):
        raise KernelError(f"kernel name must be a non-empty string, got {name!r}")
    if name in _POLICY_FACTORIES:
        raise KernelError(
            f"kernel {name!r} is already registered as a policy kernel"
        )
    if name in _FACTORIES and not replace:
        raise KernelError(
            f"kernel {name!r} is already registered; pass replace=True "
            f"to override"
        )
    _FACTORIES[name] = factory


def register_policy_kernel(
    name: str,
    factory: Callable[..., FetchCurveProvider],
    replace: bool = False,
) -> None:
    """Register a simulated-policy provider under ``name``.

    The policy dimension is kept apart from :func:`available_kernels` on
    purpose: policy curves are exact with respect to their *own* pool
    simulator, not the LRU baseline, so they must never be swept into
    code paths that assume every registered kernel reproduces LRU.
    """
    if not name or not isinstance(name, str):
        raise KernelError(f"kernel name must be a non-empty string, got {name!r}")
    if name in _FACTORIES:
        raise KernelError(
            f"kernel {name!r} is already registered as a stack kernel"
        )
    if name in _POLICY_FACTORIES and not replace:
        raise KernelError(
            f"policy kernel {name!r} is already registered; pass "
            f"replace=True to override"
        )
    _POLICY_FACTORIES[name] = factory


def available_kernels() -> Tuple[str, ...]:
    """Sorted names of every registered *stack-distance* kernel.

    Policy kernels are deliberately excluded — see
    :func:`available_policy_kernels`.
    """
    return tuple(sorted(_FACTORIES))


def available_policy_kernels() -> Tuple[str, ...]:
    """Sorted names of every registered simulated-policy kernel."""
    return tuple(sorted(_POLICY_FACTORIES))


def get_kernel(name: str = DEFAULT_KERNEL, **options) -> FetchCurveProvider:
    """Instantiate the provider registered under ``name``.

    Resolves both dimensions: stack kernels first, then policy kernels,
    so ``get_kernel("clock")`` returns the CLOCK provider.  ``options``
    are forwarded to the factory (e.g. ``get_kernel("sampled",
    rate=0.05)``).
    """
    factory = _FACTORIES.get(name) or _POLICY_FACTORIES.get(name)
    if factory is None:
        raise KernelError(
            f"unknown fetch-curve kernel {name!r}; available: "
            f"{', '.join(available_kernels())}; policy kernels: "
            f"{', '.join(available_policy_kernels())}"
        )
    return factory(**options)


def resolve_kernel(
    kernel: Union[str, FetchCurveProvider, None]
) -> FetchCurveProvider:
    """Coerce a kernel spec (name, instance, or ``None``) to an instance.

    ``None`` resolves to :data:`DEFAULT_KERNEL`; instances pass through
    unchanged so callers can hand a pre-seeded kernel down a call chain.
    """
    if kernel is None:
        return get_kernel(DEFAULT_KERNEL)
    if isinstance(kernel, FetchCurveProvider):
        return kernel
    return get_kernel(kernel)
