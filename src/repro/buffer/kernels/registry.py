"""Name-based registry of stack-distance kernels.

The registry is how the rest of the library (``LRUFitConfig``, the CLI, the
benchmarks) names a kernel without importing its module.  Built-in kernels
self-register when :mod:`repro.buffer.kernels` is imported; the optional
numpy kernel registers only when numpy is importable, keeping the package
itself zero-dependency.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple, Union

from repro.buffer.kernels.base import StackDistanceKernel
from repro.errors import KernelError

#: The kernel used when none is named: the original Fenwick pass.
DEFAULT_KERNEL = "baseline"

_FACTORIES: Dict[str, Callable[..., StackDistanceKernel]] = {}


def register_kernel(
    name: str,
    factory: Callable[..., StackDistanceKernel],
    replace: bool = False,
) -> None:
    """Register ``factory`` (usually a kernel class) under ``name``.

    Registering an already-taken name raises
    :class:`~repro.errors.KernelError` unless ``replace=True`` — tests and
    downstream experiments may override a built-in deliberately, but should
    never do so by accident.
    """
    if not name or not isinstance(name, str):
        raise KernelError(f"kernel name must be a non-empty string, got {name!r}")
    if name in _FACTORIES and not replace:
        raise KernelError(
            f"kernel {name!r} is already registered; pass replace=True "
            f"to override"
        )
    _FACTORIES[name] = factory


def available_kernels() -> Tuple[str, ...]:
    """Sorted names of every registered kernel."""
    return tuple(sorted(_FACTORIES))


def get_kernel(name: str = DEFAULT_KERNEL, **options) -> StackDistanceKernel:
    """Instantiate the kernel registered under ``name``.

    ``options`` are forwarded to the kernel factory (e.g.
    ``get_kernel("sampled", rate=0.05)``).
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KernelError(
            f"unknown stack-distance kernel {name!r}; available: "
            f"{', '.join(available_kernels())}"
        ) from None
    return factory(**options)


def resolve_kernel(
    kernel: Union[str, StackDistanceKernel, None]
) -> StackDistanceKernel:
    """Coerce a kernel spec (name, instance, or ``None``) to an instance.

    ``None`` resolves to :data:`DEFAULT_KERNEL`; instances pass through
    unchanged so callers can hand a pre-seeded kernel down a call chain.
    """
    if kernel is None:
        return get_kernel(DEFAULT_KERNEL)
    if isinstance(kernel, StackDistanceKernel):
        return kernel
    return get_kernel(kernel)
