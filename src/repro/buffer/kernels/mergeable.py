"""Mergeable shard summaries for the exact stack-distance kernels.

A *sharded* pass (PARDA-style) splits one reference trace into N
contiguous shards and analyzes each independently.  Reuses whose previous
occurrence lies in the same shard are already exact; the only information
a shard cannot resolve locally is the depth of each *first-local-access*
— the page may be cold globally, or a seam reuse of an earlier shard.

Each exact-kernel stream therefore reduces its shard to an
:class:`ExactShardSummary` holding exactly what the seam needs:

* ``histogram`` — intra-shard reuse depths, already exact;
* ``first_seen`` — pages in first-local-access order (the seam replay
  sequence; its length is the shard's local cold-miss count);
* ``recency`` — pages in last-local-access order, oldest first (how the
  shard reorders the global LRU stack for its successors).

:func:`merge_exact_summaries` folds summaries left-to-right over a
global recency structure — the same big-integer slot/mask technique as
the ``compact`` kernel — replaying each shard's ``first_seen`` sequence
to resolve seam depths, then re-stacking the shard's ``recency`` pages
on top.  The result is **bit-identical** to a single uninterrupted pass:
at every first-local-access, the pages above the previous slot are (a)
this shard's already-replayed first accesses, each counted once, and (b)
pre-shard pages whose global last access falls inside the reuse window —
together exactly the distinct pages the single pass would count.

The sampled (SHARDS) kernel merges differently — by summing per-page
hash/count states under a shared seed; see
:func:`repro.buffer.kernels.sampled.merge_sampled_summaries`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from repro.buffer.stack import FetchCurve
from repro.errors import KernelError

#: Initial/minimum slot capacity of the merge recency structure.
_MIN_CAPACITY = 4096


@dataclass(frozen=True)
class ExactShardSummary:
    """One shard's contribution to an exact sharded pass.

    Memory is O(distinct pages in the shard): depths are histogrammed,
    never kept as a raw per-reference list.
    """

    #: Intra-shard reuse depth -> count.  Exact; merged by summation.
    histogram: Mapping[int, int]
    #: Pages in first-local-access order (local cold misses, in order).
    first_seen: Tuple[int, ...]
    #: Pages in last-local-access order, oldest first.
    recency: Tuple[int, ...]
    #: References the shard consumed.
    references: int

    def __post_init__(self) -> None:
        if set(self.first_seen) != set(self.recency):
            raise KernelError(
                "shard summary first_seen and recency must cover the "
                "same page set"
            )
        reuses = sum(self.histogram.values())
        if len(self.first_seen) + reuses != self.references:
            raise KernelError(
                f"shard summary accounting broken: {len(self.first_seen)}"
                f" cold + {reuses} reuses != {self.references} references"
            )


@dataclass(frozen=True)
class SeamStats:
    """What the merge resolved at the shard boundaries."""

    #: First-local-accesses that turned out to be reuses of earlier
    #: shards (each contributes one corrected depth to the histogram).
    seam_reuses: int
    #: First-local-accesses that were genuinely cold globally.
    cold_misses: int
    #: Shards merged (empty shards included).
    shards: int


def merge_exact_summaries(
    summaries: Sequence[ExactShardSummary],
) -> Tuple[FetchCurve, SeamStats]:
    """Fold shard summaries (in trace order) into the single-pass curve.

    Bit-identical to analyzing the concatenated trace with any exact
    kernel.  Raises :class:`~repro.errors.KernelError` when given no
    summaries and :class:`~repro.errors.TraceError` when the summaries
    cover zero references (matching an empty-trace single pass).
    """
    if not summaries:
        raise KernelError("cannot merge zero shard summaries")

    histogram: Dict[int, int] = {}
    # Global recency structure: live page -> slot, one occupancy bit per
    # slot in a big integer, monotone slot assignment with periodic
    # re-packing (the compact kernel's technique, see compact.py).
    slot_of: Dict[int, int] = {}
    mask = 0
    next_slot = 0
    capacity = _MIN_CAPACITY
    powers = [1 << i for i in range(capacity + 1)]
    seam_reuses = 0
    cold = 0

    def compact() -> None:
        nonlocal mask, next_slot, capacity
        live = sorted(slot_of.items(), key=lambda kv: kv[1])
        slot_of.clear()
        slot_of.update(
            (page, i) for i, (page, _slot) in enumerate(live)
        )
        d = len(slot_of)
        mask = powers[d] - 1
        next_slot = d
        new_capacity = max(_MIN_CAPACITY, 3 * d)
        if new_capacity > capacity:
            powers.extend(
                1 << i for i in range(capacity + 1, new_capacity + 1)
            )
        capacity = new_capacity

    pop = slot_of.pop
    for summary in summaries:
        # Stage 1: replay the seam.  Each first-local-access either hits
        # a page still on the global stack (seam reuse: its depth is the
        # number of more recent slots, exactly as in a single pass) or is
        # a true cold miss.  Pushing the page afterwards keeps the stack
        # consistent for the pages replayed after it.
        for page in summary.first_seen:
            prev = pop(page, None)
            if prev is not None:
                depth = (mask >> (prev + 1)).bit_count() + 1
                histogram[depth] = histogram.get(depth, 0) + 1
                mask ^= powers[prev]
                seam_reuses += 1
            else:
                cold += 1
            if next_slot >= capacity:
                compact()
            slot_of[page] = next_slot
            mask |= powers[next_slot]
            next_slot += 1

        # Stage 2: intra-shard depths are already exact.
        for depth, count in summary.histogram.items():
            histogram[depth] = histogram.get(depth, 0) + count

        # Stage 3: restack the shard's pages in last-local-access order.
        # Untouched pre-shard pages keep their relative order below; the
        # shard's pages end up on top, most recent last — the global
        # stack is now exactly what a single pass would hold here.
        for page in summary.recency:
            prev = pop(page, None)
            if prev is not None:
                mask ^= powers[prev]
            if next_slot >= capacity:
                compact()
            slot_of[page] = next_slot
            mask |= powers[next_slot]
            next_slot += 1

    curve = FetchCurve.from_distances(histogram, cold)
    return curve, SeamStats(
        seam_reuses=seam_reuses,
        cold_misses=cold,
        shards=len(summaries),
    )
