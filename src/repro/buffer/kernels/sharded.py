"""Sharded stack-distance passes: partition, analyze in parallel, merge.

This is the orchestrator over the mergeable-summary API: it splits one
reference trace into N *contiguous* shards, runs an independent kernel
pass per shard (serially, or on a fork-based process pool shaped like
:func:`repro.eval.ground_truth.ground_truth_tables`), and merges the
shard summaries into the one :class:`~repro.buffer.stack.FetchCurve` a
single uninterrupted pass would have produced — bit-identical for the
exact kernels (seam-corrected merge, :mod:`.mergeable`) and for the
sampled kernel (state summation under the shared hash seed,
:func:`repro.buffer.kernels.sampled.merge_sampled_summaries`).

Inputs are *shard sources*: anything with ``total_refs`` and a
``chunks(start, stop)`` range generator (sized sequences are wrapped
automatically).  Range-addressable sources let each pool worker generate
its own shard locally — zero reference shipping, which is what makes the
``--paper-scale`` traces (10⁷+ references, never materialized) shardable.
One-shot chunk iterators without random access go through
:func:`sharded_chunked_curve`, which cuts shards while draining the
iterator.

Checkpointing composes naturally: a shard boundary is a consistent
cut, so the checkpoint payload is just the completed shard summaries
(wrapped in :class:`_ShardProgress`), protected by a chained per-shard
trace digest that resume re-verifies against the source before trusting
any cached summary.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import (
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.buffer.kernels.base import (
    KernelStream,
    StackDistanceKernel,
    _record_kernel_pass,
)
from repro.buffer.kernels.mergeable import (
    ExactShardSummary,
    SeamStats,
    merge_exact_summaries,
)
from repro.buffer.kernels.registry import resolve_kernel
from repro.buffer.kernels.sampled import (
    SampledKernel,
    SampledShardSummary,
    merge_sampled_summaries,
)
from repro.errors import CheckpointError, KernelError
from repro.obs import instruments
from repro.obs.metrics import global_registry
from repro.resilience.checkpoint import (
    Checkpointer,
    hash_pages,
    resolve_checkpointer,
)

#: Chunk size used when iterating ranges of a wrapped sequence.
SHARD_CHUNK_REFS = 65_536


class SequenceShardSource:
    """Range-addressable shard source over an in-memory sequence."""

    def __init__(self, pages: Sequence[int]) -> None:
        self._pages = pages
        self.total_refs = len(pages)

    def chunks(
        self, start: int, stop: int
    ) -> Iterator[Sequence[int]]:
        """Yield ``pages[start:stop]`` in bounded-size chunks."""
        pages = self._pages
        for lo in range(start, stop, SHARD_CHUNK_REFS):
            yield pages[lo:min(lo + SHARD_CHUNK_REFS, stop)]


def as_shard_source(source):
    """Coerce ``source`` to a shard source.

    Accepts anything already exposing ``total_refs``/``chunks`` (e.g.
    :class:`repro.trace.paper_scale.PaperScaleTrace`) or any sized
    sequence.  One-shot iterators cannot be sharded by range — use
    :func:`sharded_chunked_curve` for those.
    """
    if hasattr(source, "total_refs") and hasattr(source, "chunks"):
        return source
    if hasattr(source, "__len__") and hasattr(source, "__getitem__"):
        return SequenceShardSource(source)
    raise KernelError(
        f"cannot shard a {type(source).__name__}: need a sized sequence "
        f"or an object with total_refs/chunks(start, stop); for one-shot "
        f"chunk iterators use sharded_chunked_curve with total_refs"
    )


def shard_bounds(
    total_refs: int, shards: int
) -> List[Tuple[int, int]]:
    """Contiguous near-equal ``[lo, hi)`` ranges covering the trace.

    The shard count is capped at the reference count (asking for more
    shards than references degrades gracefully instead of producing
    empty shards); a zero-length trace yields one empty shard so the
    merge raises the same empty-trace error a single pass would.
    """
    if shards < 1:
        raise KernelError(f"shard count must be >= 1, got {shards}")
    shards = max(1, min(shards, total_refs))
    base, rem = divmod(total_refs, shards)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for i in range(shards):
        hi = lo + base + (1 if i < rem else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


@dataclass(frozen=True)
class ShardRunResult:
    """One sharded pass: the merged curve plus its cost profile."""

    curve: object
    shards: int
    workers: int
    #: Wall-clock nanoseconds each shard spent feeding its stream
    #: (includes local reference generation for generator sources).
    per_shard_feed_ns: Tuple[int, ...]
    #: Wall-clock nanoseconds of the summary merge.
    merge_ns: int
    #: Seam-correction stats (exact kernels; None for sampled merges).
    seam: Optional[SeamStats]


class _ShardProgress(KernelStream):
    """Checkpoint vehicle: completed shard summaries, mid-orchestration.

    Rides the existing :class:`~repro.resilience.checkpoint.Checkpointer`
    stream-snapshot machinery; it is not a feedable stream.
    """

    def __init__(
        self,
        bounds: Sequence[Tuple[int, int]],
        summaries: Sequence,
        completed: int,
    ) -> None:
        self.bounds = [tuple(b) for b in bounds]
        self.summaries = list(summaries)
        self.completed = completed

    def _consume(self, pages: Iterable[int]) -> None:
        raise KernelError("shard-progress snapshots are not feedable")

    def _result(self):
        raise KernelError("shard-progress snapshots have no curve")


def _shard_digest(source, lo: int, hi: int) -> str:
    """Digest of one shard's references (resume verification)."""
    hasher = hashlib.sha256()
    for chunk in source.chunks(lo, hi):
        hash_pages(hasher, chunk)
    return hasher.hexdigest()


def _chain(previous: str, shard_digest: str) -> str:
    """Fold one shard digest into the running chained digest."""
    return hashlib.sha256(
        (previous + shard_digest).encode("ascii")
    ).hexdigest()


def _summarize_shard(
    kernel: StackDistanceKernel,
    source,
    lo: int,
    hi: int,
    want_digest: bool,
) -> Tuple[object, int, Optional[str]]:
    """Run one shard's kernel pass; returns (summary, feed_ns, digest)."""
    hasher = hashlib.sha256() if want_digest else None
    stream = kernel.stream()
    started = time.perf_counter_ns()
    for chunk in source.chunks(lo, hi):
        if hasher is not None:
            hash_pages(hasher, chunk)
        stream._consume(chunk)
    summary = stream.shard_summary()
    feed_ns = time.perf_counter_ns() - started
    return summary, feed_ns, hasher.hexdigest() if hasher else None


def _summarize_pages(
    kernel: StackDistanceKernel, pages: Sequence[int]
) -> Tuple[object, int]:
    """Shard pass over already-materialized pages (chunked path)."""
    stream = kernel.stream()
    started = time.perf_counter_ns()
    stream._consume(pages)
    summary = stream.shard_summary()
    return summary, time.perf_counter_ns() - started


# Fork-inherited worker state, the ground_truth.py pool shape: set just
# before the pool starts, cleared after; child processes see a copy-on-
# write snapshot, nothing is pickled per task except the results.
_WORKER_STATE = None


def _worker_shard(ordinal: int):
    """Pool entry point: analyze shard ``ordinal`` from forked state."""
    source, bounds, kernel, want_digest = _WORKER_STATE
    lo, hi = bounds[ordinal]
    return _summarize_shard(kernel, source, lo, hi, want_digest)


def _worker_pages(pages: Sequence[int]):
    """Pool entry point for the chunked path: pages ship with the task."""
    (kernel,) = _WORKER_STATE
    return _summarize_pages(kernel, pages)


def _use_fork(workers: int, tasks: int) -> bool:
    """Whether a fork pool is worth starting for this run."""
    return (
        workers >= 2
        and tasks >= 2
        and "fork" in multiprocessing.get_all_start_methods()
    )


def _fork_pool(workers: int, tasks: int):
    """A fork-context pool sized for ``tasks``.

    Must be called *after* ``_WORKER_STATE`` is set: children snapshot
    the parent's memory at construction (fork) time.
    """
    return multiprocessing.get_context("fork").Pool(
        min(workers, tasks)
    )


def _resolve_workers(workers: int) -> int:
    """``workers <= 0`` means one worker per available core."""
    return workers if workers > 0 else (os.cpu_count() or 1)


def _resume_progress(
    checkpointer: Checkpointer,
    kernel_name: str,
    bounds: Sequence[Tuple[int, int]],
) -> Tuple[List, int, str]:
    """Load and validate shard progress; returns (summaries, next, chain).

    The chained digest is *not* verified here — callers re-hash the
    completed ranges against their source (range sources verify up
    front; the chunked path verifies while draining the iterator).
    """
    state = checkpointer.load()
    progress = state.stream
    if not isinstance(progress, _ShardProgress):
        raise CheckpointError(
            "checkpoint does not hold sharded-pass progress; it was "
            "written by a non-sharded run (resume it with shards=1)"
        )
    if state.kernel != kernel_name:
        raise CheckpointError(
            f"checkpoint was written by kernel {state.kernel!r}, "
            f"cannot resume with {kernel_name!r}"
        )
    if progress.bounds != [tuple(b) for b in bounds]:
        raise CheckpointError(
            f"checkpoint shard plan {len(progress.bounds)} shards over "
            f"{progress.bounds[-1][1] if progress.bounds else 0} refs "
            f"does not match the requested plan; rerun with the same "
            f"trace and shard count or clear the checkpoint"
        )
    if progress.completed != len(progress.summaries):
        raise CheckpointError(
            "checkpoint shard progress is internally inconsistent"
        )
    return progress.summaries, progress.completed, state.trace_digest


def _merge_summaries(
    summaries: Sequence, kernel: StackDistanceKernel
) -> Tuple[object, Optional[SeamStats]]:
    """Dispatch to the kernel-appropriate merge."""
    if isinstance(summaries[0], SampledShardSummary):
        if not isinstance(kernel, SampledKernel):
            raise KernelError(
                f"sampled shard summaries cannot be merged under "
                f"kernel {kernel.name!r}"
            )
        return merge_sampled_summaries(summaries, kernel), None
    if not all(
        isinstance(s, ExactShardSummary) for s in summaries
    ):
        raise KernelError("cannot merge mixed shard summary types")
    return merge_exact_summaries(summaries)


def _record_shard_metrics(
    kernel_name: str,
    per_shard_feed_ns: Sequence[int],
    merge_ns: int,
    seam: Optional[SeamStats],
    accesses: int,
) -> None:
    """Publish the pass profile to the global registry (if enabled)."""
    if not global_registry().enabled:
        return
    for ordinal, feed_ns in enumerate(per_shard_feed_ns):
        instruments.shard_feed_seconds().labels(
            kernel=kernel_name, shard=str(ordinal)
        ).inc(feed_ns)
    instruments.shard_merge_seconds().labels(
        kernel=kernel_name
    ).inc(merge_ns)
    if seam is not None:
        instruments.shard_seam_reuses().labels(
            kernel=kernel_name
        ).inc(seam.seam_reuses)
    # Pool workers record into forked registries the parent never sees,
    # so the parent publishes the kernel-level pass profile itself.
    _record_kernel_pass(
        kernel_name, accesses, sum(per_shard_feed_ns) + merge_ns
    )


def run_sharded_pass(
    source,
    shards: int,
    workers: int = 1,
    kernel: Union[StackDistanceKernel, str, None] = None,
    checkpoint: Union[Checkpointer, str, None] = None,
    resume: bool = False,
) -> ShardRunResult:
    """Sharded analysis of a range-addressable source, with profile.

    ``workers=1`` runs shards serially in-process (still exercising the
    exact summary/merge path); ``workers>1`` uses a fork pool when the
    platform provides one, falling back to serial otherwise.
    ``workers<=0`` means one worker per core.  With ``checkpoint`` set,
    progress is snapshotted at shard boundaries per the checkpointer's
    policy; ``resume=True`` re-verifies completed shards' chained trace
    digest against ``source`` and skips their kernel work.
    """
    src = as_shard_source(source)
    kern = resolve_kernel(kernel)
    bounds = shard_bounds(src.total_refs, shards)
    checkpointer = resolve_checkpointer(checkpoint)
    want_digest = checkpointer is not None
    workers = _resolve_workers(workers)

    summaries: List = []
    feed_ns: List[int] = []
    start = 0
    chain = ""
    if resume and checkpointer is not None and checkpointer.exists():
        summaries, start, chain = _resume_progress(
            checkpointer, kern.name, bounds
        )
        verify = ""
        for i in range(start):
            lo, hi = bounds[i]
            verify = _chain(verify, _shard_digest(src, lo, hi))
        if verify != chain:
            raise CheckpointError(
                "resumed trace does not match the checkpointed shards "
                "(chained digest mismatch); refusing to merge foreign "
                "summaries"
            )
        feed_ns = [0] * start  # cached shards cost no feed time now

    def complete(ordinal: int, summary, ns: int, digest) -> None:
        nonlocal chain
        summaries.append(summary)
        feed_ns.append(ns)
        if checkpointer is not None:
            chain = _chain(chain, digest)
            position = bounds[ordinal][1]
            if checkpointer.due(position):
                checkpointer.save(
                    _ShardProgress(bounds, summaries, ordinal + 1),
                    position,
                    chain,
                    kern.name,
                )

    remaining = range(start, len(bounds))
    if not _use_fork(workers, len(remaining)):
        for i in remaining:
            lo, hi = bounds[i]
            summary, ns, digest = _summarize_shard(
                kern, src, lo, hi, want_digest
            )
            complete(i, summary, ns, digest)
    else:
        global _WORKER_STATE
        _WORKER_STATE = (src, bounds, kern, want_digest)
        try:
            # State must be in place before the pool forks.
            with _fork_pool(workers, len(remaining)) as pool:
                # imap preserves shard order, so checkpoints only ever
                # cover a contiguous completed prefix.
                for i, (summary, ns, digest) in zip(
                    remaining, pool.imap(_worker_shard, remaining)
                ):
                    complete(i, summary, ns, digest)
        finally:
            _WORKER_STATE = None

    merge_started = time.perf_counter_ns()
    curve, seam = _merge_summaries(summaries, kern)
    merge_ns = time.perf_counter_ns() - merge_started
    if checkpointer is not None:
        checkpointer.clear()
    _record_shard_metrics(
        kern.name, feed_ns, merge_ns, seam,
        getattr(curve, "accesses", 0),
    )
    return ShardRunResult(
        curve=curve,
        shards=len(bounds),
        workers=workers,
        per_shard_feed_ns=tuple(feed_ns),
        merge_ns=merge_ns,
        seam=seam,
    )


def sharded_fetch_curve(
    source,
    shards: int,
    workers: int = 1,
    kernel: Union[StackDistanceKernel, str, None] = None,
    checkpoint: Union[Checkpointer, str, None] = None,
    resume: bool = False,
):
    """The merged fetch curve of a sharded pass (see
    :func:`run_sharded_pass` for the knobs and the profile variant)."""
    return run_sharded_pass(
        source, shards, workers, kernel, checkpoint, resume
    ).curve


def _iter_shard_pages(
    chunks: Iterable[Sequence[int]],
    bounds: Sequence[Tuple[int, int]],
    start: int,
) -> Iterator[Tuple[int, List[int]]]:
    """Cut a chunk iterator at shard boundaries, yielding whole shards.

    Chunks spanning a boundary are split; shards before ``start`` are
    still yielded (resume needs to verify their digests) — callers skip
    their kernel work.  Raises when the iterator is shorter or longer
    than the bounds promise.
    """
    total = bounds[-1][1]
    if total == 0:
        for chunk in chunks:
            pages = (
                chunk if hasattr(chunk, "__len__") else list(chunk)
            )
            if len(pages):
                raise KernelError(
                    "chunk stream is longer than the declared "
                    "total_refs=0"
                )
        yield 0, []
        return
    ordinal = 0
    buffer: List[int] = []
    position = 0
    for chunk in chunks:
        pages = (
            chunk
            if isinstance(chunk, (list, tuple))
            else list(chunk)
        )
        position += len(pages)
        if position > total:
            raise KernelError(
                f"chunk stream is longer than the declared total_refs="
                f"{total}; sharding needs an exact length up front"
            )
        buffer.extend(pages)
        while ordinal < len(bounds) and (
            len(buffer) >= bounds[ordinal][1] - bounds[ordinal][0]
        ):
            size = bounds[ordinal][1] - bounds[ordinal][0]
            yield ordinal, buffer[:size]
            buffer = buffer[size:]
            ordinal += 1
    if position != total or buffer:
        raise KernelError(
            f"chunk stream ended at {position} references but "
            f"total_refs={total} was declared"
        )


def sharded_chunked_curve(
    chunks: Iterable[Sequence[int]],
    total_refs: int,
    shards: int,
    workers: int = 1,
    kernel: Union[StackDistanceKernel, str, None] = None,
    checkpoint: Union[Checkpointer, str, None] = None,
    resume: bool = False,
):
    """Sharded analysis of a one-shot chunk iterator of known length.

    The iterator is drained once, shard by shard; at most one shard's
    references (plus the pool's in-flight shards when ``workers>1``)
    are in memory at a time.  ``workers>1`` ships each cut shard to a
    fork-pool worker and harvests results in submission order, so
    checkpoints still cover a contiguous prefix.
    """
    if total_refs < 0:
        raise KernelError(
            f"total_refs must be >= 0, got {total_refs}"
        )
    kern = resolve_kernel(kernel)
    bounds = shard_bounds(total_refs, shards)
    checkpointer = resolve_checkpointer(checkpoint)
    workers = _resolve_workers(workers)

    summaries: List = []
    feed_ns: List[int] = []
    start = 0
    chain = ""
    resumed_chain: Optional[str] = None
    verify = ""
    if resume and checkpointer is not None and checkpointer.exists():
        summaries, start, chain = _resume_progress(
            checkpointer, kern.name, bounds
        )
        resumed_chain = chain
        feed_ns = [0] * start

    def complete(ordinal: int, summary, ns: int, digest) -> None:
        nonlocal chain
        summaries.append(summary)
        feed_ns.append(ns)
        if checkpointer is not None:
            chain = _chain(chain, digest)
            position = bounds[ordinal][1]
            if checkpointer.due(position):
                checkpointer.save(
                    _ShardProgress(bounds, summaries, ordinal + 1),
                    position,
                    chain,
                    kern.name,
                )

    def page_digest(pages: Sequence[int]) -> Optional[str]:
        if checkpointer is None:
            return None
        hasher = hashlib.sha256()
        hash_pages(hasher, pages)
        return hasher.hexdigest()

    def check_prefix() -> None:
        """Completed shards must come from this very trace: the digest
        chain re-hashed while draining the prefix has to match the
        checkpointed chain before any cached summary is trusted."""
        if resumed_chain is not None and verify != resumed_chain:
            raise CheckpointError(
                "resumed chunk stream does not match the checkpointed "
                "shards (chained digest mismatch); refusing to merge "
                "foreign summaries"
            )

    pending: List[Tuple[int, Optional[str], object]] = []

    def harvest_oldest() -> None:
        ordinal, digest, handle = pending.pop(0)
        summary, ns = handle.get()
        complete(ordinal, summary, ns, digest)

    global _WORKER_STATE
    pool = None
    if _use_fork(workers, len(bounds) - start):
        # State must be in place before the pool forks.
        _WORKER_STATE = (kern,)
        pool = _fork_pool(workers, len(bounds) - start)
    try:
        for ordinal, pages in _iter_shard_pages(chunks, bounds, start):
            if ordinal < start:
                # Resumed prefix: re-hash to verify the trace is the
                # one the cached summaries came from; skip kernel work.
                hasher = hashlib.sha256()
                hash_pages(hasher, pages)
                verify = _chain(verify, hasher.hexdigest())
                continue
            check_prefix()
            digest = page_digest(pages)
            if pool is None:
                summary, ns = _summarize_pages(kern, pages)
                complete(ordinal, summary, ns, digest)
            else:
                pending.append((
                    ordinal,
                    digest,
                    pool.apply_async(_worker_pages, (pages,)),
                ))
                if len(pending) >= workers:
                    harvest_oldest()
        while pending:
            harvest_oldest()
    finally:
        if pool is not None:
            _WORKER_STATE = None
            pool.terminate()
            pool.join()
    check_prefix()

    merge_started = time.perf_counter_ns()
    curve, seam = _merge_summaries(summaries, kern)
    merge_ns = time.perf_counter_ns() - merge_started
    if checkpointer is not None:
        checkpointer.clear()
    _record_shard_metrics(
        kern.name, feed_ns, merge_ns, seam,
        getattr(curve, "accesses", 0),
    )
    return curve
