"""Simulated-policy fetch-curve providers for non-stack policies.

The stack-distance kernels all lean on LRU's stack (inclusion)
property: one pass over the trace yields F(B) for every B at once.
CLOCK, 2Q, and learned mixtures have no such property — the resident
set at size B is not contained in the resident set at size B+1 — so the
only exact way to get their fetch curves is the obvious one: replay the
policy's :class:`~repro.buffer.pool.BufferPool` simulator once per
requested buffer size.

:class:`SimulatedPolicyKernel` wraps that replay behind the standard
:class:`~repro.buffer.kernels.base.FetchCurveProvider` interface, so
every consumer of the streaming ``KernelStream`` API — LRU-Fit's
chunked feeds, checkpoint snapshot/resume, pass metrics — works for
non-LRU policies unchanged.  The stream just accumulates the trace
(there is no per-size state to carry mid-pass); the returned
:class:`SimulatedFetchCurve` replays lazily and memoizes per size, so a
six-segment fit touching ~80 grid points costs ~80 replays and repeated
queries are free.

What these kernels deliberately do *not* support is the shard-and-merge
pass: a policy without the stack property has no mergeable per-shard
summary, so ``mergeable`` stays False and sharded orchestration refuses
loudly (see :meth:`KernelStream.shard_summary`).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.buffer.kernels.base import FetchCurveProvider, KernelStream
from repro.buffer.policies import available_policies, get_policy_pool
from repro.errors import KernelError, TraceError


class SimulatedFetchCurve:
    """Exact ``B -> F(B)`` curve for one policy, by per-size replay.

    Interface-compatible with :class:`~repro.buffer.stack.FetchCurve`
    (``accesses``, ``distinct_pages``, ``fetches``, ``hits``, ``curve``)
    so estimator fitting and the verify invariants consume it
    unchanged.  The full trace is retained — that is the price of
    answering arbitrary later sizes exactly for a policy with no stack
    property.
    """

    __slots__ = ("policy", "accesses", "distinct_pages", "_pages", "_cache")

    def __init__(self, policy: str, pages: Sequence[int]) -> None:
        self.policy = policy
        self._pages: Tuple[int, ...] = tuple(pages)
        self.accesses = len(self._pages)
        self.distinct_pages = len(set(self._pages))
        self._cache: dict = {}

    @property
    def reuses(self) -> int:
        """References that were not first touches of their page."""
        return self.accesses - self.distinct_pages

    def fetches(self, buffer_pages: int) -> int:
        """Page fetches of a ``policy`` pool with ``buffer_pages`` slots."""
        if buffer_pages < 1:
            raise TraceError(
                f"buffer size must be >= 1, got {buffer_pages}"
            )
        cached = self._cache.get(buffer_pages)
        if cached is None:
            if buffer_pages >= self.distinct_pages:
                # Demand-paging pools only evict when full, so a pool
                # holding the whole universe pays compulsory misses only.
                cached = self.distinct_pages
            else:
                cached = get_policy_pool(
                    self.policy, buffer_pages
                ).run(self._pages)
            self._cache[buffer_pages] = cached
        return cached

    def hits(self, buffer_pages: int) -> int:
        """Buffer hits at ``buffer_pages`` (accesses minus fetches)."""
        return self.accesses - self.fetches(buffer_pages)

    def curve(self, buffer_sizes: Iterable[int]) -> List[Tuple[int, int]]:
        """``[(B, F(B)), ...]`` for each requested size."""
        return [(b, self.fetches(b)) for b in buffer_sizes]

    def __repr__(self) -> str:
        return (
            f"SimulatedFetchCurve(policy={self.policy!r}, "
            f"accesses={self.accesses}, "
            f"distinct_pages={self.distinct_pages})"
        )


class _SimulatedPolicyStream(KernelStream):
    """Trace-accumulating stream: all state is the buffered reference list,
    so the default pickle snapshot/resume round-trips it exactly."""

    def __init__(self, policy: str) -> None:
        self._policy = policy
        self._pages: List[int] = []

    def _consume(self, pages: Iterable[int]) -> None:
        self._pages.extend(pages)

    def _result(self) -> SimulatedFetchCurve:
        if not self._pages:
            raise TraceError("cannot analyze an empty reference trace")
        return SimulatedFetchCurve(self._policy, self._pages)


class SimulatedPolicyKernel(FetchCurveProvider):
    """Fetch-curve provider that replays a pool simulator per size.

    ``exact`` is True in the provider sense: the curve matches the
    policy's own ``BufferPool`` simulator fetch-for-fetch (that is the
    differential oracle's check) — it is *not* a claim of agreement
    with the LRU baseline, which is exactly the drift the policy
    ablation measures.
    """

    exact = True
    seedable = False
    mergeable = False

    def __init__(self, policy: str) -> None:
        known = available_policies()
        if policy not in known:
            raise KernelError(
                f"unknown replacement policy {policy!r}; available: "
                f"{', '.join(known)}"
            )
        self.policy = policy
        self.name = policy

    def _new_stream(self) -> KernelStream:
        return _SimulatedPolicyStream(self.policy)
