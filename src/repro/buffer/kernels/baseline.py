"""The reference kernel: the original Fenwick-over-positions pass.

This is the exact algorithm of :func:`repro.buffer.stack.stack_distances`
(O(M log M) for M references) exposed behind the kernel interface, plus a
streaming variant whose Fenwick tree grows geometrically so references can
be fed in chunks without knowing the trace length up front.  Every other
exact kernel is validated against this one.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Dict, Iterable, List

from repro.buffer.kernels.base import (
    KernelStream,
    StackDistanceKernel,
    _record_kernel_pass,
)
from repro.buffer.kernels.mergeable import ExactShardSummary
from repro.buffer.stack import FetchCurve, stack_distances
from repro.obs.metrics import global_registry


class _BaselineStream(KernelStream):
    """Chunk-fed Fenwick pass over trace positions."""

    def __init__(self) -> None:
        self._capacity = 1024
        self._tree: List[int] = [0] * (self._capacity + 1)
        self._last_seen: Dict[int, int] = {}
        self._distances: List[int] = []
        self._cold = 0
        self._position = 0

    def _grow(self, needed: int) -> None:
        """Double the position capacity to cover ``needed`` references.

        The tree is rebuilt from the "most recent occurrence" flags in
        O(capacity); geometric growth keeps the amortized per-reference
        cost constant, and distances are position-independent so growth
        never changes the output.
        """
        capacity = self._capacity
        while capacity < needed:
            capacity *= 2
        tree = [0] * (capacity + 1)
        for pos in self._last_seen.values():
            tree[pos + 1] += 1
        for i in range(1, capacity + 1):
            parent = i + (i & -i)
            if parent <= capacity:
                tree[parent] += tree[i]
        self._capacity = capacity
        self._tree = tree

    def _consume(self, pages: Iterable[int]) -> None:
        chunk = pages if isinstance(pages, (list, tuple)) else list(pages)
        if self._position + len(chunk) > self._capacity:
            self._grow(self._position + len(chunk))
        # Same inner loop as stack_distances(), offset by the running
        # position; locals are bound once per chunk for speed.
        tree = self._tree
        n = self._capacity
        last_seen = self._last_seen
        append = self._distances.append
        get = last_seen.get
        cold = self._cold
        t = self._position
        for page in chunk:
            prev = get(page)
            if prev is None:
                cold += 1
            else:
                i = t
                hi = 0
                while i > 0:
                    hi += tree[i]
                    i -= i & -i
                i = prev + 1
                lo = 0
                while i > 0:
                    lo += tree[i]
                    i -= i & -i
                append(hi - lo + 1)
                i = prev + 1
                while i <= n:
                    tree[i] -= 1
                    i += i & -i
            i = t + 1
            while i <= n:
                tree[i] += 1
                i += i & -i
            last_seen[page] = t
            t += 1
        self._cold = cold
        self._position = t

    def _result(self) -> FetchCurve:
        return FetchCurve.from_distances(self._distances, self._cold)

    def shard_summary(self) -> ExactShardSummary:
        """Reduce this stream's shard to a mergeable summary.

        ``_last_seen`` already carries both orders the seam needs: dict
        keys in insertion order are the first-local-access sequence, and
        sorting by value (trace position) yields last-access recency.
        """
        self._close_for_summary()
        last_seen = self._last_seen
        return ExactShardSummary(
            histogram=dict(Counter(self._distances)),
            first_seen=tuple(last_seen),
            recency=tuple(
                sorted(last_seen, key=last_seen.__getitem__)
            ),
            references=self._position,
        )


class BaselineKernel(StackDistanceKernel):
    """Exact Fenwick-tree kernel — the library's original hot loop."""

    name = "baseline"
    exact = True

    def _new_stream(self) -> KernelStream:
        """A fresh growable-Fenwick stream."""
        return _BaselineStream()

    def analyze(self, trace: Iterable[int]) -> FetchCurve:
        """One-shot pass; sized sequences skip the growable indirection."""
        if hasattr(trace, "__len__"):
            if not global_registry().enabled:
                distances, cold = stack_distances(trace)
                return FetchCurve.from_distances(distances, cold)
            started = time.perf_counter_ns()
            distances, cold = stack_distances(trace)
            curve = FetchCurve.from_distances(distances, cold)
            _record_kernel_pass(
                self.name,
                curve.accesses,
                time.perf_counter_ns() - started,
            )
            return curve
        return super().analyze(trace)
