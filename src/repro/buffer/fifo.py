"""First-in-first-out buffer-pool simulator.

Not used by EPFIS itself (the paper models LRU); provided for the
replacement-policy ablation bench, which asks how much of the FPF curve's
shape is specific to LRU.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Set

from repro.buffer.pool import BufferPool


class FIFOBufferPool(BufferPool):
    """Fetch-counting FIFO pool: evicts the oldest *fetched* page.

    Unlike LRU, a hit does not refresh a page's position in the eviction
    queue — FIFO lacks the stack (inclusion) property, which is exactly why
    the paper's single-pass multi-size simulation works for LRU only.
    """

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._queue: Deque[int] = deque()
        self._resident: Set[int] = set()

    def access(self, page: int) -> bool:
        if page in self._resident:
            self._hits += 1
            return True
        if len(self._resident) >= self._capacity:
            evicted = self._queue.popleft()
            self._resident.discard(evicted)
        self._queue.append(page)
        self._resident.add(page)
        self._fetches += 1
        return False

    def resident_pages(self) -> frozenset:
        return frozenset(self._resident)

    def reset(self) -> None:
        self._queue.clear()
        self._resident.clear()
        self._fetches = 0
        self._hits = 0
