"""A Fenwick (binary indexed) tree over integer positions.

Used by :mod:`repro.buffer.stack` to count, for each page reference, how many
*distinct* pages were touched since the previous reference to the same page —
the LRU stack distance.  The tree maintains a 0/1 flag per trace position
marking "this position is the most recent occurrence of its page so far";
a prefix-sum query then counts distinct pages in any window in O(log n).
"""

from __future__ import annotations

from typing import List, Sequence


class FenwickTree:
    """Prefix sums with point updates over ``size`` integer slots.

    Positions are 0-based externally; the classic 1-based layout is internal.
    """

    __slots__ = ("_size", "_tree")

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        self._size = size
        self._tree: List[int] = [0] * (size + 1)

    @classmethod
    def from_values(cls, values: Sequence[int]) -> "FenwickTree":
        """Build a tree initialized to ``values`` in O(n)."""
        tree = cls(len(values))
        data = tree._tree
        for i, value in enumerate(values, start=1):
            data[i] += value
            parent = i + (i & -i)
            if parent <= tree._size:
                data[parent] += data[i]
        return tree

    def __len__(self) -> int:
        return self._size

    def add(self, index: int, delta: int) -> None:
        """Add ``delta`` to the slot at 0-based ``index``."""
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range [0, {self._size})")
        i = index + 1
        tree = self._tree
        size = self._size
        while i <= size:
            tree[i] += delta
            i += i & -i

    def prefix_sum(self, index: int) -> int:
        """Sum of slots ``[0, index]`` for 0-based ``index``; -1 gives 0."""
        if index >= self._size:
            raise IndexError(f"index {index} out of range [-1, {self._size})")
        i = index + 1
        tree = self._tree
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & -i
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of slots in the closed interval ``[lo, hi]`` (0-based).

        Returns 0 for an empty interval (``hi < lo``).
        """
        if hi < lo:
            return 0
        return self.prefix_sum(hi) - (self.prefix_sum(lo - 1) if lo > 0 else 0)

    def total(self) -> int:
        """Sum of all slots."""
        if self._size == 0:
            return 0
        return self.prefix_sum(self._size - 1)
