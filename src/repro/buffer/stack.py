"""Single-pass LRU analysis via Mattson stack distances.

Section 4.1 of the paper: "To simultaneously perform this simulation for a
number of buffer pool sizes without maintaining that many buffer pools, the
*stack* property of the LRU algorithm (Mattson et al., 1970) is used".

For LRU, the contents of a pool of size ``B`` are always the top ``B`` pages
of a single global LRU stack (the *inclusion property*).  A reference to a
page sitting at stack depth ``d`` therefore hits in every pool with
``B >= d`` and misses in every smaller pool.  Recording the histogram of
reuse depths in **one pass** over the trace yields the exact fetch count for
*every* buffer size at once:

    F(B) = cold_misses + #{ reuses with depth > B }

The depth of a reuse is computed as 1 + the number of *distinct* pages
referenced strictly between the two accesses; counting distinct pages in a
window is done with a Fenwick tree over "most recent occurrence" flags,
giving O(M log M) for a trace of M references — this is what makes the
paper's "large index-entry scans" tractable in pure Python.
"""

from __future__ import annotations

import itertools
from bisect import bisect_left, bisect_right
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import TraceError


def stack_distances(trace: Sequence[int]) -> Tuple[List[int], int]:
    """Return ``(distances, cold_misses)`` for a page-reference trace.

    ``distances`` holds, for every *reuse* (a reference to a page seen
    before), its LRU stack depth: ``1`` means the page was the most recently
    used, so it hits even in a single-slot pool.  First references are
    compulsory (cold) misses in every pool and are returned as a count.
    """
    n = len(trace)
    # Inline Fenwick tree over trace positions; slot t holds 1 iff position
    # t is currently the most recent occurrence of its page.  Kept inline
    # (rather than using FenwickTree) because this is the hottest loop in
    # the library.
    tree = [0] * (n + 1)
    last_seen: Dict[int, int] = {}
    distances: List[int] = []
    append = distances.append
    cold = 0

    for t, page in enumerate(trace):
        prev = last_seen.get(page)
        if prev is None:
            cold += 1
        else:
            # distinct pages referenced strictly after prev and before t ==
            # number of "most recent occurrence" flags in positions
            # (prev, t); flags at or before prev are excluded by two prefix
            # sums.
            i = t  # prefix_sum over [0, t-1]
            hi = 0
            while i > 0:
                hi += tree[i]
                i -= i & -i
            i = prev + 1  # prefix_sum over [0, prev]
            lo = 0
            while i > 0:
                lo += tree[i]
                i -= i & -i
            append(hi - lo + 1)
            # prev is no longer the most recent occurrence of this page.
            i = prev + 1
            while i <= n:
                tree[i] -= 1
                i += i & -i
        # Position t becomes the most recent occurrence of `page`.
        i = t + 1
        while i <= n:
            tree[i] += 1
            i += i & -i
        last_seen[page] = t

    return distances, cold


@dataclass(frozen=True)
class FetchCurve:
    """The exact fetch-count function ``B -> F(B)`` for one reference trace.

    Built once from a stack-distance histogram, then queried in O(log k)
    for any buffer size.  ``fetches(1)`` equals the fetch count of a
    single-slot pool (used by Algorithm SD) and ``fetches(B)`` for
    ``B >= distinct_pages`` equals the compulsory-miss floor ``A`` (the
    number of distinct pages accessed).

    Edge semantics (relied on by the fleet advisor, regression-tested):

    * ``B = 0`` is rejected (:meth:`fetches` raises) — a scan cannot run
      without one buffer page.  Consumers that need a value at zero
      pages clamp to ``fetches(1)`` (see :mod:`repro.advisor.curves`).
    * ``B > distinct_pages`` is **flat**: once every distinct page fits,
      extra pages cannot avoid any fetch, so the curve sits at the
      compulsory floor ``A`` for all larger ``B`` — never below it.
    """

    #: Total references in the trace (the paper's per-scan record count
    #: when each record touches one page reference).
    accesses: int
    #: Number of distinct pages referenced (compulsory misses; paper's A).
    distinct_pages: int
    #: Sorted unique reuse depths.
    depths: Tuple[int, ...]
    #: cumulative_reuses[i] = number of reuses with depth <= depths[i].
    cumulative_reuses: Tuple[int, ...]

    @classmethod
    def from_trace(cls, trace: Sequence[int]) -> "FetchCurve":
        """Analyze ``trace`` and build its fetch curve."""
        if not len(trace):
            raise TraceError("cannot build a FetchCurve from an empty trace")
        distances, cold = stack_distances(trace)
        return cls.from_distances(distances, cold)

    @classmethod
    def from_distances(
        cls, distances: Iterable[int], cold_misses: int
    ) -> "FetchCurve":
        """Build the curve from a precomputed reuse-depth sequence.

        This is the constructor the pluggable kernels use: any pass that
        produces the multiset of reuse depths plus the compulsory-miss
        count yields exactly this curve.  ``Counter`` does the histogram
        in C rather than a Python dict loop.
        """
        histogram = Counter(distances)
        accesses = cold_misses + sum(histogram.values())
        if not accesses:
            raise TraceError("cannot build a FetchCurve from an empty trace")
        depths = tuple(sorted(histogram))
        cumulative = tuple(
            itertools.accumulate(histogram[d] for d in depths)
        )
        return cls(
            accesses=accesses,
            distinct_pages=cold_misses,
            depths=depths,
            cumulative_reuses=cumulative,
        )

    @property
    def reuses(self) -> int:
        """References that were not compulsory misses."""
        return self.accesses - self.distinct_pages

    @property
    def max_depth(self) -> int:
        """Largest reuse depth; 0 when the trace never revisits a page."""
        return self.depths[-1] if self.depths else 0

    def fetches(self, buffer_pages: int) -> int:
        """Exact page fetches for an LRU pool of ``buffer_pages`` slots."""
        if buffer_pages < 1:
            raise TraceError(
                f"buffer size must be >= 1, got {buffer_pages}"
            )
        # Reuses with depth <= B hit; the rest miss.
        idx = bisect_right(self.depths, buffer_pages)
        hits = self.cumulative_reuses[idx - 1] if idx else 0
        return self.distinct_pages + (self.reuses - hits)

    def hits(self, buffer_pages: int) -> int:
        """Accesses satisfied from the pool at the given size."""
        return self.accesses - self.fetches(buffer_pages)

    def curve(self, buffer_sizes: Iterable[int]) -> List[Tuple[int, int]]:
        """``[(B, F(B)), ...]`` for each requested buffer size."""
        return [(b, self.fetches(b)) for b in buffer_sizes]

    def min_buffer_for(self, max_fetches: int) -> int:
        """Smallest ``B`` with ``F(B) <= max_fetches``.

        Raises :class:`TraceError` if even an infinite buffer exceeds the
        bound (i.e. ``max_fetches < distinct_pages``).
        """
        if max_fetches < self.distinct_pages:
            raise TraceError(
                f"no buffer size achieves <= {max_fetches} fetches; the "
                f"compulsory-miss floor is {self.distinct_pages}"
            )
        # F(B) <= max_fetches iff hits(B) >= reuses - (max_fetches - A).
        # F only decreases at stored depth values, so the answer is read
        # straight off the cumulative histogram with one bisect instead of
        # a binary search over fetches() calls.
        needed_hits = self.reuses - (max_fetches - self.distinct_pages)
        if needed_hits <= 0:
            return 1
        return self.depths[bisect_left(self.cumulative_reuses, needed_hits)]


class StackDistanceAnalyzer:
    """Object-style facade over :func:`stack_distances` / :class:`FetchCurve`.

    Mirrors how LRU-Fit uses the analysis: feed one full index-order trace,
    get back a queryable curve plus summary statistics.
    """

    def analyze(self, trace: Sequence[int]) -> FetchCurve:
        """Build the :class:`FetchCurve` for ``trace``."""
        return FetchCurve.from_trace(trace)

    def fetch_table(
        self, trace: Sequence[int], buffer_sizes: Sequence[int]
    ) -> List[Tuple[int, int]]:
        """The paper's FPF table: ``(B_i, F_i)`` pairs for ``trace``."""
        if not buffer_sizes:
            raise TraceError("at least one buffer size is required")
        sizes = list(buffer_sizes)
        if any(b < 1 for b in sizes):
            raise TraceError(f"buffer sizes must be >= 1, got {sizes}")
        curve = self.analyze(trace)
        return curve.curve(sizes)
