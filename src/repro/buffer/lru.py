"""Exact least-recently-used buffer-pool simulator.

The paper assumes "the buffer pool is ... managed using the least recently
used (LRU) algorithm" (Section 2).  This simulator is the reference
implementation of that assumption: it is used for ground truth in tests and
as the oracle against which the stack-distance analyzer is property-checked.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.buffer.pool import BufferPool


class LRUBufferPool(BufferPool):
    """Fetch-counting LRU pool backed by an :class:`OrderedDict`.

    The OrderedDict acts as the LRU stack: keys are resident pages ordered
    from least to most recently used.  ``access`` is O(1) amortized.
    """

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._resident: "OrderedDict[int, None]" = OrderedDict()

    def access(self, page: int) -> bool:
        resident = self._resident
        if page in resident:
            resident.move_to_end(page)
            self._hits += 1
            return True
        if len(resident) >= self._capacity:
            resident.popitem(last=False)  # evict the least recently used
        resident[page] = None
        self._fetches += 1
        return False

    def resident_pages(self) -> frozenset:
        return frozenset(self._resident)

    def lru_order(self) -> tuple:
        """Resident pages from least to most recently used (for tests)."""
        return tuple(self._resident)

    def reset(self) -> None:
        self._resident.clear()
        self._fetches = 0
        self._hits = 0
