"""CLOCK (second-chance) buffer-pool simulator.

CLOCK is the classic low-overhead LRU approximation used by many real
systems.  Included for the replacement-policy ablation bench: the FPF curves
it produces should track LRU's closely, supporting the paper's use of LRU as
the modeling target even for CLOCK-based systems.
"""

from __future__ import annotations

from typing import Dict, List

from repro.buffer.pool import BufferPool


class ClockBufferPool(BufferPool):
    """Fetch-counting CLOCK pool with one reference bit per frame."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._frames: List[int] = []          # frame index -> page
        self._ref_bits: List[bool] = []       # frame index -> reference bit
        self._where: Dict[int, int] = {}      # page -> frame index
        self._hand = 0

    def access(self, page: int) -> bool:
        frame = self._where.get(page)
        if frame is not None:
            self._ref_bits[frame] = True
            self._hits += 1
            return True

        if len(self._frames) < self._capacity:
            self._where[page] = len(self._frames)
            self._frames.append(page)
            self._ref_bits.append(True)
        else:
            frame = self._advance_hand()
            del self._where[self._frames[frame]]
            self._frames[frame] = page
            self._ref_bits[frame] = True
            self._where[page] = frame
        self._fetches += 1
        return False

    def _advance_hand(self) -> int:
        """Sweep the clock hand to the first frame with a clear bit."""
        ref_bits = self._ref_bits
        n = len(ref_bits)
        hand = self._hand
        while ref_bits[hand]:
            ref_bits[hand] = False
            hand = (hand + 1) % n
        self._hand = (hand + 1) % n
        return hand

    def resident_pages(self) -> frozenset:
        return frozenset(self._where)

    def reset(self) -> None:
        self._frames.clear()
        self._ref_bits.clear()
        self._where.clear()
        self._hand = 0
        self._fetches = 0
        self._hits = 0
