"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause without
swallowing unrelated programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` library."""


class StorageError(ReproError):
    """A storage-engine invariant was violated (bad page, full page, ...)."""


class PageFullError(StorageError):
    """A record did not fit on the target page."""


class RecordNotFoundError(StorageError, KeyError):
    """A RID did not resolve to a stored record."""


class IndexError_(ReproError):
    """A B-tree index invariant was violated.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`; exported as ``BTreeError`` from the package root.
    """


class BTreeError(IndexError_):
    """Alias with a friendlier public name."""


class BufferError_(ReproError):
    """A buffer-pool simulation was configured or driven incorrectly."""


class TraceError(ReproError):
    """A page-reference trace was malformed or empty where data is required."""


class KernelError(ReproError):
    """A stack-distance kernel was unknown, misconfigured, or misused."""


class FitError(ReproError):
    """Curve fitting failed (too few points, bad segment count, ...)."""


class EstimationError(ReproError):
    """An estimator received parameters outside its domain."""


class CatalogError(ReproError):
    """Catalog lookup or (de)serialization failed."""


class EngineError(ReproError):
    """The estimation engine was configured or queried incorrectly."""


class WorkloadError(ReproError):
    """A scan specification or workload was invalid."""


class DataGenerationError(ReproError):
    """A synthetic dataset specification was invalid or calibration failed."""


class CalibrationError(DataGenerationError):
    """Window-parameter calibration could not reach the target clustering."""


class ExperimentError(ReproError):
    """An experiment definition or run was invalid."""


class OptimizerError(ReproError):
    """Access-path selection was asked to choose among zero plans."""


class VerificationError(ReproError):
    """The differential-verification harness was misconfigured or failed."""


class ResilienceError(ReproError):
    """A resilience facility (checkpoint, retry, breaker) was misused."""


class CheckpointError(ResilienceError):
    """An LRU-Fit checkpoint was missing, corrupt, or inconsistent with
    the run being resumed (wrong kernel, diverging trace prefix, ...)."""


class FaultInjectionError(ResilienceError):
    """A fault-injection plan named an unknown fault kind or operation."""


class RefreshError(ReproError):
    """The online catalog refresh loop was misconfigured or could not
    complete a cycle (bad window, missing state, failed validation)."""


class FeedError(RefreshError):
    """A live reference feed failed to deliver a chunk (the retryable
    class for the refresh loop's fault injection)."""


class ServingError(ReproError):
    """The serving tier rejected, misrouted, or could not answer a
    request (invalid tenant name, shed under load, closed server,
    unbindable port, ...)."""


class AdvisorError(ReproError):
    """The fleet buffer advisor was misconfigured or failed a
    self-check (bad workload spec, empty fleet, greedy/DP oracle
    divergence, unpriceable cost model)."""


class ObservabilityError(ReproError):
    """A metrics instrument or trace sink was declared or used
    inconsistently (conflicting family types, bad labels, negative
    counter increments, unwritable export paths, ...)."""
