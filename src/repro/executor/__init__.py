"""Physical query execution with real page-fetch accounting.

The paper's subject is *predicting* page fetches; this subpackage is the
machinery that *incurs* them.  A physical plan (table scan, or index scan
with start/stop conditions and sargable predicates, optionally followed by
a sort) executes against the storage engine while routing every data-page
and index-leaf access through a fetch-counting LRU buffer pool.  The
counted data-page fetches are, by construction, exactly the quantity every
estimator in :mod:`repro.estimators` predicts — the integration tests pin
executor counts to the experiment harness's ground truth.
"""

from repro.executor.plans import (
    ExecutionStats,
    IndexScanNode,
    PhysicalPlan,
    SortNode,
    TableScanNode,
    plan_from_choice,
)
from repro.executor.runtime import QueryExecutor

__all__ = [
    "ExecutionStats",
    "IndexScanNode",
    "PhysicalPlan",
    "QueryExecutor",
    "SortNode",
    "TableScanNode",
    "plan_from_choice",
]
