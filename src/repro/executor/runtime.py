"""The query executor: runs physical plans, counts real page fetches.

All data-page and index-leaf accesses go through one fetch-counting buffer
pool.  Data pages and index pages live in the same pool but distinct
namespaces (a real system usually shares the pool; keying by
``("data"|"index", page)`` models that sharing without page-id
collisions).
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.buffer.lru import LRUBufferPool
from repro.errors import OptimizerError
from repro.executor.plans import (
    ExecutionStats,
    IndexScanNode,
    PhysicalPlan,
    SortNode,
    TableScanNode,
)


class QueryExecutor:
    """Executes physical plans against a fresh (cold) LRU buffer pool."""

    def __init__(self, buffer_pages: int) -> None:
        if buffer_pages < 1:
            raise OptimizerError(
                f"buffer_pages must be >= 1, got {buffer_pages}"
            )
        self._buffer_pages = buffer_pages

    @property
    def buffer_pages(self) -> int:
        """The cold pool size each execution starts with."""
        return self._buffer_pages

    def execute(self, plan: PhysicalPlan) -> Tuple[List[Tuple[Any, ...]], ExecutionStats]:
        """Run ``plan`` from a cold buffer; return (rows, statistics)."""
        pool = LRUBufferPool(self._buffer_pages)
        counters = {"data_fetch": 0, "data_hit": 0, "index_fetch": 0}
        rows = self._run(plan, pool, counters)
        sorted_output = isinstance(plan, SortNode)
        return rows, ExecutionStats(
            rows_returned=len(rows),
            data_page_fetches=counters["data_fetch"],
            index_page_fetches=counters["index_fetch"],
            data_page_hits=counters["data_hit"],
            sorted_output=sorted_output,
        )

    # ------------------------------------------------------------------
    def _run(self, plan: PhysicalPlan, pool, counters) -> List[Tuple[Any, ...]]:
        if isinstance(plan, SortNode):
            child_rows = self._run(plan.child, pool, counters)
            child = plan.child
            table = (
                child.table
                if isinstance(child, TableScanNode)
                else child.index.table
            )
            column = table.column_index(plan.column)
            return sorted(child_rows, key=lambda row: row[column])
        if isinstance(plan, TableScanNode):
            return self._table_scan(plan, pool, counters)
        if isinstance(plan, IndexScanNode):
            return self._index_scan(plan, pool, counters)
        raise OptimizerError(f"unknown plan node {type(plan).__name__}")

    def _access_data_page(self, pool, counters, page: int) -> None:
        if pool.access(("data", page)):
            counters["data_hit"] += 1
        else:
            counters["data_fetch"] += 1

    def _table_scan(self, node: TableScanNode, pool, counters):
        rows: List[Tuple[Any, ...]] = []
        heap = node.table.heap
        for page_id in range(heap.page_count):
            self._access_data_page(pool, counters, page_id)
            page = heap.page(page_id)
            for row in page.records():
                if node.residual is None or node.residual(row):
                    rows.append(row)
        return rows

    def _index_scan(self, node: IndexScanNode, pool, counters):
        rows: List[Tuple[Any, ...]] = []
        index = node.index
        heap = index.table.heap
        start, stop = node.key_range.bounds()
        from repro.storage.index import IndexEntry

        for leaf, key, rid in index.btree.range_with_leaves(start, stop):
            if node.charge_index_pages:
                if not pool.access(("index", index.name, leaf)):
                    counters["index_fetch"] += 1
            if node.sargable is not None and not node.sargable.qualifies(
                IndexEntry(key, rid)
            ):
                continue
            self._access_data_page(pool, counters, rid.page)
            rows.append(heap.get(rid))
        return rows
