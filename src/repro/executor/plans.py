"""Physical plan nodes and execution statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple, Union

from repro.errors import OptimizerError
from repro.optimizer.access_path import IndexScanPlan, PlanChoice, TableScanPlan
from repro.storage.index import Index
from repro.storage.table import Table
from repro.workload.predicates import KeyRange, SargablePredicate
from repro.workload.scans import ScanSpec


@dataclass(frozen=True)
class TableScanNode:
    """Read every page of the table; apply the residual predicate to rows.

    ``residual`` receives the full row tuple and decides qualification
    (for a table scan, *all* predicates are residual — there is no index
    to pre-filter on).
    """

    table: Table
    residual: Optional[Callable[[Tuple[Any, ...]], bool]] = None


@dataclass(frozen=True)
class IndexScanNode:
    """Walk index entries in a key range; fetch qualifying records.

    ``sargable`` filters on index entries *before* any data page is
    touched — the fetch-reducing behaviour Section 4.2 models with the urn
    correction.
    """

    index: Index
    key_range: KeyRange = field(default_factory=KeyRange.full)
    sargable: Optional[SargablePredicate] = None
    #: Whether to charge index leaf pages to the buffer pool as well.
    charge_index_pages: bool = True


@dataclass(frozen=True)
class SortNode:
    """Sort the child's output rows by one column (in memory)."""

    child: Union[TableScanNode, IndexScanNode]
    column: str


PhysicalPlan = Union[TableScanNode, IndexScanNode, SortNode]


@dataclass(frozen=True)
class ExecutionStats:
    """What one execution actually cost."""

    rows_returned: int
    data_page_fetches: int
    index_page_fetches: int
    data_page_hits: int
    sorted_output: bool

    @property
    def total_fetches(self) -> int:
        """Data-page plus index-page fetches."""
        return self.data_page_fetches + self.index_page_fetches


def plan_from_choice(
    choice: PlanChoice,
    table: Table,
    scan: ScanSpec,
    candidate_indexes,
    scan_column: Optional[str] = None,
    order_column: Optional[str] = None,
) -> PhysicalPlan:
    """Turn the optimizer's :class:`PlanChoice` into an executable plan.

    ``candidate_indexes`` is the same sequence passed to
    :func:`~repro.optimizer.access_path.choose_access_plan` (pairs of
    index and estimator); only the index halves are consulted here.
    ``scan_column`` names the column the key range restricts (defaults to
    the first candidate index's column) so a table-scan plan can evaluate
    the predicate as a residual.
    """
    if scan_column is None:
        if not candidate_indexes:
            raise OptimizerError(
                "scan_column is required when there are no candidate indexes"
            )
        scan_column = candidate_indexes[0][0].column
    chosen = choice.chosen
    if isinstance(chosen, IndexScanPlan):
        for index, _estimator in candidate_indexes:
            if index.name == chosen.index_name:
                node: PhysicalPlan = IndexScanNode(
                    index=index,
                    key_range=scan.key_range,
                    sargable=scan.sargable,
                )
                break
        else:
            raise OptimizerError(
                f"chosen index {chosen.index_name!r} not among candidates"
            )
    elif isinstance(chosen, TableScanPlan):
        node = TableScanNode(
            table=table,
            residual=_key_range_residual(table, scan, scan_column),
        )
    else:
        raise OptimizerError(f"unknown plan type {type(chosen).__name__}")

    needs_sort = (
        chosen.sort_fetch_equivalent > 0 and order_column is not None
    )
    if needs_sort:
        return SortNode(child=node, column=order_column)
    return node


def _key_range_residual(table: Table, scan: ScanSpec, column: str):
    """The scan's range predicate, re-expressed over full rows."""
    key_range = scan.key_range
    if key_range.is_full:
        return None
    column_index = table.column_index(column)

    def residual(row) -> bool:
        value = row[column_index]
        start, stop = key_range.start, key_range.stop
        if start is not None:
            if start.inclusive and value < start.value:
                return False
            if not start.inclusive and value <= start.value:
                return False
        if stop is not None:
            if stop.inclusive and value > stop.value:
                return False
            if not stop.inclusive and value >= stop.value:
                return False
        return True

    return residual
