"""The paper's primary contribution, in one place.

Algorithm EPFIS's implementation lives in :mod:`repro.estimators.epfis`
(next to the baselines it is evaluated against); this package re-exports
it so the core contribution is reachable at the conventional location::

    from repro.core import LRUFit, EstIO, EPFISEstimator

``LRUFit`` is the statistics-collection pass (Section 4.1), ``EstIO`` the
query-compilation-time estimator (Section 4.2), ``EPFISEstimator`` the two
glued behind the common estimator interface, and ``SmoothEPFISEstimator``
this reproduction's smooth-correction variant.
"""

from repro.estimators.epfis import (
    DEFAULT_SEGMENTS,
    EPFISEstimator,
    EstIO,
    LRUFit,
    LRUFitConfig,
    buffer_grid,
)
from repro.estimators.epfis_smooth import (
    SmoothEPFISEstimator,
    SmoothEstIO,
    smooth_correction_weight,
)

__all__ = [
    "DEFAULT_SEGMENTS",
    "EPFISEstimator",
    "EstIO",
    "LRUFit",
    "LRUFitConfig",
    "SmoothEPFISEstimator",
    "SmoothEstIO",
    "buffer_grid",
    "smooth_correction_weight",
]
