"""Algorithm ML: Mackert & Lohman's validated LRU I/O model (Section 3.1).

"The basic idea is to have a moving window of a single buffer size, and to
use it to extrapolate probabilistically to any buffer size."  The number of
pages fetched for retrieving all tuples matching ``x`` key values is::

    T * (1 - q**x)                              if x <= n
    T * (1 - q**n) + (x - n) * T * p * q**n     if n < x <= I

with ``q = (1 - 1/T)**min(D, R)``, ``D = N/I``, ``R = N/T``, ``p = 1 - q``
and ``n`` the largest key count whose estimated working set still fits the
buffer: ``n = max{ j : T (1 - q**j) <= B }``.

ML consumes only catalog-grade statistics (T, N, I) — no data pass at all —
which is its practical appeal and, per the paper's experiments, also the
root of its errors on data whose clustering deviates from the model.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

from repro.catalog.catalog import IndexStatistics
from repro.errors import EstimationError
from repro.estimators.base import PageFetchEstimator
from repro.storage.index import Index
from repro.types import ScanSelectivity


class MackertLohmanEstimator(PageFetchEstimator):
    """The ML iterative formula, with a closed form for ``n``."""

    name = "ML"

    def __init__(
        self, table_pages: int, table_records: int, distinct_keys: int
    ) -> None:
        if table_pages < 1:
            raise EstimationError(f"table_pages must be >= 1, got {table_pages}")
        if table_records < table_pages:
            raise EstimationError(
                f"table_records ({table_records}) < table_pages "
                f"({table_pages})"
            )
        if not 1 <= distinct_keys <= table_records:
            raise EstimationError(
                f"distinct_keys must be in [1, N], got {distinct_keys}"
            )
        self._t = table_pages
        self._n_records = table_records
        self._i = distinct_keys

    @classmethod
    def from_index(cls, index: Index) -> "MackertLohmanEstimator":
        """Read (T, N, I) from ``index``; no trace pass needed."""
        return cls(
            table_pages=index.table.page_count,
            table_records=index.entry_count,
            distinct_keys=index.distinct_key_count(),
        )

    @classmethod
    def from_statistics(
        cls, stats: IndexStatistics
    ) -> "MackertLohmanEstimator":
        """Rebuild from a catalog record."""
        return cls(
            table_pages=stats.table_pages,
            table_records=stats.table_records,
            distinct_keys=stats.distinct_keys,
        )

    def _q(self) -> float:
        duplicates_per_key = self._n_records / self._i
        records_per_page = self._n_records / self._t
        exponent = min(duplicates_per_key, records_per_page)
        return (1.0 - 1.0 / self._t) ** exponent

    def _n_saturation(self, q: float, buffer_pages: int) -> float:
        """Largest j with ``T (1 - q**j) <= B`` (capped at I)."""
        if buffer_pages >= self._t:
            return float(self._i)
        if q >= 1.0:  # degenerate single-page table
            return float(self._i)
        # T (1 - q^j) <= B  <=>  q^j >= 1 - B/T  <=>  j <= ln(1-B/T)/ln(q)
        remaining = 1.0 - buffer_pages / self._t
        j = math.log(remaining) / math.log(q)
        return min(float(self._i), math.floor(j))

    def estimate(
        self, selectivity: ScanSelectivity, buffer_pages: int
    ) -> float:
        buffer_pages = self._check_buffer(buffer_pages)
        # ML is parameterized by matched key values; the experiments use
        # sigma*S as the effective fraction of keys retrieved (the original
        # model has no separate sargable term).
        x = selectivity.combined * self._i
        if x <= 0.0:
            return 0.0
        if self._t == 1:
            return 1.0

        q = self._q()
        n = self._n_saturation(q, buffer_pages)
        return self._estimate_saturated(x, q, n)

    def _estimate_saturated(self, x: float, q: float, n: float) -> float:
        """The two-branch ML formula given the saturation point ``n``."""
        p = 1.0 - q
        if x <= n:
            return self._t * (1.0 - q ** x)
        return self._t * (1.0 - q ** n) + (x - n) * self._t * p * q ** n

    def estimate_many(
        self, pairs: Iterable[Tuple[ScanSelectivity, int]]
    ) -> List[float]:
        """Batched estimates; the saturation point is solved once per B.

        ``q`` depends only on the table shape and ``n`` only on ``(q, B)``,
        so a batch over few distinct buffer sizes pays for the logarithms
        once, not per scan.  Results match the per-call path exactly.
        """
        q = self._q()
        n_cache: Dict[int, float] = {}
        results: List[float] = []
        for selectivity, buffer_pages in pairs:
            buffer_pages = self._check_buffer(buffer_pages)
            x = selectivity.combined * self._i
            if x <= 0.0:
                results.append(0.0)
                continue
            if self._t == 1:
                results.append(1.0)
                continue
            n = n_cache.get(buffer_pages)
            if n is None:
                n = self._n_saturation(q, buffer_pages)
                n_cache[buffer_pages] = n
            results.append(self._estimate_saturated(x, q, n))
        return results
