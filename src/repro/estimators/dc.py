"""Algorithm DC (Section 3.2): cluster-counter based estimation.

A statistics pass scans index entries in key order and counts, in ``CC``,
the key-to-key transitions that move forward (or stay) in page order.  The
cluster ratio is::

    CR = min(1, CC/I + min(0.4, 5 * ln(T/I)))

and the fetch estimate is ``sigma * (T + (1 - CR) * (N - T))`` — buffer size
does not enter at all, which is why DC's error curves in the paper swing so
wildly as B varies.

For ``T < I`` the log term is negative; the paper gives no lower clamp, but
a negative CR would push the estimate above ``sigma * N``, violating the
paper's own bound F <= N, so CR is floored at 0 (see DESIGN.md, errata).
"""

from __future__ import annotations

import math
from repro.catalog.catalog import IndexStatistics
from repro.errors import EstimationError
from repro.estimators.base import PageFetchEstimator
from repro.storage.index import Index
from repro.trace.stats import dc_cluster_count
from repro.types import ScanSelectivity


class DCEstimator(PageFetchEstimator):
    """Cluster-ratio estimator built on the DC cluster counter."""

    name = "DC"

    def __init__(
        self,
        table_pages: int,
        table_records: int,
        distinct_keys: int,
        cluster_count: int,
    ) -> None:
        if table_pages < 1:
            raise EstimationError(f"table_pages must be >= 1, got {table_pages}")
        if table_records < table_pages:
            raise EstimationError(
                f"table_records ({table_records}) < table_pages "
                f"({table_pages})"
            )
        if not 1 <= distinct_keys <= table_records:
            raise EstimationError(
                f"distinct_keys must be in [1, N], got {distinct_keys}"
            )
        if not 0 <= cluster_count <= distinct_keys:
            raise EstimationError(
                f"cluster_count must be in [0, I], got {cluster_count}"
            )
        self._t = table_pages
        self._n = table_records
        self._i = distinct_keys
        self._cc = cluster_count

    @classmethod
    def from_index(cls, index: Index) -> "DCEstimator":
        """Run DC's statistics pass (cluster counter) on ``index``."""
        return cls(
            table_pages=index.table.page_count,
            table_records=index.entry_count,
            distinct_keys=index.distinct_key_count(),
            cluster_count=dc_cluster_count(index),
        )

    @classmethod
    def from_statistics(cls, stats: IndexStatistics) -> "DCEstimator":
        """Rebuild from a catalog record (requires the DC counter)."""
        if stats.dc_cluster_count is None:
            raise EstimationError(
                f"catalog record for {stats.index_name!r} lacks the DC "
                "cluster count; re-run statistics collection with "
                "collect_baseline_stats=True"
            )
        return cls(
            table_pages=stats.table_pages,
            table_records=stats.table_records,
            distinct_keys=stats.distinct_keys,
            cluster_count=stats.dc_cluster_count,
        )

    @property
    def cluster_ratio(self) -> float:
        """``CR`` as defined above (computed once; cheap either way)."""
        adjustment = min(0.4, 5.0 * math.log(self._t / self._i))
        cr = min(1.0, self._cc / self._i + adjustment)
        return max(0.0, cr)

    def estimate(
        self, selectivity: ScanSelectivity, buffer_pages: int
    ) -> float:
        self._check_buffer(buffer_pages)  # validated but unused: DC ignores B
        sigma = selectivity.combined
        cr = self.cluster_ratio
        return sigma * (self._t + (1.0 - cr) * (self._n - self._t))
