"""Classical block-access formulas (Cardenas, Yao, Waters).

These predate the paper (its Section 3 survey) and appear inside it as
building blocks: Cardenas's formula is used by Algorithm SD and by EPFIS's
small-selectivity correction and urn model.  All three estimate the number
of distinct pages touched when ``k`` records are selected from a table of
``T`` pages — they ignore buffering entirely, which is precisely the gap
the paper addresses.
"""

from __future__ import annotations

import math

from repro.errors import EstimationError


def _check(pages: float, selections: float) -> None:
    if pages < 1:
        raise EstimationError(f"pages must be >= 1, got {pages}")
    if selections < 0:
        raise EstimationError(f"selections must be >= 0, got {selections}")


def cardenas(pages: float, selections: float) -> float:
    """Cardenas (1975): ``T * (1 - (1 - 1/T)**k)``.

    Expected distinct pages hit when ``k`` records are chosen uniformly at
    random *with replacement* from a table of ``T`` equally likely pages.
    Accepts fractional ``k`` (estimators pass expected record counts).
    """
    _check(pages, selections)
    if pages == 1:
        return 1.0 if selections > 0 else 0.0
    return pages * (1.0 - (1.0 - 1.0 / pages) ** selections)


def yao(records: int, pages: int, selections: int) -> float:
    """Yao (1977): exact expectation *without* replacement.

    ``records`` rows spread evenly over ``pages`` pages (``m = N/T`` rows
    per page); ``k`` distinct rows are sampled.  The expected number of
    pages with at least one sampled row is::

        T * (1 - C(N - m, k) / C(N, k))

    computed in log space to stay stable for large arguments.
    """
    if records < 1:
        raise EstimationError(f"records must be >= 1, got {records}")
    if pages < 1 or pages > records:
        raise EstimationError(
            f"pages must be in [1, records], got {pages} with N={records}"
        )
    if not 0 <= selections <= records:
        raise EstimationError(
            f"selections must be in [0, records], got {selections}"
        )
    if selections == 0:
        return 0.0
    m = records / pages
    if selections > records - m:
        # Sampling more rows than can avoid any given page: every page hit.
        return float(pages)
    # log C(N - m, k) - log C(N, k) via lgamma; m need not be integral, so
    # use the product form prod_{i=0..k-1} (N - m - i) / (N - i) in log
    # space when m is fractional, the lgamma form when integral.
    if float(m).is_integer():
        m_int = int(m)
        log_ratio = (
            _log_comb(records - m_int, selections)
            - _log_comb(records, selections)
        )
    else:
        log_ratio = 0.0
        for i in range(selections):
            log_ratio += math.log((records - m - i) / (records - i))
    return pages * (1.0 - math.exp(log_ratio))


def _log_comb(n: int, k: int) -> float:
    if k < 0 or k > n:
        return float("-inf")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def waters(records: int, pages: int, selections: float) -> float:
    """Waters (1976): the cheap approximation ``T * (1 - (1 - k/N)**m)``.

    Approximates Yao's expectation by treating each of a page's ``m = N/T``
    rows as independently un-sampled with probability ``1 - k/N``.
    """
    if records < 1:
        raise EstimationError(f"records must be >= 1, got {records}")
    if pages < 1 or pages > records:
        raise EstimationError(
            f"pages must be in [1, records], got {pages} with N={records}"
        )
    if not 0 <= selections <= records:
        raise EstimationError(
            f"selections must be in [0, records], got {selections}"
        )
    m = records / pages
    return pages * (1.0 - (1.0 - selections / records) ** m)
