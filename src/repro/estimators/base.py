"""The estimator contract.

An estimator answers the optimizer's question from Section 2: *how many data
page fetches will this index scan cost, given the records selected and the
LRU buffer pages available?*  Estimates are floats (expected values), not
integers — optimizers compare costs, they do not schedule I/Os.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, List, Sequence, Tuple, Union

from repro.errors import EstimationError
from repro.types import ScanSelectivity

#: One batched estimation request: ``(selectivity, buffer_pages)``.
EstimationRequest = Tuple[ScanSelectivity, int]


class PageFetchEstimator(ABC):
    """Predicts page fetches for a (partial) index scan."""

    #: Short display name used in experiment reports ("EPFIS", "ML", ...).
    name: str = "base"

    @abstractmethod
    def estimate(
        self, selectivity: ScanSelectivity, buffer_pages: int
    ) -> float:
        """Expected data-page fetches for the scan.

        ``selectivity`` carries the paper's sigma (start/stop conditions)
        and S (index-sargable predicates); ``buffer_pages`` is the paper's
        B, the LRU buffer available to the scan.
        """

    def estimate_many(
        self, pairs: Iterable[EstimationRequest]
    ) -> List[float]:
        """Batched :meth:`estimate`: one result per ``(selectivity, B)``.

        The default implementation is a plain loop, so every estimator is
        batchable for free; estimators whose per-call work factors by
        buffer size (EPFIS's curve interpolation, ML's saturation point)
        override this to hoist that work out of the loop.  Overrides must
        return exactly what the loop would — batching is an optimization,
        never a semantic.
        """
        return [self.estimate(sel, b) for sel, b in pairs]

    def estimate_grid(
        self,
        selectivities: Sequence[ScanSelectivity],
        buffer_pages: Sequence[int],
    ) -> List[List[float]]:
        """Estimates for the cross product, row per buffer size.

        ``result[g][s]`` is the estimate for ``selectivities[s]`` at
        ``buffer_pages[g]`` — the shape the experiment runner consumes.

        Buffer-size edge semantics (pinned for the fleet advisor):
        every entry of ``buffer_pages`` must be >= 1 (``B = 0`` raises
        :class:`~repro.errors.EstimationError` via ``_check_buffer``,
        exactly as :meth:`estimate` does); sizes beyond the index's
        table pages are legal and sit on the curve's flat tail —
        though estimators built on piecewise-linear *fits* extrapolate
        with terminal slopes and may drift slightly (even below zero),
        so curve consumers clamp estimates at 0 (see
        :mod:`repro.advisor.curves`).
        """
        flat = self.estimate_many(
            [(sel, b) for b in buffer_pages for sel in selectivities]
        )
        width = len(selectivities)
        return [
            flat[g * width:(g + 1) * width]
            for g in range(len(buffer_pages))
        ]

    def estimate_sigma(
        self,
        range_selectivity: float,
        buffer_pages: int,
        sargable_selectivity: float = 1.0,
    ) -> float:
        """Convenience wrapper taking plain floats."""
        return self.estimate(
            ScanSelectivity(range_selectivity, sargable_selectivity),
            buffer_pages,
        )

    @staticmethod
    def _check_buffer(buffer_pages: Union[int, float]) -> int:
        if buffer_pages < 1:
            raise EstimationError(
                f"buffer_pages must be >= 1, got {buffer_pages}"
            )
        return int(buffer_pages)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
