"""Algorithm OT (Section 3.4): three-buffer jump-based cluster ratio.

The statistics pass measures ``J``, the fetch count of a full index scan
with a *three-page* buffer (a slightly more forgiving jump definition than
SD's single page).  Then::

    CR = (N + T - J) / N
    F  = sigma * (T + (1 - CR) * (N - T))

Like DC, the final formula ignores the buffer size available to the scan
being costed.
"""

from __future__ import annotations

from repro.buffer.lru import LRUBufferPool
from repro.catalog.catalog import IndexStatistics
from repro.errors import EstimationError
from repro.estimators.base import PageFetchEstimator
from repro.storage.index import Index
from repro.types import ScanSelectivity

#: The buffer size OT's statistics pass simulates.
OT_PROBE_BUFFER = 3


class OTEstimator(PageFetchEstimator):
    """Cluster-ratio estimator based on three-buffer fetch counts."""

    name = "OT"

    def __init__(
        self,
        table_pages: int,
        table_records: int,
        fetches_three_buffers: int,
    ) -> None:
        if table_pages < 1:
            raise EstimationError(f"table_pages must be >= 1, got {table_pages}")
        if table_records < table_pages:
            raise EstimationError(
                f"table_records ({table_records}) < table_pages "
                f"({table_pages})"
            )
        if not 1 <= fetches_three_buffers <= table_records:
            raise EstimationError(
                f"fetches_three_buffers must be in [1, N], got "
                f"{fetches_three_buffers}"
            )
        self._t = table_pages
        self._n = table_records
        self._j = fetches_three_buffers

    @classmethod
    def from_index(cls, index: Index) -> "OTEstimator":
        """Run OT's statistics pass: LRU-simulate a 3-page buffer."""
        trace = index.page_sequence()
        return cls(
            table_pages=index.table.page_count,
            table_records=len(trace),
            fetches_three_buffers=LRUBufferPool(OT_PROBE_BUFFER).run(trace),
        )

    @classmethod
    def from_statistics(cls, stats: IndexStatistics) -> "OTEstimator":
        """Rebuild from a catalog record (requires F(B=3))."""
        if stats.fetches_b3 is None:
            raise EstimationError(
                f"catalog record for {stats.index_name!r} lacks F(B=3); "
                "re-run statistics collection with "
                "collect_baseline_stats=True"
            )
        return cls(
            table_pages=stats.table_pages,
            table_records=stats.table_records,
            fetches_three_buffers=stats.fetches_b3,
        )

    @property
    def cluster_ratio(self) -> float:
        """``CR = (N + T - J) / N``, clamped into [0, 1]."""
        cr = (self._n + self._t - self._j) / self._n
        return min(1.0, max(0.0, cr))

    def estimate(
        self, selectivity: ScanSelectivity, buffer_pages: int
    ) -> float:
        self._check_buffer(buffer_pages)  # validated but unused: OT ignores B
        sigma = selectivity.combined
        cr = self.cluster_ratio
        return sigma * (self._t + (1.0 - cr) * (self._n - self._t))
