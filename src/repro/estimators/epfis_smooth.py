"""EPFIS with a smooth small-selectivity correction (our extension).

The paper's Equation 1 gates its correction with an indicator variable:
``nu = 1 if phi >= 3*sigma else 0``, then weights the Cardenas term by
``min(1, phi/(6*sigma))``.  As a function of the ratio ``r = phi/sigma``
the correction weight is therefore::

    w_paper(r) = 0          for r < 3
                 min(1, r/6) for r >= 3      (jumps from 0 to >= 0.5 at r=3)

The per-scan scatter diagnostics (``bench_scatter_diagnostics.py``) show
this discontinuity is EPFIS's main source of per-scan variance: two scans
with nearly identical sigma can fall on opposite sides of the jump and
receive estimates differing by hundreds of pages.  This module replaces
the gate with the continuous ramp through the same anchor points::

    w_smooth(r) = clamp((r - 1) / 5, 0, 1)

(zero when the buffer share phi does not exceed sigma at all, saturated at
the paper's own r = 6 full-weight point).  Everything else — PF_B
interpolation, the Cardenas term, the urn model — is unchanged, so the
variant isolates exactly one design decision.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.catalog.catalog import IndexStatistics
from repro.estimators.base import PageFetchEstimator
from repro.estimators.epfis import EstIO, LRUFit, LRUFitConfig
from repro.estimators.formulas import cardenas
from repro.storage.index import Index
from repro.types import ScanSelectivity


def smooth_correction_weight(phi: float, sigma: float) -> float:
    """The continuous replacement for ``nu * min(1, phi/(6 sigma))``."""
    if sigma <= 0.0:
        return 0.0
    ratio = phi / sigma
    return min(1.0, max(0.0, (ratio - 1.0) / 5.0))


class SmoothEstIO(EstIO):
    """Est-IO with the smooth correction ramp.

    Only the Equation 1 weight differs; interpolation, the Cardenas term,
    the urn model, the clamp — and therefore the batched
    :meth:`~repro.estimators.epfis.EstIO.estimate_many` fast path — are
    all inherited from :class:`~repro.estimators.epfis.EstIO`.
    """

    def _correction_weight(self, phi: float, sigma: float) -> float:
        """``w_smooth`` in place of the nu indicator."""
        return smooth_correction_weight(phi, sigma)


class SmoothEPFISEstimator(PageFetchEstimator):
    """The smooth-correction EPFIS variant behind the standard interface."""

    name = "EPFIS-smooth"

    def __init__(self, stats: IndexStatistics, **est_io_options) -> None:
        self._est_io = SmoothEstIO(stats, **est_io_options)

    @classmethod
    def from_index(
        cls,
        index: Index,
        config: Optional[LRUFitConfig] = None,
        **est_io_options,
    ) -> "SmoothEPFISEstimator":
        """Run LRU-Fit on ``index`` and wrap the result."""
        return cls(LRUFit(config).run(index), **est_io_options)

    @classmethod
    def from_statistics(
        cls, stats: IndexStatistics, **est_io_options
    ) -> "SmoothEPFISEstimator":
        """Build from a catalog record (no data access)."""
        return cls(stats, **est_io_options)

    @property
    def statistics(self) -> IndexStatistics:
        """The LRU-Fit catalog record backing this estimator."""
        return self._est_io.stats

    def estimate(
        self, selectivity: ScanSelectivity, buffer_pages: int
    ) -> float:
        """Delegate to the smooth Est-IO."""
        return self._est_io.estimate(
            selectivity, self._check_buffer(buffer_pages)
        )

    def estimate_many(
        self, pairs: Iterable[Tuple[ScanSelectivity, int]]
    ) -> List[float]:
        return self._est_io.estimate_many(
            [(sel, self._check_buffer(b)) for sel, b in pairs]
        )
