"""Classical block-access estimators wrapped in the common interface.

Cardenas (1975), Yao (1977), and Waters (1976) predate LRU-aware
estimation: they predict how many *distinct* pages a sample of records
touches, assuming random placement and an effectively infinite buffer
(every touched page fetched exactly once).  Section 3 of the paper cites
them as the starting point; wrapping them as estimators lets the benches
show exactly where buffer-awareness starts to matter.
"""

from __future__ import annotations

from repro.catalog.catalog import IndexStatistics
from repro.errors import EstimationError
from repro.estimators.base import PageFetchEstimator
from repro.estimators.formulas import cardenas, waters, yao
from repro.storage.index import Index
from repro.types import ScanSelectivity


class _ClassicalEstimator(PageFetchEstimator):
    """Shared shape: needs only (T, N), ignores the buffer size."""

    def __init__(self, table_pages: int, table_records: int) -> None:
        if table_pages < 1:
            raise EstimationError(f"table_pages must be >= 1, got {table_pages}")
        if table_records < table_pages:
            raise EstimationError(
                f"table_records ({table_records}) < table_pages "
                f"({table_pages})"
            )
        self._t = table_pages
        self._n = table_records

    @classmethod
    def from_index(cls, index: Index):
        return cls(index.table.page_count, index.entry_count)

    @classmethod
    def from_statistics(cls, stats: IndexStatistics):
        return cls(stats.table_pages, stats.table_records)

    def _selections(self, selectivity: ScanSelectivity) -> float:
        return selectivity.combined * self._n


class CardenasEstimator(_ClassicalEstimator):
    """F ~= T (1 - (1 - 1/T)^k): sampling with replacement."""

    name = "Cardenas"

    def estimate(
        self, selectivity: ScanSelectivity, buffer_pages: int
    ) -> float:
        self._check_buffer(buffer_pages)
        return cardenas(self._t, self._selections(selectivity))


class YaoEstimator(_ClassicalEstimator):
    """Exact expectation without replacement (uniform occupancy)."""

    name = "Yao"

    def estimate(
        self, selectivity: ScanSelectivity, buffer_pages: int
    ) -> float:
        self._check_buffer(buffer_pages)
        selections = int(round(self._selections(selectivity)))
        selections = min(selections, self._n)
        return yao(self._n, self._t, selections)


class WatersEstimator(_ClassicalEstimator):
    """Waters's cheap approximation to Yao."""

    name = "Waters"

    def estimate(
        self, selectivity: ScanSelectivity, buffer_pages: int
    ) -> float:
        self._check_buffer(buffer_pages)
        return waters(self._n, self._t, self._selections(selectivity))
