"""Algorithm SD (Section 3.3): jump-based cluster ratio + Cardenas blend.

The statistics pass measures ``J``, the fetch count of a full index scan
with a *single* buffer page (equivalently one plus the number of page
"jumps" in index order).  Then::

    CR = (N - J) / (N - T)
    U  = sigma * I * (T * (1 - (1 - 1/T)**(T/I)))      # printed exponent
    V  = min(U, T)  if T < B  else  U
    F  = CR * T * sigma + (1 - CR) * V

The printed Cardenas exponent ``T/I`` is dimensionally odd — the quantity
that reads as "pages per key value" would use ``D = N/I`` records per key.
We implement the printed formula by default and expose
``exponent="records-per-key"`` as a variant; the SD-exponent ablation bench
compares the two (see DESIGN.md, errata).
"""

from __future__ import annotations

from repro.catalog.catalog import IndexStatistics
from repro.errors import EstimationError
from repro.estimators.base import PageFetchEstimator
from repro.estimators.formulas import cardenas
from repro.storage.index import Index
from repro.trace.stats import fetches_with_single_buffer
from repro.types import ScanSelectivity

_EXPONENT_RULES = ("literal", "records-per-key")


class SDEstimator(PageFetchEstimator):
    """Cluster-ratio estimator based on single-buffer jump counts."""

    name = "SD"

    def __init__(
        self,
        table_pages: int,
        table_records: int,
        distinct_keys: int,
        fetches_single_buffer: int,
        exponent: str = "literal",
    ) -> None:
        if table_pages < 1:
            raise EstimationError(f"table_pages must be >= 1, got {table_pages}")
        if table_records < table_pages:
            raise EstimationError(
                f"table_records ({table_records}) < table_pages "
                f"({table_pages})"
            )
        if not 1 <= distinct_keys <= table_records:
            raise EstimationError(
                f"distinct_keys must be in [1, N], got {distinct_keys}"
            )
        if not 1 <= fetches_single_buffer <= table_records:
            raise EstimationError(
                f"fetches_single_buffer must be in [1, N], got "
                f"{fetches_single_buffer}"
            )
        if exponent not in _EXPONENT_RULES:
            raise EstimationError(
                f"exponent must be one of {_EXPONENT_RULES}, got {exponent!r}"
            )
        self._t = table_pages
        self._n = table_records
        self._i = distinct_keys
        self._j = fetches_single_buffer
        self._exponent = exponent

    @classmethod
    def from_index(
        cls, index: Index, exponent: str = "literal"
    ) -> "SDEstimator":
        """Run SD's statistics pass: count single-buffer fetches."""
        trace = index.page_sequence()
        return cls(
            table_pages=index.table.page_count,
            table_records=len(trace),
            distinct_keys=index.distinct_key_count(),
            fetches_single_buffer=fetches_with_single_buffer(trace),
            exponent=exponent,
        )

    @classmethod
    def from_statistics(
        cls, stats: IndexStatistics, exponent: str = "literal"
    ) -> "SDEstimator":
        """Rebuild from a catalog record (requires F(B=1))."""
        if stats.fetches_b1 is None:
            raise EstimationError(
                f"catalog record for {stats.index_name!r} lacks F(B=1); "
                "re-run statistics collection with "
                "collect_baseline_stats=True"
            )
        return cls(
            table_pages=stats.table_pages,
            table_records=stats.table_records,
            distinct_keys=stats.distinct_keys,
            fetches_single_buffer=stats.fetches_b1,
            exponent=exponent,
        )

    @property
    def cluster_ratio(self) -> float:
        """``CR = (N - J) / (N - T)``; 1.0 for the degenerate N == T."""
        if self._n == self._t:
            return 1.0
        cr = (self._n - self._j) / (self._n - self._t)
        return min(1.0, max(0.0, cr))

    def _unclustered_pages(self, sigma: float) -> float:
        """``U``: Cardenas-based pages for randomly located tuples."""
        if self._exponent == "literal":
            per_key_exponent = self._t / self._i
        else:
            per_key_exponent = self._n / self._i
        per_key_pages = cardenas(self._t, per_key_exponent)
        return sigma * self._i * per_key_pages

    def estimate(
        self, selectivity: ScanSelectivity, buffer_pages: int
    ) -> float:
        buffer_pages = self._check_buffer(buffer_pages)
        sigma = selectivity.combined
        cr = self.cluster_ratio
        u = self._unclustered_pages(sigma)
        if self._t < buffer_pages:
            v = min(u, float(self._t))
        else:
            v = u
        return cr * self._t * sigma + (1.0 - cr) * v
