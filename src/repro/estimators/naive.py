"""The earliest-generation estimators (Section 3 lead-in).

"The very first attempts at modeling page fetches assumed that an index was
either perfectly clustered (F = T) or perfectly unclustered (F = N)."
These bracket every other estimate and serve as sanity baselines in the
benches and as cost-model defaults when no statistics exist.
"""

from __future__ import annotations

from repro.catalog.catalog import IndexStatistics
from repro.errors import EstimationError
from repro.estimators.base import PageFetchEstimator
from repro.storage.index import Index
from repro.types import ScanSelectivity


class _ShapeOnlyEstimator(PageFetchEstimator):
    """Shared construction for estimators that need only (T, N)."""

    def __init__(self, table_pages: int, table_records: int) -> None:
        if table_pages < 1:
            raise EstimationError(f"table_pages must be >= 1, got {table_pages}")
        if table_records < table_pages:
            raise EstimationError(
                f"table_records ({table_records}) < table_pages "
                f"({table_pages})"
            )
        self._t = table_pages
        self._n = table_records

    @classmethod
    def from_index(cls, index: Index):
        return cls(index.table.page_count, index.entry_count)

    @classmethod
    def from_statistics(cls, stats: IndexStatistics):
        return cls(stats.table_pages, stats.table_records)


class PerfectlyClusteredEstimator(_ShapeOnlyEstimator):
    """Assumes F = sigma * T: the scan never refetches or skips pages."""

    name = "clustered"

    def estimate(
        self, selectivity: ScanSelectivity, buffer_pages: int
    ) -> float:
        self._check_buffer(buffer_pages)
        return selectivity.combined * self._t


class PerfectlyUnclusteredEstimator(_ShapeOnlyEstimator):
    """Assumes F = sigma * N: every record examined costs one fetch."""

    name = "unclustered"

    def estimate(
        self, selectivity: ScanSelectivity, buffer_pages: int
    ) -> float:
        self._check_buffer(buffer_pages)
        return selectivity.combined * self._n
