"""Page-fetch estimators: EPFIS and the Section 3 baselines.

Every estimator implements the same contract
(:class:`~repro.estimators.base.PageFetchEstimator`): given the scan's
selectivities and the available LRU buffer size, predict the number of data
page fetches.  Construction happens at *statistics-collection time* (from an
index, or from a catalog record); estimation happens at *query-compilation
time* and is a cheap closed-form computation, mirroring the paper's split
into LRU-Fit and Est-IO.
"""

from repro.estimators.base import PageFetchEstimator
from repro.estimators.classical import (
    CardenasEstimator,
    WatersEstimator,
    YaoEstimator,
)
from repro.estimators.dc import DCEstimator
from repro.estimators.epfis import (
    EPFISEstimator,
    EstIO,
    LRUFit,
    LRUFitConfig,
)
from repro.estimators.epfis_smooth import (
    SmoothEPFISEstimator,
    SmoothEstIO,
    smooth_correction_weight,
)
from repro.estimators.formulas import (
    cardenas,
    waters,
    yao,
)
from repro.estimators.mackert_lohman import MackertLohmanEstimator
from repro.estimators.naive import (
    PerfectlyClusteredEstimator,
    PerfectlyUnclusteredEstimator,
)
from repro.estimators.ot import OTEstimator
from repro.estimators.registry import (
    PAPER_ESTIMATOR_NAMES,
    available_estimators,
    get_estimator,
    register_estimator,
    resolve_estimator,
)
from repro.estimators.sd import SDEstimator

__all__ = [
    "PAPER_ESTIMATOR_NAMES",
    "CardenasEstimator",
    "DCEstimator",
    "EPFISEstimator",
    "EstIO",
    "LRUFit",
    "LRUFitConfig",
    "MackertLohmanEstimator",
    "OTEstimator",
    "PageFetchEstimator",
    "PerfectlyClusteredEstimator",
    "PerfectlyUnclusteredEstimator",
    "SDEstimator",
    "SmoothEPFISEstimator",
    "SmoothEstIO",
    "WatersEstimator",
    "YaoEstimator",
    "available_estimators",
    "cardenas",
    "get_estimator",
    "register_estimator",
    "resolve_estimator",
    "smooth_correction_weight",
    "waters",
    "yao",
]
