"""Algorithm EPFIS (Section 4): LRU-Fit + Est-IO.

LRU-Fit runs once, at statistics-collection time.  It scans the index
entries (one pass), simulates LRU pools of every size simultaneously via the
stack property, samples the resulting FPF curve on the paper's buffer grid,
fits six line segments, and derives the clustering factor
``C = (N - F_min) / (N - T)``.  Everything it learns fits in one
:class:`~repro.catalog.IndexStatistics` catalog record.

Est-IO runs per optimizer call.  It interpolates the stored curve at the
available buffer size to get the full-scan fetch count ``PF_B``, scales by
the range selectivity sigma, applies the small-selectivity heuristic
correction (Equation 1), and finally the urn-model reduction for
index-sargable predicates.

Paper erratum handled here (see DESIGN.md): the printed
``phi = max(1, B/T)`` makes the correction's trigger condition vacuous; the
surrounding prose ("when sigma << 1/3 and sigma << B/T") implies
``phi = min(1, B/T)``, which is the default.  Pass ``phi_rule="literal-max"``
to reproduce the printed formula.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.buffer.kernels import (
    DEFAULT_KERNEL,
    available_kernels,
    available_policy_kernels,
    resolve_kernel,
    sharded_chunked_curve,
    sharded_fetch_curve,
)
from repro.catalog.catalog import IndexStatistics
from repro.errors import EstimationError, TraceError
from repro.estimators.base import PageFetchEstimator
from repro.estimators.formulas import cardenas
from repro.fit.segments import PiecewiseLinear, fit_piecewise_linear
from repro.obs.tracing import span as obs_span
from repro.storage.index import Index
from repro.trace.stats import B_SML_DEFAULT, dc_cluster_count, min_modeled_buffer
from repro.types import ScanSelectivity

#: The paper's segment count: "we use six line segments to approximate the
#: FPF curves" (errors stop improving beyond ~five).
DEFAULT_SEGMENTS = 6

_PHI_RULES = ("corrected", "literal-max")
_GRID_RULES = ("paper", "graefe")


@dataclass(frozen=True)
class LRUFitConfig:
    """Tunable parameters of the LRU-Fit pass.

    ``grid_rule="paper"`` uses the heuristic
    ``B_{i+1} = B_i + 2*sqrt(B_max - B_min)``; ``"graefe"`` uses the
    footnoted geometric alternative ``B_i = B_min * (B_max/B_min)**(i/k)``.
    ``b_range`` lets a DBA pin the modeled range explicitly ("If desired,
    the range of B can be specified by the database administrator").
    ``kernel`` names the stack-distance kernel the statistics pass runs on
    (see :mod:`repro.buffer.kernels`): any exact kernel yields identical
    statistics; ``"sampled"`` trades a documented approximation error for
    an order-of-magnitude faster pass on large indexes.
    ``shards``/``shard_workers`` split the pass into contiguous shards
    merged back into one curve (see
    :mod:`repro.buffer.kernels.sharded`): exact kernels stay
    bit-identical to a single pass, ``shard_workers > 1`` runs shards on
    a process pool, and ``shard_workers <= 0`` means one per core.
    ``policy`` names the replacement policy the fitted curve models:
    ``"lru"`` (the default, and the paper's model) runs the configured
    stack-distance ``kernel``; any registered policy kernel (``clock``,
    ``2q``, ``lecar-tinylfu``) instead replays that policy's pool
    simulator per grid size — same six-segment fit, non-LRU fetch
    counts.  A non-LRU policy has no stack property, hence no mergeable
    shard summaries, so it cannot be combined with ``shards > 1``.
    """

    b_sml: int = B_SML_DEFAULT
    segments: int = DEFAULT_SEGMENTS
    grid_rule: str = "paper"
    graefe_points: int = 20
    fit_method: str = "optimal"
    b_range: Optional[Tuple[int, int]] = None
    collect_baseline_stats: bool = True
    kernel: str = DEFAULT_KERNEL
    shards: int = 1
    shard_workers: int = 1
    policy: str = "lru"
    #: The paper's step heuristic (2*sqrt(range)) yields ~sqrt(range)/2
    #: samples — about 78 at the paper's synthetic table size (T = 25,000)
    #: but only ~11 on a 10x-scaled-down table, which starves the
    #: six-segment fit of the resolution needed to place knots at the FPF
    #: curve's knee.  When the rule produces fewer than this many samples,
    #: the grid is refined to equal spacing with this count — a no-op at
    #: paper scale, where the heuristic already exceeds it.
    min_grid_points: int = 64

    def __post_init__(self) -> None:
        if self.b_sml < 1:
            raise EstimationError(f"b_sml must be >= 1, got {self.b_sml}")
        if self.segments < 1:
            raise EstimationError(
                f"segments must be >= 1, got {self.segments}"
            )
        if self.grid_rule not in _GRID_RULES:
            raise EstimationError(
                f"grid_rule must be one of {_GRID_RULES}, got "
                f"{self.grid_rule!r}"
            )
        if self.graefe_points < 2:
            raise EstimationError(
                f"graefe_points must be >= 2, got {self.graefe_points}"
            )
        if self.min_grid_points < 2:
            raise EstimationError(
                f"min_grid_points must be >= 2, got {self.min_grid_points}"
            )
        if self.b_range is not None:
            lo, hi = self.b_range
            if not 1 <= lo <= hi:
                raise EstimationError(
                    f"b_range must satisfy 1 <= lo <= hi, got {self.b_range}"
                )
        if self.kernel not in available_kernels():
            raise EstimationError(
                f"unknown stack-distance kernel {self.kernel!r}; "
                f"available: {', '.join(available_kernels())}"
            )
        if self.shards < 1:
            raise EstimationError(
                f"shards must be >= 1, got {self.shards}"
            )
        policies = ("lru",) + available_policy_kernels()
        if self.policy not in policies:
            raise EstimationError(
                f"unknown replacement policy {self.policy!r}; "
                f"available: {', '.join(policies)}"
            )
        if self.policy != "lru" and self.shards > 1:
            raise EstimationError(
                f"policy {self.policy!r} has no stack property and "
                f"cannot produce mergeable shard summaries; run the "
                f"pass unsharded (shards=1)"
            )


def buffer_grid(
    b_min: int,
    b_max: int,
    rule: str = "paper",
    graefe_points: int = 20,
    min_points: int = 2,
) -> List[int]:
    """The modeled buffer sizes ``B_1..B_k`` (Section 4.1).

    Endpoints are always included; interior points follow the chosen rule.
    ``min_points`` refines under-sampled grids on small (scaled) tables —
    see :attr:`LRUFitConfig.min_grid_points`.
    """
    if not 1 <= b_min <= b_max:
        raise EstimationError(
            f"need 1 <= b_min <= b_max, got [{b_min}, {b_max}]"
        )
    if b_min == b_max:
        return [b_min]
    if rule == "paper":
        step = max(1, round(2.0 * math.sqrt(b_max - b_min)))
        grid = list(range(b_min, b_max, step))
        grid.append(b_max)
    elif rule == "graefe":
        k = graefe_points
        ratio = b_max / b_min
        raw = [b_min * ratio ** (i / k) for i in range(k + 1)]
        grid = sorted({max(b_min, min(b_max, round(v))) for v in raw})
    else:
        raise EstimationError(f"unknown grid rule {rule!r}")
    if len(grid) < min_points:
        span = b_max - b_min
        refined = {
            b_min + round(span * i / (min_points - 1))
            for i in range(min_points)
        }
        grid = sorted(refined)
    return grid


#: Chunk size used when a checkpointed ``run`` streams the index trace.
CHECKPOINT_CHUNK_REFS = 8_192


class LRUFit:
    """Subprogram LRU-Fit: one statistics pass over the index entries."""

    def __init__(self, config: Optional[LRUFitConfig] = None) -> None:
        self.config = config or LRUFitConfig()

    def _provider_name(self) -> str:
        """The fetch-curve provider this pass runs on.

        For the LRU policy that is the configured stack-distance kernel;
        for any other policy it is the policy kernel itself (``kernel``
        selects among interchangeable LRU passes and has no non-LRU
        counterpart — a simulated policy has exactly one implementation).
        """
        if self.config.policy != "lru":
            return self.config.policy
        return self.config.kernel

    def run(
        self,
        index: Index,
        checkpoint=None,
        resume: bool = False,
    ) -> IndexStatistics:
        """Scan ``index``'s entries and produce its catalog record.

        With ``checkpoint`` (a directory path or
        :class:`~repro.resilience.checkpoint.Checkpointer`), the scan is
        streamed in chunks with periodic atomic snapshots, and
        ``resume=True`` continues an interrupted pass — see
        :meth:`run_streaming`.
        """
        with obs_span(
            "lru-fit",
            index=index.name,
            kernel=self._provider_name(),
        ):
            with obs_span("trace-generation", index=index.name) as sp:
                trace = index.page_sequence()
                sp.set_attribute("references", len(trace))
            table_pages = index.table.page_count
            distinct_keys = index.distinct_key_count()
            dc_count = (
                dc_cluster_count(index)
                if self.config.collect_baseline_stats
                else None
            )
            if self.config.shards > 1:
                curve = self._sharded_pass(
                    trace, index.name, checkpoint, resume
                )
                return self._statistics_from_curve(
                    curve, table_pages, distinct_keys, index.name, dc_count
                )
            if checkpoint is not None:
                chunks = (
                    trace[i:i + CHECKPOINT_CHUNK_REFS]
                    for i in range(0, len(trace), CHECKPOINT_CHUNK_REFS)
                )
                return self.run_streaming(
                    chunks,
                    table_pages=table_pages,
                    distinct_keys=distinct_keys,
                    index_name=index.name,
                    dc_count=dc_count,
                    checkpoint=checkpoint,
                    resume=resume,
                )
            return self.run_on_trace(
                trace,
                table_pages=table_pages,
                distinct_keys=distinct_keys,
                index_name=index.name,
                dc_count=dc_count,
            )

    def run_on_trace(
        self,
        trace: Iterable[int],
        table_pages: int,
        distinct_keys: int,
        index_name: str = "<anonymous>",
        dc_count: Optional[int] = None,
    ) -> IndexStatistics:
        """Statistics pass on a pre-extracted page-reference trace.

        ``trace`` may be any iterable of page numbers — a generator is
        consumed through the configured kernel's streaming interface, so
        the full trace is never materialized here.  A sharded config
        (``shards > 1``) needs a range-addressable trace (a sequence or
        shard source); for one-shot chunk iterators use
        :meth:`run_streaming` with ``total_refs``.
        """
        if self.config.shards > 1:
            if not hasattr(trace, "__len__"):
                raise EstimationError(
                    "a sharded pass needs a sized, range-addressable "
                    "trace; use run_streaming(..., total_refs=...) for "
                    "one-shot iterators"
                )
            curve = self._sharded_pass(trace, index_name, None, False)
            return self._statistics_from_curve(
                curve, table_pages, distinct_keys, index_name, dc_count
            )
        kernel = resolve_kernel(self._provider_name())
        try:
            with obs_span(
                "kernel-pass", kernel=kernel.name, index=index_name
            ):
                curve = kernel.analyze(trace)
        except TraceError:
            raise EstimationError("cannot fit an empty index trace") from None
        return self._statistics_from_curve(
            curve, table_pages, distinct_keys, index_name, dc_count
        )

    def _sharded_pass(self, source, index_name, checkpoint, resume):
        """Merged fetch curve of a sharded pass over ``source``."""
        config = self.config
        try:
            with obs_span(
                "kernel-pass",
                kernel=config.kernel,
                index=index_name,
                shards=config.shards,
            ):
                return sharded_fetch_curve(
                    source,
                    config.shards,
                    workers=config.shard_workers,
                    kernel=config.kernel,
                    checkpoint=checkpoint,
                    resume=resume,
                )
        except TraceError:
            raise EstimationError("cannot fit an empty index trace") from None

    def run_streaming(
        self,
        chunks: Iterable[Sequence[int]],
        table_pages: int,
        distinct_keys: int,
        index_name: str = "<anonymous>",
        dc_count: Optional[int] = None,
        checkpoint=None,
        resume: bool = False,
        total_refs: Optional[int] = None,
    ) -> IndexStatistics:
        """Statistics pass over a trace delivered in chunks.

        Equivalent to concatenating ``chunks`` and calling
        :meth:`run_on_trace`, without ever holding more than one chunk in
        memory (beyond the kernel's own working state).

        ``checkpoint`` (a directory path or
        :class:`~repro.resilience.checkpoint.Checkpointer`) enables
        periodic atomic snapshots of the kernel state; with
        ``resume=True`` an existing checkpoint is loaded, the
        already-consumed trace prefix is skipped (and verified against
        the checkpointed digest), and the pass continues from where it
        stopped.  A resumed pass produces statistics byte-identical to
        an uninterrupted one, because the snapshot captures the complete
        kernel state and the remaining references are identical.  The
        checkpoint file is removed once the pass completes.

        A sharded config (``shards > 1``) additionally needs
        ``total_refs`` — the exact total reference count — so the chunk
        stream can be cut into contiguous shards up front; shard
        boundaries then double as the checkpoint cut points.
        """
        if checkpoint is None and resume:
            raise EstimationError(
                "resume=True requires a checkpoint directory"
            )
        if self.config.shards > 1:
            if total_refs is None:
                raise EstimationError(
                    "a sharded streaming pass needs total_refs to cut "
                    "shard boundaries up front"
                )
            config = self.config
            try:
                with obs_span(
                    "kernel-pass",
                    kernel=config.kernel,
                    index=index_name,
                    streaming=True,
                    shards=config.shards,
                ):
                    curve = sharded_chunked_curve(
                        chunks,
                        total_refs,
                        config.shards,
                        workers=config.shard_workers,
                        kernel=config.kernel,
                        checkpoint=checkpoint,
                        resume=resume,
                    )
            except TraceError:
                raise EstimationError(
                    "cannot fit an empty index trace"
                ) from None
            return self._statistics_from_curve(
                curve, table_pages, distinct_keys, index_name, dc_count
            )
        curve = self.curve_streaming(
            chunks,
            index_name=index_name,
            checkpoint=checkpoint,
            resume=resume,
        )
        return self._statistics_from_curve(
            curve, table_pages, distinct_keys, index_name, dc_count
        )

    def curve_streaming(
        self,
        chunks: Iterable[Sequence[int]],
        index_name: str = "<anonymous>",
        checkpoint=None,
        resume: bool = False,
    ):
        """The raw fetch curve of an (optionally checkpointed) chunked
        pass, without the segment fit.

        This is the kernel half of :meth:`run_streaming`, exposed for
        consumers that post-process the curve before fitting — the
        online refresh loop blends it with the previously served curve
        (decayed fit) and only then calls
        :meth:`statistics_from_curve`.  Checkpoint/resume semantics are
        identical to :meth:`run_streaming` (byte-identical resumed
        curves, checkpoint cleared on completion).
        """
        if checkpoint is None and resume:
            raise EstimationError(
                "resume=True requires a checkpoint directory"
            )
        with obs_span(
            "kernel-pass",
            kernel=self._provider_name(),
            index=index_name,
            streaming=True,
        ):
            if checkpoint is None:
                stream = resolve_kernel(self._provider_name()).stream()
                for chunk in chunks:
                    stream.feed(chunk)
            else:
                stream = self._feed_checkpointed(
                    chunks, checkpoint, resume
                )
            try:
                return stream.finish()
            except TraceError:
                raise EstimationError(
                    "cannot fit an empty index trace"
                ) from None

    def statistics_from_curve(
        self,
        curve,
        table_pages: int,
        distinct_keys: int,
        index_name: str = "<anonymous>",
        dc_count: Optional[int] = None,
    ) -> IndexStatistics:
        """Fit a catalog record from an already-computed fetch curve.

        ``curve`` is anything exposing ``accesses`` and ``fetches(b)``
        (a kernel's :class:`~repro.buffer.stack.FetchCurve`, a policy
        kernel's simulated curve, or the refresh loop's decayed blend).
        """
        return self._statistics_from_curve(
            curve, table_pages, distinct_keys, index_name, dc_count
        )

    def _feed_checkpointed(self, chunks, checkpoint, resume):
        """Feed ``chunks`` under checkpoint protection; return the fed
        stream (restored from the latest snapshot when resuming)."""
        import hashlib

        from repro.errors import CheckpointError
        from repro.resilience.checkpoint import (
            hash_pages,
            resolve_checkpointer,
        )

        checkpointer = resolve_checkpointer(checkpoint)
        # The checkpoint records the provider (policy kernel for non-LRU
        # passes) so a resume with a different policy fails loudly.
        kernel_name = self._provider_name()
        stream = None
        skip = 0
        expected_digest = None
        hasher = hashlib.sha256()
        if resume and checkpointer.exists():
            state = checkpointer.load()
            if state.kernel != kernel_name:
                raise CheckpointError(
                    f"checkpoint was taken with kernel "
                    f"{state.kernel!r} but this pass uses "
                    f"{kernel_name!r}; rerun without resume or match "
                    f"the kernel"
                )
            stream = state.stream
            skip = state.position
            expected_digest = state.trace_digest
        if stream is None:
            stream = resolve_kernel(kernel_name).stream()
        position = skip
        for chunk in chunks:
            if not isinstance(chunk, (list, tuple)):
                chunk = list(chunk)
            if skip:
                if len(chunk) <= skip:
                    hash_pages(hasher, chunk)
                    skip -= len(chunk)
                    if not skip:
                        self._verify_prefix(hasher, expected_digest)
                    continue
                head, chunk = chunk[:skip], chunk[skip:]
                hash_pages(hasher, head)
                skip = 0
                self._verify_prefix(hasher, expected_digest)
            hash_pages(hasher, chunk)
            stream.feed(chunk)
            position += len(chunk)
            if checkpointer.due(position):
                checkpointer.save(
                    stream, position, hasher.hexdigest(), kernel_name
                )
        if skip:
            raise CheckpointError(
                f"trace ended {skip} references before the checkpoint "
                f"position; the resumed trace does not match the "
                f"checkpointed one"
            )
        checkpointer.clear()
        return stream

    @staticmethod
    def _verify_prefix(hasher, expected_digest) -> None:
        from repro.errors import CheckpointError

        if (
            expected_digest is not None
            and hasher.hexdigest() != expected_digest
        ):
            raise CheckpointError(
                "resumed trace prefix does not digest to the "
                "checkpointed value; the trace diverged from the "
                "interrupted run"
            )

    def _statistics_from_curve(
        self,
        curve,
        table_pages: int,
        distinct_keys: int,
        index_name: str,
        dc_count: Optional[int],
    ) -> IndexStatistics:
        """Grid sampling, segment fitting, and catalog-record assembly."""
        with obs_span("segment-fit", index=index_name):
            return self._fit_statistics(
                curve, table_pages, distinct_keys, index_name, dc_count
            )

    def _fit_statistics(
        self,
        curve,
        table_pages: int,
        distinct_keys: int,
        index_name: str,
        dc_count: Optional[int],
    ) -> IndexStatistics:
        records = curve.accesses

        if self.config.b_range is not None:
            b_min, b_max = self.config.b_range
            b_min = min(b_min, table_pages)
            b_max = min(b_max, table_pages)
        else:
            b_min = min_modeled_buffer(table_pages, self.config.b_sml)
            b_max = table_pages
        b_min = min(b_min, b_max)

        grid = buffer_grid(
            b_min,
            b_max,
            self.config.grid_rule,
            self.config.graefe_points,
            min_points=self.config.min_grid_points,
        )
        fpf_points = [(float(b), float(curve.fetches(b))) for b in grid]

        f_min = curve.fetches(b_min)
        if records > table_pages:
            clustering = (records - f_min) / (records - table_pages)
            clustering = min(1.0, max(0.0, clustering))
        else:
            clustering = 1.0

        if len(fpf_points) == 1:
            fitted = PiecewiseLinear((fpf_points[0],))
        else:
            segments = min(self.config.segments, len(fpf_points) - 1)
            fitted = fit_piecewise_linear(
                fpf_points, segments, method=self.config.fit_method
            )

        fetches_b1 = fetches_b3 = None
        if self.config.collect_baseline_stats:
            fetches_b1 = curve.fetches(1)
            fetches_b3 = curve.fetches(3)

        return IndexStatistics(
            index_name=index_name,
            table_pages=table_pages,
            table_records=records,
            distinct_keys=distinct_keys,
            clustering_factor=clustering,
            fpf_curve=fitted,
            b_min=b_min,
            b_max=b_max,
            f_min=f_min,
            dc_cluster_count=dc_count,
            fetches_b1=fetches_b1,
            fetches_b3=fetches_b3,
            policy=self.config.policy,
        )


class EstIO:
    """Subprogram Est-IO: the query-compilation-time estimate (Section 4.2)."""

    def __init__(
        self,
        stats: IndexStatistics,
        phi_rule: str = "corrected",
        apply_correction: bool = True,
        apply_sargable: bool = True,
        clamp: bool = True,
    ) -> None:
        if phi_rule not in _PHI_RULES:
            raise EstimationError(
                f"phi_rule must be one of {_PHI_RULES}, got {phi_rule!r}"
            )
        self.stats = stats
        self.phi_rule = phi_rule
        self.apply_correction = apply_correction
        self.apply_sargable = apply_sargable
        self.clamp = clamp

    def full_scan_fetches(self, buffer_pages: int) -> float:
        """``PF_B``: interpolated/extrapolated full-scan fetches at B.

        Extrapolation below B_min follows the first segment's slope and
        above B_max the last segment's; physically F is always within
        [T, N] for a full scan, so the result is clamped to those bounds.
        """
        if buffer_pages < 1:
            raise EstimationError(
                f"buffer_pages must be >= 1, got {buffer_pages}"
            )
        raw = self.stats.fpf_curve.evaluate(float(buffer_pages))
        return min(
            float(self.stats.table_records),
            max(float(self.stats.table_pages), raw),
        )

    def _phi(self, buffer_pages: int) -> float:
        ratio = buffer_pages / self.stats.table_pages
        if self.phi_rule == "corrected":
            return min(1.0, ratio)
        return max(1.0, ratio)

    def _correction_weight(self, phi: float, sigma: float) -> float:
        """Equation 1's weight ``nu * min(1, phi/(6 sigma))``.

        The smooth variant overrides only this hook; every other step of
        the estimate is shared.
        """
        if phi >= 3.0 * sigma:
            return min(1.0, phi / (6.0 * sigma))
        return 0.0

    def estimate(
        self, selectivity: ScanSelectivity, buffer_pages: int
    ) -> float:
        """Steps 4-7 of the complete algorithm (Section 4.3)."""
        if selectivity.range_selectivity == 0.0:
            return 0.0
        pf_b = self.full_scan_fetches(buffer_pages)
        return self._estimate_from_pf(selectivity, buffer_pages, pf_b)

    def estimate_many(
        self, pairs: Iterable[Tuple[ScanSelectivity, int]]
    ) -> List[float]:
        """Batched estimates; ``PF_B`` is interpolated once per distinct B.

        A serving batch typically holds many scans at few buffer sizes
        (the experiment grid is the extreme case: every scan at every grid
        point), so hoisting the curve walk amortizes the dominant
        per-call cost.  Results are bit-identical to the per-call path.
        """
        pf_cache: dict = {}
        results: List[float] = []
        for selectivity, buffer_pages in pairs:
            if selectivity.range_selectivity == 0.0:
                results.append(0.0)
                continue
            pf_b = pf_cache.get(buffer_pages)
            if pf_b is None:
                pf_b = self.full_scan_fetches(buffer_pages)
                pf_cache[buffer_pages] = pf_b
            results.append(
                self._estimate_from_pf(selectivity, buffer_pages, pf_b)
            )
        return results

    def _estimate_from_pf(
        self,
        selectivity: ScanSelectivity,
        buffer_pages: int,
        pf_b: float,
    ) -> float:
        """Steps 5-7 given an already-interpolated full-scan fetch count."""
        sigma = selectivity.range_selectivity
        s = selectivity.sargable_selectivity
        stats = self.stats
        estimate = sigma * pf_b

        # Step 6: heuristic correction for small sigma against a weakly
        # clustered index with relatively plentiful buffer (Equation 1).
        if self.apply_correction:
            phi = self._phi(buffer_pages)
            weight = self._correction_weight(phi, sigma)
            if weight > 0.0:
                t = stats.table_pages
                n = stats.table_records
                correction = (
                    weight
                    * (1.0 - stats.clustering_factor)
                    * cardenas(t, sigma * n)
                )
                estimate += correction

        # Step 7: index-sargable predicates via the urn model.
        if self.apply_sargable and s < 1.0:
            t = stats.table_pages
            n = stats.table_records
            c = stats.clustering_factor
            referenced = c * sigma * t + (1.0 - c) * min(float(t), sigma * n)
            referenced = max(referenced, 1.0)
            qualifying = s * sigma * n
            reduction = 1.0 - (1.0 - 1.0 / referenced) ** qualifying
            estimate *= reduction

        if self.clamp:
            qualifying_records = s * sigma * stats.table_records
            upper = max(1.0, qualifying_records)
            estimate = min(estimate, upper)
            estimate = max(estimate, 0.0)
        return estimate


class EPFISEstimator(PageFetchEstimator):
    """The complete algorithm behind the standard estimator interface."""

    name = "EPFIS"

    def __init__(
        self,
        stats: IndexStatistics,
        phi_rule: str = "corrected",
        apply_correction: bool = True,
        apply_sargable: bool = True,
        clamp: bool = True,
    ) -> None:
        self._est_io = EstIO(
            stats,
            phi_rule=phi_rule,
            apply_correction=apply_correction,
            apply_sargable=apply_sargable,
            clamp=clamp,
        )

    @classmethod
    def from_index(
        cls,
        index: Index,
        config: Optional[LRUFitConfig] = None,
        **est_io_options,
    ) -> "EPFISEstimator":
        """Run LRU-Fit on ``index`` and wrap the result."""
        stats = LRUFit(config).run(index)
        return cls(stats, **est_io_options)

    @classmethod
    def from_statistics(
        cls, stats: IndexStatistics, **est_io_options
    ) -> "EPFISEstimator":
        """Build from a catalog record (no data access at all)."""
        return cls(stats, **est_io_options)

    @property
    def statistics(self) -> IndexStatistics:
        """The LRU-Fit catalog record backing this estimator."""
        return self._est_io.stats

    @property
    def est_io(self) -> EstIO:
        """The underlying Est-IO instance (for ablation knobs)."""
        return self._est_io

    def estimate(
        self, selectivity: ScanSelectivity, buffer_pages: int
    ) -> float:
        return self._est_io.estimate(
            selectivity, self._check_buffer(buffer_pages)
        )

    def estimate_many(
        self, pairs: Iterable[Tuple[ScanSelectivity, int]]
    ) -> List[float]:
        return self._est_io.estimate_many(
            [(sel, self._check_buffer(b)) for sel, b in pairs]
        )
