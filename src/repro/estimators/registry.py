"""Name-based registry of page-fetch estimators.

The serving-side twin of :mod:`repro.buffer.kernels.registry`: where that
registry lets the statistics pass name its stack-distance kernel, this one
lets everything downstream of the catalog — the estimation engine, the
experiment runner, the CLI — name an estimator without importing its
module.  A factory takes the catalog record
(:class:`~repro.catalog.catalog.IndexStatistics`) plus optional
estimator-specific options and returns a bound
:class:`~repro.estimators.base.PageFetchEstimator`, mirroring the paper's
split: statistics are collected once, estimators are (re)constructed from
the record alone at query-compilation time.

Names are case-insensitive; both the registry key (``"epfis"``) and the
estimator's display name (``"EPFIS"``) resolve.  Built-ins self-register
when :mod:`repro.estimators` is imported.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple, Union

from repro.catalog.catalog import IndexStatistics
from repro.errors import EstimationError
from repro.estimators.base import PageFetchEstimator
from repro.estimators.dc import DCEstimator
from repro.estimators.epfis import EPFISEstimator
from repro.estimators.epfis_smooth import SmoothEPFISEstimator
from repro.estimators.mackert_lohman import MackertLohmanEstimator
from repro.estimators.naive import (
    PerfectlyClusteredEstimator,
    PerfectlyUnclusteredEstimator,
)
from repro.estimators.ot import OTEstimator
from repro.estimators.sd import SDEstimator

#: Factory signature: catalog record (+ options) -> bound estimator.
EstimatorFactory = Callable[..., PageFetchEstimator]

#: The five algorithms every error figure compares, in figure order.
PAPER_ESTIMATOR_NAMES: Tuple[str, ...] = ("epfis", "ml", "dc", "sd", "ot")

_FACTORIES: Dict[str, EstimatorFactory] = {}
#: Display-name ("EPFIS") -> registry-key ("epfis") aliases.
_ALIASES: Dict[str, str] = {}


def _normalize(name: str) -> str:
    if not name or not isinstance(name, str):
        raise EstimationError(
            f"estimator name must be a non-empty string, got {name!r}"
        )
    return name.lower()


def register_estimator(
    name: str,
    factory: EstimatorFactory,
    replace: bool = False,
) -> None:
    """Register ``factory`` under ``name`` (stored lowercase).

    Registering an already-taken name raises
    :class:`~repro.errors.EstimationError` unless ``replace=True`` — an
    experiment may deliberately shadow a built-in variant, but should
    never do so by accident.
    """
    key = _normalize(name)
    if key in _FACTORIES and not replace:
        raise EstimationError(
            f"estimator {name!r} is already registered; pass replace=True "
            f"to override"
        )
    _FACTORIES[key] = factory


def available_estimators() -> Tuple[str, ...]:
    """Sorted registry keys of every registered estimator."""
    return tuple(sorted(_FACTORIES))


def get_estimator(
    name: str, stats: IndexStatistics, **options
) -> PageFetchEstimator:
    """Bind the estimator registered under ``name`` to a catalog record.

    ``options`` are forwarded to the factory (e.g.
    ``get_estimator("epfis", stats, phi_rule="literal-max")``).
    """
    key = _normalize(name)
    key = _ALIASES.get(key, key)
    try:
        factory = _FACTORIES[key]
    except KeyError:
        raise EstimationError(
            f"unknown estimator {name!r}; available: "
            f"{', '.join(available_estimators())}"
        ) from None
    return factory(stats, **options)


def resolve_estimator(
    estimator: Union[str, PageFetchEstimator],
    stats: IndexStatistics,
    **options,
) -> PageFetchEstimator:
    """Coerce an estimator spec (name or instance) to a bound instance.

    Instances pass through unchanged so callers can hand a pre-configured
    estimator down a call chain; names are bound to ``stats`` via
    :func:`get_estimator`.
    """
    if isinstance(estimator, PageFetchEstimator):
        return estimator
    return get_estimator(estimator, stats, **options)


def _register_builtins() -> None:
    builtins: Tuple[Tuple[str, EstimatorFactory, str], ...] = (
        ("epfis", EPFISEstimator.from_statistics, EPFISEstimator.name),
        (
            "epfis-smooth",
            SmoothEPFISEstimator.from_statistics,
            SmoothEPFISEstimator.name,
        ),
        ("ml", MackertLohmanEstimator.from_statistics,
         MackertLohmanEstimator.name),
        ("dc", DCEstimator.from_statistics, DCEstimator.name),
        ("sd", SDEstimator.from_statistics, SDEstimator.name),
        ("ot", OTEstimator.from_statistics, OTEstimator.name),
        # The "very first attempts" naive pair (Section 3 lead-in).
        ("clustered", PerfectlyClusteredEstimator.from_statistics,
         PerfectlyClusteredEstimator.name),
        ("unclustered", PerfectlyUnclusteredEstimator.from_statistics,
         PerfectlyUnclusteredEstimator.name),
    )
    for key, factory, display in builtins:
        register_estimator(key, factory)
        alias = _normalize(display)
        if alias != key:
            _ALIASES[alias] = key


_register_builtins()
