"""The evaluation buffer grid (Section 5).

"We computed the errors ... for buffer sizes in increments of 5% of the
table size in pages (T).  The smallest buffer size checked was set to
max(300, 0.05T), and the largest buffer size checked was 0.9T."

The hard floor of 300 pages only makes sense at the paper's table sizes;
for scaled-down tables (where 300 would exceed 0.9T and empty the grid) the
floor adapts to one grid step, preserving the grid's *shape* — this is the
scaled analogue documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ExperimentError

PAPER_FLOOR = 300
STEP_FRACTION = 0.05
MAX_FRACTION = 0.9


@dataclass(frozen=True)
class BufferGrid:
    """Buffer sizes to evaluate, with their table-size percentages."""

    table_pages: int
    sizes: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ExperimentError("buffer grid must contain at least one size")
        if list(self.sizes) != sorted(set(self.sizes)):
            raise ExperimentError(
                f"buffer grid must be strictly increasing, got {self.sizes}"
            )

    def percents(self) -> List[float]:
        """Each size as a percentage of T (the figures' X axis)."""
        return [100.0 * b / self.table_pages for b in self.sizes]

    def __iter__(self):
        return iter(self.sizes)

    def __len__(self) -> int:
        return len(self.sizes)


def evaluation_buffer_grid(
    table_pages: int,
    floor: int = PAPER_FLOOR,
    step_fraction: float = STEP_FRACTION,
    max_fraction: float = MAX_FRACTION,
) -> BufferGrid:
    """Build the Section 5 grid for a table of ``table_pages`` pages."""
    if table_pages < 2:
        raise ExperimentError(
            f"table_pages must be >= 2 to build a grid, got {table_pages}"
        )
    if not 0 < step_fraction <= max_fraction <= 1.0:
        raise ExperimentError(
            f"need 0 < step_fraction <= max_fraction <= 1, got "
            f"step={step_fraction}, max={max_fraction}"
        )
    step = step_fraction * table_pages
    smallest = max(float(floor), step)
    largest = max_fraction * table_pages
    if smallest > largest:
        # Scaled-down table: the paper floor exceeds the whole range; fall
        # back to one grid step so the grid covers the same fractions.
        smallest = step

    sizes: List[int] = []
    b = smallest
    while b <= largest + 1e-9:
        size = max(1, round(b))
        if not sizes or size > sizes[-1]:
            sizes.append(size)
        b += step
    if not sizes:
        sizes = [max(1, round(largest))]
    return BufferGrid(table_pages=table_pages, sizes=tuple(sizes))
