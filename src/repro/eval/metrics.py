"""The paper's error metric (Section 5).

"For any scan i, let the estimate obtained by the algorithm be denoted by
e_i.  Let the actual number of pages fetched be denoted by a_i.  Then, the
error metric is sum(e_i - a_i) / sum(a_i)."

The metric is *signed* (aggregate over- vs under-estimation) and normalized
by total actual fetches, so small scans' large relative-but-small-absolute
errors do not dominate — the rationale the paper gives for not averaging
per-scan relative errors.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from repro.errors import ExperimentError


def aggregate_relative_error(
    estimates: Sequence[float], actuals: Sequence[float]
) -> float:
    """``sum(e_i - a_i) / sum(a_i)`` as a fraction (0.1 == 10%)."""
    if len(estimates) != len(actuals):
        raise ExperimentError(
            f"estimate/actual length mismatch: {len(estimates)} vs "
            f"{len(actuals)}"
        )
    if not estimates:
        raise ExperimentError("error metric needs at least one scan")
    total_actual = float(sum(actuals))
    if total_actual <= 0:
        raise ExperimentError(
            "total actual fetches is zero; the metric is undefined"
        )
    total_diff = float(sum(e - a for e, a in zip(estimates, actuals)))
    return total_diff / total_actual


def max_absolute_percent_error(errors: Iterable[float]) -> float:
    """The worst |error| over a set of metric values, in percent.

    This is how the paper summarizes each algorithm across figures
    ("The maximum errors for the other algorithms are as follows: ...").
    """
    values = [abs(e) for e in errors]
    if not values:
        raise ExperimentError("no error values to summarize")
    return 100.0 * max(values)


def percent(fraction: float, digits: int = 1) -> str:
    """Format a fraction as a signed percentage string."""
    return f"{100.0 * fraction:+.{digits}f}%"


def signed_errors_to_percent(
    errors: Sequence[Tuple[int, float]]
) -> Sequence[Tuple[int, float]]:
    """Convert ``(buffer, fraction)`` pairs to ``(buffer, percent)``."""
    return [(b, 100.0 * e) for b, e in errors]
