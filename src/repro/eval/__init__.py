"""Experiment harness reproducing the paper's evaluation (Section 5).

* exact ground truth for any scan at any buffer size,
* the paper's normalized aggregate error metric,
* the paper's evaluation buffer grid (5% steps of T),
* an experiment runner producing error-vs-buffer-size curves per estimator,
* one entry point per paper figure/table (see :mod:`repro.eval.figures`),
* the LRU-drift policy ablation (see :mod:`repro.eval.ablation`),
* plain-text table and chart rendering for bench output.
"""

from repro.eval.ablation import (
    DEFAULT_ABLATION_FAMILIES,
    PolicyAblationResult,
    PolicyDriftCell,
    run_policy_ablation,
)
from repro.eval.buffer_grid import BufferGrid, evaluation_buffer_grid
from repro.eval.experiment import (
    ErrorBehaviorResult,
    EstimatorErrorCurve,
    resolve_estimators,
    run_error_behavior,
)
from repro.eval.spec import ExperimentSpec, run_experiment_spec
from repro.eval.export import (
    load_result_json,
    result_to_csv,
    result_to_dict,
    save_result_csv,
    save_result_json,
)
from repro.eval.ground_truth import ScanTraceExtractor
from repro.eval.metrics import (
    aggregate_relative_error,
    max_absolute_percent_error,
    percent,
)
from repro.eval.report import ascii_chart, format_table
from repro.eval.scatter import ScatterSummary, spearman, summarize_scatter

__all__ = [
    "BufferGrid",
    "DEFAULT_ABLATION_FAMILIES",
    "ErrorBehaviorResult",
    "EstimatorErrorCurve",
    "ExperimentSpec",
    "PolicyAblationResult",
    "PolicyDriftCell",
    "ScanTraceExtractor",
    "ScatterSummary",
    "aggregate_relative_error",
    "ascii_chart",
    "evaluation_buffer_grid",
    "format_table",
    "load_result_json",
    "max_absolute_percent_error",
    "percent",
    "resolve_estimators",
    "result_to_csv",
    "result_to_dict",
    "run_error_behavior",
    "run_experiment_spec",
    "run_policy_ablation",
    "save_result_csv",
    "save_result_json",
    "spearman",
    "summarize_scatter",
]
