"""The LRU-drift policy ablation: how far does EPFIS's LRU model drift?

EPFIS fits and estimates against an LRU fetch curve (Section 2's
modeling assumption).  Real buffer pools run CLOCK, 2Q, or learned
mixtures, so the practical question is: *by how much do those policies'
fetch counts differ from the LRU curve the estimator was fit on?*  This
module answers it directly: for every policy kernel and every trace in
the verification corpus (filtered by family), compare the policy's
fetch curve against the exact LRU baseline across the evaluation band
and report the max/mean relative fetch error per (policy, family) cell.

The expected qualitative result (and what EXPERIMENTS.md documents):
CLOCK tracks LRU closely — second-chance is an LRU approximation, so
the paper's model transfers — while 2Q diverges sharply under looping
workloads, where its scan-resistant admission queue refuses exactly the
pages LRU would have kept.

Reuses the deterministic verification corpus
(:mod:`repro.verify.traces`) rather than inventing new workloads: the
drift numbers are then directly comparable with the differential and
golden results computed on the same traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.buffer.kernels import (
    DEFAULT_KERNEL,
    available_policy_kernels,
    get_kernel,
)
from repro.errors import ExperimentError
from repro.obs.tracing import span as obs_span
from repro.verify.traces import corpus_cases

#: Trace families the acceptance-level ablation must cover.
DEFAULT_ABLATION_FAMILIES: Tuple[str, ...] = ("uniform", "zipf", "loop")


@dataclass(frozen=True)
class PolicyDriftCell:
    """Drift of one policy vs the LRU curve over one trace family."""

    policy: str
    family: str
    cases: int
    #: Buffer sizes compared, summed over the family's cases.
    points: int
    #: Worst relative fetch error vs LRU, |F_p - F_lru| / F_lru.
    max_rel_error: float
    #: Mean relative fetch error over every compared point.
    mean_rel_error: float


@dataclass(frozen=True)
class PolicyAblationResult:
    """The full drift table plus provenance."""

    kernel: str
    policies: Tuple[str, ...]
    families: Tuple[str, ...]
    cells: Tuple[PolicyDriftCell, ...]

    def cell(self, policy: str, family: str) -> PolicyDriftCell:
        """One table cell, looked up by coordinates."""
        for c in self.cells:
            if c.policy == policy and c.family == family:
                return c
        raise ExperimentError(
            f"no ablation cell for policy={policy!r}, family={family!r}"
        )

    def render(self) -> str:
        """The drift table as aligned text (the CLI's output)."""
        header = (
            f"{'policy':<16} {'family':<12} {'cases':>5} "
            f"{'points':>6} {'max drift':>10} {'mean drift':>10}"
        )
        lines = [header, "-" * len(header)]
        for c in self.cells:
            lines.append(
                f"{c.policy:<16} {c.family:<12} {c.cases:>5} "
                f"{c.points:>6} {100 * c.max_rel_error:>9.2f}% "
                f"{100 * c.mean_rel_error:>9.2f}%"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready form (for machine-readable experiment output)."""
        return {
            "kernel": self.kernel,
            "policies": list(self.policies),
            "families": list(self.families),
            "cells": [
                {
                    "policy": c.policy,
                    "family": c.family,
                    "cases": c.cases,
                    "points": c.points,
                    "max_rel_error": c.max_rel_error,
                    "mean_rel_error": c.mean_rel_error,
                }
                for c in self.cells
            ],
        }


def run_policy_ablation(
    policies: Optional[Sequence[str]] = None,
    families: Optional[Sequence[str]] = None,
    kernel: str = DEFAULT_KERNEL,
) -> PolicyAblationResult:
    """Compute the per-(policy, family) LRU-drift table.

    ``policies`` defaults to every registered policy kernel;
    ``families`` defaults to :data:`DEFAULT_ABLATION_FAMILIES` (the
    acceptance set: uniform, Zipf, and loop); ``kernel`` names the exact
    stack kernel producing the LRU reference curve.  Comparison points
    are each case's evaluation band (5%..90% of its distinct pages) —
    the same grid every other band statement in this library is made on.
    """
    policy_names = (
        tuple(policies)
        if policies is not None
        else available_policy_kernels()
    )
    unknown = sorted(set(policy_names) - set(available_policy_kernels()))
    if unknown:
        raise ExperimentError(
            f"unknown policy kernels {unknown}; registered: "
            f"{', '.join(available_policy_kernels())}"
        )
    if not policy_names:
        raise ExperimentError("at least one policy is required")
    family_names = (
        tuple(families)
        if families is not None
        else DEFAULT_ABLATION_FAMILIES
    )
    cases = corpus_cases(families=family_names)

    cells: List[PolicyDriftCell] = []
    with obs_span(
        "policy-ablation",
        policies=len(policy_names),
        families=len(family_names),
    ):
        lru = get_kernel(kernel)
        lru_curves = {c.name: lru.analyze(c.pages) for c in cases}
        for policy in policy_names:
            provider = get_kernel(policy)
            errors: Dict[str, List[float]] = {f: [] for f in family_names}
            counted: Dict[str, int] = {f: 0 for f in family_names}
            with obs_span("policy-drift", policy=policy):
                for case in cases:
                    curve = provider.analyze(case.pages)
                    baseline = lru_curves[case.name]
                    counted[case.family] += 1
                    for b in case.band_sizes():
                        want = baseline.fetches(b)
                        if not want:
                            continue
                        got = curve.fetches(b)
                        errors[case.family].append(
                            abs(got - want) / want
                        )
            for family in family_names:
                samples = errors[family]
                if not samples:
                    raise ExperimentError(
                        f"family {family!r} produced no comparison "
                        f"points for policy {policy!r}"
                    )
                cells.append(
                    PolicyDriftCell(
                        policy=policy,
                        family=family,
                        cases=counted[family],
                        points=len(samples),
                        max_rel_error=max(samples),
                        mean_rel_error=sum(samples) / len(samples),
                    )
                )
    return PolicyAblationResult(
        kernel=kernel,
        policies=policy_names,
        families=family_names,
        cells=tuple(cells),
    )
