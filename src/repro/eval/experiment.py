"""The error-behaviour experiment runner (Figures 2-21).

One run takes a dataset's index, a list of estimators, a scan workload, and
a buffer grid; it produces, for every estimator, the error-metric value at
every buffer size — i.e. one curve of the paper's error-behaviour figures.

Ground truth is computed once per scan (a single stack-distance pass serves
every buffer size); estimators are then queried per (scan, buffer size).
The per-scan passes can be fanned across worker processes (``workers``) and
run on any registered stack-distance kernel (``kernel``); parallel runs
reproduce serial results exactly under fixed seeds — see
:func:`repro.eval.ground_truth.ground_truth_tables`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ExperimentError
from repro.estimators.base import PageFetchEstimator
from repro.estimators.epfis import LRUFit, LRUFitConfig
from repro.estimators.registry import resolve_estimator
from repro.eval.buffer_grid import BufferGrid
from repro.eval.ground_truth import ScanTraceExtractor, ground_truth_tables
from repro.eval.metrics import aggregate_relative_error
from repro.obs import instruments
from repro.obs.metrics import global_registry
from repro.obs.tracing import span as obs_span
from repro.storage.index import Index
from repro.workload.scans import ScanSpec


@dataclass(frozen=True)
class EstimatorErrorCurve:
    """One line of an error-behaviour figure."""

    estimator: str
    #: ``(buffer_pages, signed error fraction)`` per grid point.
    points: Tuple[Tuple[int, float], ...]

    def max_abs_error(self) -> float:
        """Worst |error| across the buffer grid (fraction)."""
        return max(abs(e) for _b, e in self.points)

    def as_percent(self) -> List[Tuple[int, float]]:
        """The curve's points with errors in percent."""
        return [(b, 100.0 * e) for b, e in self.points]


@dataclass(frozen=True)
class ErrorBehaviorResult:
    """Everything one figure needs: curves plus provenance."""

    dataset: str
    table_pages: int
    scan_count: int
    buffer_grid: BufferGrid
    curves: Tuple[EstimatorErrorCurve, ...]
    elapsed_seconds: float = field(default=0.0, compare=False)

    def curve(self, estimator: str) -> EstimatorErrorCurve:
        """The curve for one estimator, looked up by name."""
        for c in self.curves:
            if c.estimator == estimator:
                return c
        raise ExperimentError(
            f"no curve for estimator {estimator!r}; have "
            f"{[c.estimator for c in self.curves]}"
        )

    def max_abs_errors(self) -> Dict[str, float]:
        """Worst |error| per estimator, as percent (paper's summaries)."""
        return {
            c.estimator: 100.0 * c.max_abs_error() for c in self.curves
        }


def resolve_estimators(
    index: Index,
    estimators: Sequence[Union[str, PageFetchEstimator]],
    lru_fit_config: Optional[LRUFitConfig] = None,
    checkpoint=None,
    resume: bool = False,
) -> List[PageFetchEstimator]:
    """Coerce a mixed list of estimator names/instances to instances.

    Named estimators are bound through the registry to one shared LRU-Fit
    statistics pass over ``index`` (run only if at least one name appears),
    mirroring the paper's premise that a single statistics pass serves
    every algorithm.  Instances pass through unchanged.

    ``checkpoint``/``resume`` protect that shared statistics pass — the
    experiment's long-scan component — with periodic atomic snapshots
    (see :meth:`~repro.estimators.epfis.LRUFit.run`); a resumed pass
    yields statistics byte-identical to an uninterrupted one.
    """
    stats = None
    resolved: List[PageFetchEstimator] = []
    for estimator in estimators:
        if isinstance(estimator, str) and stats is None:
            config = lru_fit_config or LRUFitConfig(
                collect_baseline_stats=True
            )
            stats = LRUFit(config).run(
                index, checkpoint=checkpoint, resume=resume
            )
        resolved.append(resolve_estimator(estimator, stats))
    return resolved


def run_error_behavior(
    index: Index,
    estimators: Sequence[Union[str, PageFetchEstimator]],
    scans: Sequence[ScanSpec],
    buffer_grid: BufferGrid,
    dataset_name: Optional[str] = None,
    workers: int = 1,
    kernel: Optional[str] = None,
    seed: int = 0,
    lru_fit_config: Optional[LRUFitConfig] = None,
    checkpoint=None,
    resume: bool = False,
) -> ErrorBehaviorResult:
    """Run the experiment and return the per-estimator error curves.

    ``estimators`` may mix instances with registry names ("epfis", "ml",
    ...); names are bound to one shared statistics pass — see
    :func:`resolve_estimators` (``lru_fit_config`` tunes that pass).  This
    is how a declarative :class:`~repro.eval.spec.ExperimentSpec` flows
    through: its estimator names land here unchanged.

    ``workers`` parallelizes the ground-truth LRU simulations across forked
    processes (1 = serial, <= 0 = one per CPU); ``kernel`` selects the
    stack-distance kernel for those simulations (``None`` = exact default);
    ``seed`` feeds the deterministic per-scan kernel seeding.  Results are
    identical across worker counts.  ``checkpoint``/``resume`` protect
    the shared statistics pass against interruption (see
    :func:`resolve_estimators`); they do not change the result.
    """
    if not estimators:
        raise ExperimentError("at least one estimator is required")
    if not scans:
        raise ExperimentError("at least one scan is required")
    started = time.perf_counter()

    resolved = resolve_estimators(
        index, estimators, lru_fit_config,
        checkpoint=checkpoint, resume=resume,
    )
    extractor = ScanTraceExtractor(index)
    buffer_sizes = list(buffer_grid)

    # Ground truth: actuals[s][g] = fetches of scan s at grid point g.
    usable_scans: List[ScanSpec] = list(scans)
    with obs_span(
        "ground-truth",
        scans=len(usable_scans),
        buffer_sizes=len(buffer_sizes),
    ):
        actuals: List[List[int]] = ground_truth_tables(
            extractor,
            usable_scans,
            buffer_sizes,
            workers=workers,
            kernel=kernel,
            seed=seed,
        )
    # Selectivities are a property of the scan workload alone — compute
    # them once, not once per estimator.
    per_scan_selectivities = [scan.selectivity() for scan in usable_scans]
    # actuals transposed: per grid point, every scan's true fetch count.
    actuals_by_grid = [
        [actuals[s][g] for s in range(len(usable_scans))]
        for g in range(len(buffer_sizes))
    ]

    curves: List[EstimatorErrorCurve] = []
    registry = global_registry()
    for estimator in resolved:
        # One batched call per estimator: buffer-independent work (curve
        # interpolation, saturation points) is hoisted inside
        # estimate_grid's fast paths.  Each estimator's Est-IO stage is
        # recorded into the shared engine serving families — latency as
        # integer nanoseconds — and gets its own span; both are no-ops
        # unless an exporter is attached.
        name = estimator.name.lower()
        with obs_span("est-io", estimator=estimator.name):
            started_ns = time.perf_counter_ns()
            estimate_rows = estimator.estimate_grid(
                per_scan_selectivities, buffer_sizes
            )
            elapsed_ns = time.perf_counter_ns() - started_ns
        if registry.enabled:
            instruments.engine_call_latency(registry).labels(
                estimator=name
            ).observe(elapsed_ns)
            instruments.engine_estimates(registry).labels(
                estimator=name
            ).inc(len(per_scan_selectivities) * len(buffer_sizes))
        points: List[Tuple[int, float]] = []
        for g, buffer_pages in enumerate(buffer_sizes):
            error = aggregate_relative_error(
                estimate_rows[g], actuals_by_grid[g]
            )
            points.append((buffer_pages, error))
        curves.append(
            EstimatorErrorCurve(estimator.name, tuple(points))
        )

    return ErrorBehaviorResult(
        dataset=dataset_name or index.name,
        table_pages=index.table.page_count,
        scan_count=len(usable_scans),
        buffer_grid=buffer_grid,
        curves=tuple(curves),
        elapsed_seconds=time.perf_counter() - started,
    )
