"""The error-behaviour experiment runner (Figures 2-21).

One run takes a dataset's index, a list of estimators, a scan workload, and
a buffer grid; it produces, for every estimator, the error-metric value at
every buffer size — i.e. one curve of the paper's error-behaviour figures.

Ground truth is computed once per scan (a single stack-distance pass serves
every buffer size); estimators are then queried per (scan, buffer size).
The per-scan passes can be fanned across worker processes (``workers``) and
run on any registered stack-distance kernel (``kernel``); parallel runs
reproduce serial results exactly under fixed seeds — see
:func:`repro.eval.ground_truth.ground_truth_tables`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.estimators.base import PageFetchEstimator
from repro.eval.buffer_grid import BufferGrid
from repro.eval.ground_truth import ScanTraceExtractor, ground_truth_tables
from repro.eval.metrics import aggregate_relative_error
from repro.storage.index import Index
from repro.workload.scans import ScanSpec


@dataclass(frozen=True)
class EstimatorErrorCurve:
    """One line of an error-behaviour figure."""

    estimator: str
    #: ``(buffer_pages, signed error fraction)`` per grid point.
    points: Tuple[Tuple[int, float], ...]

    def max_abs_error(self) -> float:
        """Worst |error| across the buffer grid (fraction)."""
        return max(abs(e) for _b, e in self.points)

    def as_percent(self) -> List[Tuple[int, float]]:
        """The curve's points with errors in percent."""
        return [(b, 100.0 * e) for b, e in self.points]


@dataclass(frozen=True)
class ErrorBehaviorResult:
    """Everything one figure needs: curves plus provenance."""

    dataset: str
    table_pages: int
    scan_count: int
    buffer_grid: BufferGrid
    curves: Tuple[EstimatorErrorCurve, ...]
    elapsed_seconds: float = field(default=0.0, compare=False)

    def curve(self, estimator: str) -> EstimatorErrorCurve:
        """The curve for one estimator, looked up by name."""
        for c in self.curves:
            if c.estimator == estimator:
                return c
        raise ExperimentError(
            f"no curve for estimator {estimator!r}; have "
            f"{[c.estimator for c in self.curves]}"
        )

    def max_abs_errors(self) -> Dict[str, float]:
        """Worst |error| per estimator, as percent (paper's summaries)."""
        return {
            c.estimator: 100.0 * c.max_abs_error() for c in self.curves
        }


def run_error_behavior(
    index: Index,
    estimators: Sequence[PageFetchEstimator],
    scans: Sequence[ScanSpec],
    buffer_grid: BufferGrid,
    dataset_name: Optional[str] = None,
    workers: int = 1,
    kernel: Optional[str] = None,
    seed: int = 0,
) -> ErrorBehaviorResult:
    """Run the experiment and return the per-estimator error curves.

    ``workers`` parallelizes the ground-truth LRU simulations across forked
    processes (1 = serial, <= 0 = one per CPU); ``kernel`` selects the
    stack-distance kernel for those simulations (``None`` = exact default);
    ``seed`` feeds the deterministic per-scan kernel seeding.  Results are
    identical across worker counts.
    """
    if not estimators:
        raise ExperimentError("at least one estimator is required")
    if not scans:
        raise ExperimentError("at least one scan is required")
    started = time.perf_counter()

    extractor = ScanTraceExtractor(index)
    buffer_sizes = list(buffer_grid)

    # Ground truth: actuals[s][g] = fetches of scan s at grid point g.
    usable_scans: List[ScanSpec] = list(scans)
    actuals: List[List[int]] = ground_truth_tables(
        extractor,
        usable_scans,
        buffer_sizes,
        workers=workers,
        kernel=kernel,
        seed=seed,
    )

    curves: List[EstimatorErrorCurve] = []
    for estimator in estimators:
        # estimates[s] is buffer-independent work hoisted out where the
        # estimator allows it; the interface is per-(scan, B), so just
        # evaluate the grid.
        points: List[Tuple[int, float]] = []
        per_scan_selectivities = [scan.selectivity() for scan in usable_scans]
        for g, buffer_pages in enumerate(buffer_sizes):
            estimates = [
                estimator.estimate(sel, buffer_pages)
                for sel in per_scan_selectivities
            ]
            scan_actuals = [actuals[s][g] for s in range(len(usable_scans))]
            error = aggregate_relative_error(estimates, scan_actuals)
            points.append((buffer_pages, error))
        curves.append(
            EstimatorErrorCurve(estimator.name, tuple(points))
        )

    return ErrorBehaviorResult(
        dataset=dataset_name or index.name,
        table_pages=index.table.page_count,
        scan_count=len(usable_scans),
        buffer_grid=buffer_grid,
        curves=tuple(curves),
        elapsed_seconds=time.perf_counter() - started,
    )
