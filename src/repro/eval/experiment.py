"""The error-behaviour experiment runner (Figures 2-21).

One run takes a dataset's index, a list of estimators, a scan workload, and
a buffer grid; it produces, for every estimator, the error-metric value at
every buffer size — i.e. one curve of the paper's error-behaviour figures.

Ground truth is computed once per scan (a single stack-distance pass serves
every buffer size); estimators are then queried per (scan, buffer size).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.estimators.base import PageFetchEstimator
from repro.eval.buffer_grid import BufferGrid
from repro.eval.ground_truth import ScanTraceExtractor
from repro.eval.metrics import aggregate_relative_error
from repro.storage.index import Index
from repro.workload.scans import ScanSpec


@dataclass(frozen=True)
class EstimatorErrorCurve:
    """One line of an error-behaviour figure."""

    estimator: str
    #: ``(buffer_pages, signed error fraction)`` per grid point.
    points: Tuple[Tuple[int, float], ...]

    def max_abs_error(self) -> float:
        """Worst |error| across the buffer grid (fraction)."""
        return max(abs(e) for _b, e in self.points)

    def as_percent(self) -> List[Tuple[int, float]]:
        """The curve's points with errors in percent."""
        return [(b, 100.0 * e) for b, e in self.points]


@dataclass(frozen=True)
class ErrorBehaviorResult:
    """Everything one figure needs: curves plus provenance."""

    dataset: str
    table_pages: int
    scan_count: int
    buffer_grid: BufferGrid
    curves: Tuple[EstimatorErrorCurve, ...]
    elapsed_seconds: float = field(default=0.0, compare=False)

    def curve(self, estimator: str) -> EstimatorErrorCurve:
        """The curve for one estimator, looked up by name."""
        for c in self.curves:
            if c.estimator == estimator:
                return c
        raise ExperimentError(
            f"no curve for estimator {estimator!r}; have "
            f"{[c.estimator for c in self.curves]}"
        )

    def max_abs_errors(self) -> Dict[str, float]:
        """Worst |error| per estimator, as percent (paper's summaries)."""
        return {
            c.estimator: 100.0 * c.max_abs_error() for c in self.curves
        }


def run_error_behavior(
    index: Index,
    estimators: Sequence[PageFetchEstimator],
    scans: Sequence[ScanSpec],
    buffer_grid: BufferGrid,
    dataset_name: Optional[str] = None,
) -> ErrorBehaviorResult:
    """Run the experiment and return the per-estimator error curves."""
    if not estimators:
        raise ExperimentError("at least one estimator is required")
    if not scans:
        raise ExperimentError("at least one scan is required")
    started = time.perf_counter()

    extractor = ScanTraceExtractor(index)
    buffer_sizes = list(buffer_grid)

    # Ground truth: actuals[s][g] = fetches of scan s at grid point g.
    actuals: List[List[int]] = []
    usable_scans: List[ScanSpec] = []
    for scan in scans:
        curve = extractor.fetch_curve_for(scan)
        if curve is None:
            # A scan whose sargable predicate filtered out every record
            # fetches nothing; it contributes zero to both sums.
            actuals.append([0] * len(buffer_sizes))
        else:
            actuals.append([curve.fetches(b) for b in buffer_sizes])
        usable_scans.append(scan)

    curves: List[EstimatorErrorCurve] = []
    for estimator in estimators:
        # estimates[s] is buffer-independent work hoisted out where the
        # estimator allows it; the interface is per-(scan, B), so just
        # evaluate the grid.
        points: List[Tuple[int, float]] = []
        per_scan_selectivities = [scan.selectivity() for scan in usable_scans]
        for g, buffer_pages in enumerate(buffer_sizes):
            estimates = [
                estimator.estimate(sel, buffer_pages)
                for sel in per_scan_selectivities
            ]
            scan_actuals = [actuals[s][g] for s in range(len(usable_scans))]
            error = aggregate_relative_error(estimates, scan_actuals)
            points.append((buffer_pages, error))
        curves.append(
            EstimatorErrorCurve(estimator.name, tuple(points))
        )

    return ErrorBehaviorResult(
        dataset=dataset_name or index.name,
        table_pages=index.table.page_count,
        scan_count=len(usable_scans),
        buffer_grid=buffer_grid,
        curves=tuple(curves),
        elapsed_seconds=time.perf_counter() - started,
    )
