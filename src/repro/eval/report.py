"""Plain-text rendering for bench output: aligned tables and ASCII charts.

The benches reproduce the paper's tables and figures as text — rows for
tables, simple multi-series line charts for figures — so results are
reviewable straight from ``pytest benchmarks/`` output and the
EXPERIMENTS.md log.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table."""
    if not headers:
        raise ExperimentError("a table needs headers")
    text_rows = [[str(cell) for cell in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise ExperimentError(
                f"row arity {len(row)} != header arity {len(headers)}"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in text_rows)) if text_rows else len(h)
        for i, h in enumerate(headers)
    ]

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append(render_row(["-" * w for w in widths]))
    lines.extend(render_row(r) for r in text_rows)
    return "\n".join(lines)


_SERIES_MARKS = "ox+*#@%&"


def ascii_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 72,
    height: int = 20,
    title: Optional[str] = None,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render multiple (x, y) series on one character grid.

    Each series gets a mark character; a legend maps marks to names.  Meant
    for eyeballing curve *shape* (who is flat, who explodes) in bench logs,
    not for precision reading.
    """
    if not series:
        raise ExperimentError("ascii_chart needs at least one series")
    all_points = [p for pts in series.values() for p in pts]
    if not all_points:
        raise ExperimentError("ascii_chart needs at least one point")
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]

    def plot(x: float, y: float, mark: str) -> None:
        col = round((x - x_min) / (x_max - x_min) * (width - 1))
        row = round((y - y_min) / (y_max - y_min) * (height - 1))
        grid[height - 1 - row][col] = mark

    legend: List[str] = []
    for (name, points), mark in zip(sorted(series.items()), _SERIES_MARKS):
        for x, y in points:
            plot(x, y, mark)
        legend.append(f"{mark}={name}")

    lines: List[str] = []
    if title:
        lines.append(title)
    top = f"{y_max:10.2f} +"
    bottom = f"{y_min:10.2f} +"
    pad = " " * 11 + "|"
    for i, row in enumerate(grid):
        prefix = top if i == 0 else (bottom if i == height - 1 else pad)
        lines.append(prefix + "".join(row))
    axis = " " * 12 + "-" * width
    lines.append(axis)
    footer = f"{' ' * 12}{x_min:<.2f}{' ' * max(1, width - 16)}{x_max:>.2f}"
    lines.append(footer)
    if x_label or y_label:
        lines.append(f"{' ' * 12}x: {x_label}   y: {y_label}")
    lines.append(" " * 12 + "  ".join(legend))
    return "\n".join(lines)
