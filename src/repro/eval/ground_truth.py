"""Exact ground truth for partial index scans.

The actual page-fetch count ``a_i`` of a scan is obtained by LRU-simulating
the scan's own page-reference subsequence from a cold buffer — exactly what
the paper measures against.  Two efficiency tricks keep 200-scan experiment
suites fast in pure Python:

* A partial scan's reference string is a *contiguous slice* of the full
  index-order page sequence (start/stop conditions select a contiguous key
  range, and each key's entries are contiguous), so traces come from O(1)
  slicing of one precomputed array instead of repeated B-tree walks.
* Each scan's trace is analyzed once with the Mattson stack-distance pass
  (:class:`~repro.buffer.stack.FetchCurve`), after which *every* buffer size
  on the evaluation grid is answered from the histogram.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Sequence

from repro.buffer.stack import FetchCurve
from repro.errors import ExperimentError
from repro.storage.index import Index
from repro.workload.predicates import KeyRange
from repro.workload.scans import ScanSpec


class ScanTraceExtractor:
    """Precomputes the full index trace for fast per-scan slicing."""

    def __init__(self, index: Index) -> None:
        self._index = index
        entries = list(index.entries())
        if not entries:
            raise ExperimentError(
                f"index {index.name!r} is empty; nothing to scan"
            )
        self._pages: List[int] = [e.rid.page for e in entries]
        self._keys: List = [e.key for e in entries]
        self._entries = entries

    @property
    def index(self) -> Index:
        """The index this extractor was built over."""
        return self._index

    @property
    def full_trace(self) -> Sequence[int]:
        """The full index-order page sequence."""
        return self._pages

    def _range_positions(self, key_range: KeyRange) -> "tuple[int, int]":
        """Positions [lo, hi) of entries whose keys fall in ``key_range``."""
        keys = self._keys
        lo = 0
        hi = len(keys)
        if key_range.start is not None:
            if key_range.start.inclusive:
                lo = bisect_left(keys, key_range.start.value)
            else:
                lo = bisect_right(keys, key_range.start.value)
        if key_range.stop is not None:
            if key_range.stop.inclusive:
                hi = bisect_right(keys, key_range.stop.value)
            else:
                hi = bisect_left(keys, key_range.stop.value)
        return lo, hi

    def trace_for(self, scan: ScanSpec) -> List[int]:
        """The scan's page-reference string (sargable filter applied)."""
        lo, hi = self._range_positions(scan.key_range)
        if scan.sargable is None:
            return self._pages[lo:hi]
        qualifies = scan.sargable.qualifies
        return [
            entry.rid.page
            for entry in self._entries[lo:hi]
            if qualifies(entry)
        ]

    def records_for(self, scan: ScanSpec) -> int:
        """Records the scan's range selects (before sargable filtering)."""
        lo, hi = self._range_positions(scan.key_range)
        return hi - lo

    def fetch_curve_for(self, scan: ScanSpec) -> Optional[FetchCurve]:
        """Exact ``B -> F(B)`` for the scan; None if nothing qualifies."""
        trace = self.trace_for(scan)
        if not trace:
            return None
        return FetchCurve.from_trace(trace)

    def actual_fetches(
        self, scan: ScanSpec, buffer_sizes: Sequence[int]
    ) -> Dict[int, int]:
        """Ground-truth fetches for every requested buffer size."""
        curve = self.fetch_curve_for(scan)
        if curve is None:
            return {b: 0 for b in buffer_sizes}
        return {b: curve.fetches(b) for b in buffer_sizes}
