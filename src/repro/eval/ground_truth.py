"""Exact ground truth for partial index scans.

The actual page-fetch count ``a_i`` of a scan is obtained by LRU-simulating
the scan's own page-reference subsequence from a cold buffer — exactly what
the paper measures against.  Two efficiency tricks keep 200-scan experiment
suites fast in pure Python:

* A partial scan's reference string is a *contiguous slice* of the full
  index-order page sequence (start/stop conditions select a contiguous key
  range, and each key's entries are contiguous), so traces come from O(1)
  slicing of one precomputed array instead of repeated B-tree walks.
* Each scan's trace is analyzed once with the Mattson stack-distance pass
  (:class:`~repro.buffer.stack.FetchCurve`), after which *every* buffer size
  on the evaluation grid is answered from the histogram.

For big suites, :func:`ground_truth_tables` additionally fans the per-scan
analyses across worker processes (fork start method, inherited state, no
pickling of the extractor per task).  Scans are seeded deterministically by
ordinal — :func:`derive_scan_seed` — so a parallel run reproduces the serial
run bit-for-bit, for any worker count and any kernel (including the sampled
one, whose randomness comes only from its seed).
"""

from __future__ import annotations

import multiprocessing
from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Sequence, Union

from repro.buffer.kernels import StackDistanceKernel, resolve_kernel
from repro.buffer.stack import FetchCurve
from repro.errors import ExperimentError
from repro.storage.index import Index
from repro.workload.predicates import KeyRange
from repro.workload.scans import ScanSpec

_M64 = (1 << 64) - 1


class ScanTraceExtractor:
    """Precomputes the full index trace for fast per-scan slicing."""

    def __init__(self, index: Index) -> None:
        self._index = index
        entries = list(index.entries())
        if not entries:
            raise ExperimentError(
                f"index {index.name!r} is empty; nothing to scan"
            )
        self._pages: List[int] = [e.rid.page for e in entries]
        self._keys: List = [e.key for e in entries]
        self._entries = entries

    @property
    def index(self) -> Index:
        """The index this extractor was built over."""
        return self._index

    @property
    def full_trace(self) -> Sequence[int]:
        """The full index-order page sequence."""
        return self._pages

    def _range_positions(self, key_range: KeyRange) -> "tuple[int, int]":
        """Positions [lo, hi) of entries whose keys fall in ``key_range``."""
        keys = self._keys
        lo = 0
        hi = len(keys)
        if key_range.start is not None:
            if key_range.start.inclusive:
                lo = bisect_left(keys, key_range.start.value)
            else:
                lo = bisect_right(keys, key_range.start.value)
        if key_range.stop is not None:
            if key_range.stop.inclusive:
                hi = bisect_right(keys, key_range.stop.value)
            else:
                hi = bisect_left(keys, key_range.stop.value)
        return lo, hi

    def trace_for(self, scan: ScanSpec) -> List[int]:
        """The scan's page-reference string (sargable filter applied)."""
        lo, hi = self._range_positions(scan.key_range)
        if scan.sargable is None:
            return self._pages[lo:hi]
        qualifies = scan.sargable.qualifies
        return [
            entry.rid.page
            for entry in self._entries[lo:hi]
            if qualifies(entry)
        ]

    def records_for(self, scan: ScanSpec) -> int:
        """Records the scan's range selects (before sargable filtering)."""
        lo, hi = self._range_positions(scan.key_range)
        return hi - lo

    def fetch_curve_for(
        self,
        scan: ScanSpec,
        kernel: Union[str, StackDistanceKernel, None] = None,
    ) -> Optional[FetchCurve]:
        """``B -> F(B)`` for the scan; None if nothing qualifies.

        ``kernel`` selects the stack-distance kernel (name or instance;
        ``None`` = the exact default).
        """
        trace = self.trace_for(scan)
        if not trace:
            return None
        return resolve_kernel(kernel).analyze(trace)

    def actual_fetches(
        self, scan: ScanSpec, buffer_sizes: Sequence[int]
    ) -> Dict[int, int]:
        """Ground-truth fetches for every requested buffer size."""
        curve = self.fetch_curve_for(scan)
        if curve is None:
            return {b: 0 for b in buffer_sizes}
        return {b: curve.fetches(b) for b in buffer_sizes}


def derive_scan_seed(base_seed: int, ordinal: int) -> int:
    """Deterministic per-scan seed (SplitMix64 mix of base and ordinal).

    Workers receive scans by ordinal, so the randomness a scan sees is a
    pure function of ``(base_seed, ordinal)`` — independent of scheduling,
    chunking, or worker count.
    """
    z = (base_seed * 0x9E3779B97F4A7C15 + ordinal + 1) & _M64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _M64
    return (z ^ (z >> 31)) & _M64


def _scan_row(
    extractor: ScanTraceExtractor,
    scan: ScanSpec,
    sizes: Sequence[int],
    kernel: Union[str, StackDistanceKernel, None],
    seed: int,
    ordinal: int,
) -> List[int]:
    """One ground-truth table row: fetches of ``scan`` at every size."""
    resolved = resolve_kernel(kernel).reseeded(derive_scan_seed(seed, ordinal))
    curve = extractor.fetch_curve_for(scan, kernel=resolved)
    if curve is None:
        # A scan whose sargable predicate filtered out every record
        # fetches nothing; it contributes zero at every buffer size.
        return [0] * len(sizes)
    return [curve.fetches(b) for b in sizes]


# State inherited by forked workers: set in the parent immediately before
# the pool is created, cleared after.  Fork inheritance means the extractor
# (which holds the full index trace) is shared copy-on-write instead of
# being pickled once per task.
_WORKER_STATE = None


def _worker_row(ordinal: int) -> List[int]:
    """Pool task: compute one row from the fork-inherited state."""
    extractor, scans, sizes, kernel, seed = _WORKER_STATE
    return _scan_row(extractor, scans[ordinal], sizes, kernel, seed, ordinal)


def ground_truth_tables(
    extractor: ScanTraceExtractor,
    scans: Sequence[ScanSpec],
    buffer_sizes: Sequence[int],
    workers: int = 1,
    kernel: Union[str, StackDistanceKernel, None] = None,
    seed: int = 0,
) -> List[List[int]]:
    """Per-scan fetch tables: ``result[s][g]`` = fetches of scan s at size g.

    ``workers > 1`` fans the per-scan LRU analyses across that many forked
    processes (capped at the scan count); ``workers <= 0`` means one per
    CPU.  Platforms without the fork start method fall back to the serial
    path.  Results are identical to the serial computation in all cases —
    rows come back in scan order and every scan's kernel is re-seeded from
    its ordinal alone.
    """
    sizes = list(buffer_sizes)
    scans = list(scans)
    if workers is not None and workers <= 0:
        workers = multiprocessing.cpu_count()
    use_fork = (
        workers is not None
        and workers > 1
        and len(scans) > 1
        and "fork" in multiprocessing.get_all_start_methods()
    )
    if not use_fork:
        return [
            _scan_row(extractor, scan, sizes, kernel, seed, i)
            for i, scan in enumerate(scans)
        ]
    global _WORKER_STATE
    _WORKER_STATE = (extractor, scans, sizes, kernel, seed)
    try:
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(min(workers, len(scans))) as pool:
            return pool.map(_worker_row, range(len(scans)))
    finally:
        _WORKER_STATE = None
