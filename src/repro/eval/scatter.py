"""Per-scan estimation diagnostics.

The paper's aggregate metric sum(e - a)/sum(a) can hide compensating
errors: an estimator that doubles small scans and halves large ones can
still score near zero.  This module computes the per-scan scatter the
aggregate collapses — relative-error quantiles, the over/under split, and
a rank-correlation between estimates and actuals (what matters for
*comparing* plans is getting the ordering right).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ExperimentError


@dataclass(frozen=True)
class ScatterSummary:
    """Distributional view of one estimator's per-scan errors."""

    scan_count: int
    #: Quantiles of the signed per-scan relative error (e - a) / a.
    p10: float
    p50: float
    p90: float
    #: Fraction of scans overestimated (e > a).
    overestimated_fraction: float
    #: Spearman rank correlation between estimates and actuals.
    rank_correlation: float

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"n={self.scan_count} rel.err p10={self.p10:+.2f} "
            f"p50={self.p50:+.2f} p90={self.p90:+.2f} "
            f"over={self.overestimated_fraction:.0%} "
            f"rank-corr={self.rank_correlation:+.3f}"
        )


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile of pre-sorted values."""
    if not sorted_values:
        raise ExperimentError("quantile of empty data")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    lo = int(math.floor(position))
    hi = int(math.ceil(position))
    if lo == hi:
        return sorted_values[lo]
    weight = position - lo
    return sorted_values[lo] * (1 - weight) + sorted_values[hi] * weight


def _ranks(values: Sequence[float]) -> List[float]:
    """Average ranks (ties share their mean rank)."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while (
            j + 1 < len(order)
            and values[order[j + 1]] == values[order[i]]
        ):
            j += 1
        mean_rank = (i + j) / 2.0
        for k in range(i, j + 1):
            ranks[order[k]] = mean_rank
        i = j + 1
    return ranks


def spearman(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation; 0.0 when either side is constant."""
    if len(xs) != len(ys):
        raise ExperimentError("length mismatch")
    if len(xs) < 2:
        raise ExperimentError("need at least two points")
    rx, ry = _ranks(xs), _ranks(ys)
    mean_x = sum(rx) / len(rx)
    mean_y = sum(ry) / len(ry)
    cov = sum((a - mean_x) * (b - mean_y) for a, b in zip(rx, ry))
    var_x = sum((a - mean_x) ** 2 for a in rx)
    var_y = sum((b - mean_y) ** 2 for b in ry)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def summarize_scatter(
    estimates: Sequence[float], actuals: Sequence[float]
) -> ScatterSummary:
    """Build the :class:`ScatterSummary` for one estimator's scans.

    Scans with zero actual fetches are skipped (their relative error is
    undefined); at least two scans with positive actuals are required.
    """
    if len(estimates) != len(actuals):
        raise ExperimentError(
            f"estimate/actual length mismatch: {len(estimates)} vs "
            f"{len(actuals)}"
        )
    pairs: List[Tuple[float, float]] = [
        (e, a) for e, a in zip(estimates, actuals) if a > 0
    ]
    if len(pairs) < 2:
        raise ExperimentError(
            "need at least two scans with positive actual fetches"
        )
    errors = sorted((e - a) / a for e, a in pairs)
    over = sum(1 for e, a in pairs if e > a) / len(pairs)
    corr = spearman([e for e, _a in pairs], [a for _e, a in pairs])
    return ScatterSummary(
        scan_count=len(pairs),
        p10=_quantile(errors, 0.10),
        p50=_quantile(errors, 0.50),
        p90=_quantile(errors, 0.90),
        overestimated_fraction=over,
        rank_correlation=corr,
    )
