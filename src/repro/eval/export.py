"""Machine-readable export of experiment results.

The benches render text exhibits; downstream users replotting with their
own tooling want the numbers.  These helpers serialize
:class:`~repro.eval.experiment.ErrorBehaviorResult` to JSON and CSV and
round-trip the JSON form (the CSV form is write-only, for spreadsheets).
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Union

from repro.errors import ExperimentError
from repro.eval.buffer_grid import BufferGrid
from repro.eval.experiment import ErrorBehaviorResult, EstimatorErrorCurve


def result_to_dict(result: ErrorBehaviorResult) -> dict:
    """JSON-ready dictionary form of one experiment result."""
    return {
        "dataset": result.dataset,
        "table_pages": result.table_pages,
        "scan_count": result.scan_count,
        "buffer_sizes": list(result.buffer_grid.sizes),
        "curves": {
            curve.estimator: [
                {"buffer_pages": b, "error": e} for b, e in curve.points
            ]
            for curve in result.curves
        },
        "elapsed_seconds": result.elapsed_seconds,
    }


def result_from_dict(payload: dict) -> ErrorBehaviorResult:
    """Rebuild a result from :func:`result_to_dict` output."""
    try:
        grid = BufferGrid(
            table_pages=payload["table_pages"],
            sizes=tuple(payload["buffer_sizes"]),
        )
        curves = tuple(
            EstimatorErrorCurve(
                estimator=name,
                points=tuple(
                    (point["buffer_pages"], point["error"])
                    for point in points
                ),
            )
            for name, points in payload["curves"].items()
        )
        return ErrorBehaviorResult(
            dataset=payload["dataset"],
            table_pages=payload["table_pages"],
            scan_count=payload["scan_count"],
            buffer_grid=grid,
            curves=curves,
            elapsed_seconds=payload.get("elapsed_seconds", 0.0),
        )
    except KeyError as missing:
        raise ExperimentError(
            f"result payload is missing field {missing}"
        ) from None


def save_result_json(
    result: ErrorBehaviorResult, path: Union[str, Path]
) -> None:
    """Write one result as JSON."""
    Path(path).write_text(
        json.dumps(result_to_dict(result), indent=2, sort_keys=True),
        encoding="utf-8",
    )


def load_result_json(path: Union[str, Path]) -> ErrorBehaviorResult:
    """Read a result written by :func:`save_result_json`."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ExperimentError(f"invalid result JSON: {exc}") from exc
    return result_from_dict(payload)


def result_to_csv(result: ErrorBehaviorResult) -> str:
    """Long-format CSV: one row per (estimator, buffer size)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["dataset", "estimator", "buffer_pages", "buffer_percent_of_t",
         "error"]
    )
    for curve in result.curves:
        for (b, e), percent in zip(
            curve.points, result.buffer_grid.percents()
        ):
            writer.writerow(
                [result.dataset, curve.estimator, b,
                 f"{percent:.2f}", f"{e:.6f}"]
            )
    return buffer.getvalue()


def save_result_csv(
    result: ErrorBehaviorResult, path: Union[str, Path]
) -> None:
    """Write one result as long-format CSV."""
    Path(path).write_text(result_to_csv(result), encoding="utf-8")
