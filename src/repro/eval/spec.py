"""Declarative experiment specifications.

An :class:`ExperimentSpec` captures everything one error-behaviour
experiment needs — the synthetic dataset, the estimators (by registry
name), the scan workload, the evaluation buffer grid, and the execution
knobs (kernel, workers, seed) — as a single JSON-round-trippable value.
The CLI's positional flags are thin builders over this type, and
``repro experiment --spec FILE`` runs a saved one; a spec file is the
reproducibility unit (commit it next to the figure it generated).

Wire format (all groups optional except ``dataset``)::

    {
      "dataset":   {"records": 2000, "distinct_values": 50, ...},
      "estimators": ["epfis", "ml", "dc", "sd", "ot"],
      "scans":     {"count": 100, "small_probability": 0.5},
      "buffer_grid": {"floor": 12},
      "kernel":    "baseline",
      "workers":   1,
      "seed":      0,
      "shards":    {"count": 4, "workers": 4},
      "policy":    "clock"
    }

The ``shards`` group (omitted when left at the single-pass default)
shards the statistics pass itself — see
:mod:`repro.buffer.kernels.sharded`; exact kernels produce bit-identical
statistics at any shard count.

``policy`` (omitted when left at the LRU default) runs the whole
experiment under a non-LRU replacement policy: the shared statistics
pass fits the policy's simulated fetch curve and the ground-truth scan
simulations replay the same policy kernel, so the error curves answer
"how well do the paper's estimators do when the pool isn't LRU?".
Non-LRU policies have no mergeable shard summaries, so ``policy`` and
a non-default ``shards`` group are mutually exclusive.
"""

from __future__ import annotations

import dataclasses
import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.buffer.kernels import available_kernels, available_policy_kernels
from repro.datagen.synthetic import SyntheticSpec, build_synthetic_dataset
from repro.errors import ExperimentError
from repro.estimators.registry import (
    PAPER_ESTIMATOR_NAMES,
    available_estimators,
)
from repro.eval.buffer_grid import PAPER_FLOOR, evaluation_buffer_grid
from repro.eval.experiment import ErrorBehaviorResult, run_error_behavior
from repro.obs.tracing import span as obs_span
from repro.workload.scans import generate_scan_mix


@dataclass(frozen=True)
class ExperimentSpec:
    """One error-behaviour experiment, fully specified."""

    dataset: SyntheticSpec
    estimators: Tuple[str, ...] = PAPER_ESTIMATOR_NAMES
    scan_count: int = 100
    small_probability: float = 0.5
    large_probability: Optional[float] = None
    buffer_floor: int = PAPER_FLOOR
    kernel: str = "baseline"
    workers: int = 1
    seed: int = 0
    shards: int = 1
    shard_workers: int = 1
    policy: str = "lru"

    def __post_init__(self) -> None:
        object.__setattr__(self, "estimators", tuple(self.estimators))
        if not self.estimators:
            raise ExperimentError(
                "an experiment spec needs at least one estimator"
            )
        known = set(available_estimators())
        for name in self.estimators:
            if not isinstance(name, str) or name.lower() not in known:
                raise ExperimentError(
                    f"unknown estimator {name!r} in spec; available: "
                    f"{', '.join(sorted(known))}"
                )
        if self.scan_count < 1:
            raise ExperimentError(
                f"scan_count must be >= 1, got {self.scan_count}"
            )
        if self.buffer_floor < 1:
            raise ExperimentError(
                f"buffer_floor must be >= 1, got {self.buffer_floor}"
            )
        if self.kernel not in available_kernels():
            raise ExperimentError(
                f"unknown kernel {self.kernel!r} in spec; available: "
                f"{', '.join(available_kernels())}"
            )
        if self.shards < 1:
            raise ExperimentError(
                f"shards must be >= 1, got {self.shards}"
            )
        policies = ("lru",) + available_policy_kernels()
        if self.policy not in policies:
            raise ExperimentError(
                f"unknown replacement policy {self.policy!r} in spec; "
                f"available: {', '.join(policies)}"
            )
        if self.policy != "lru" and self.shards > 1:
            raise ExperimentError(
                f"policy {self.policy!r} cannot run sharded: non-LRU "
                f"policies have no mergeable shard summaries"
            )

    # ------------------------------------------------------------------
    # dict / JSON round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready dictionary form (regenerates this spec exactly)."""
        dataset = dataclasses.asdict(self.dataset)
        if self.dataset.name == self.dataset.default_name():
            del dataset["name"]  # derived; keep the file free of noise
        payload = {
            "dataset": dataset,
            "estimators": list(self.estimators),
            "scans": {
                "count": self.scan_count,
                "small_probability": self.small_probability,
            },
            "buffer_grid": {"floor": self.buffer_floor},
            "kernel": self.kernel,
            "workers": self.workers,
            "seed": self.seed,
        }
        if self.large_probability is not None:
            payload["scans"]["large_probability"] = self.large_probability
        if (self.shards, self.shard_workers) != (1, 1):
            payload["shards"] = {
                "count": self.shards,
                "workers": self.shard_workers,
            }
        if self.policy != "lru":
            payload["policy"] = self.policy
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output (or hand-written JSON)."""
        if not isinstance(payload, dict):
            raise ExperimentError(
                f"experiment spec must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        known_keys = {
            "dataset", "estimators", "scans", "buffer_grid", "kernel",
            "workers", "seed", "shards", "policy",
        }
        unknown = sorted(set(payload) - known_keys)
        if unknown:
            raise ExperimentError(
                f"unknown experiment-spec keys {unknown}; known: "
                f"{sorted(known_keys)}"
            )
        if "dataset" not in payload:
            raise ExperimentError("experiment spec is missing 'dataset'")
        try:
            dataset = SyntheticSpec(**payload["dataset"])
        except TypeError as exc:
            raise ExperimentError(
                f"bad 'dataset' section in experiment spec: {exc}"
            ) from None

        scans = payload.get("scans", {})
        if not isinstance(scans, dict):
            raise ExperimentError(
                f"'scans' must be an object, got {type(scans).__name__}"
            )
        unknown = sorted(
            set(scans) - {"count", "small_probability", "large_probability"}
        )
        if unknown:
            raise ExperimentError(f"unknown 'scans' keys {unknown}")

        grid = payload.get("buffer_grid", {})
        if not isinstance(grid, dict):
            raise ExperimentError(
                f"'buffer_grid' must be an object, got "
                f"{type(grid).__name__}"
            )
        unknown = sorted(set(grid) - {"floor"})
        if unknown:
            raise ExperimentError(f"unknown 'buffer_grid' keys {unknown}")

        sharding = payload.get("shards", {})
        if not isinstance(sharding, dict):
            raise ExperimentError(
                f"'shards' must be an object, got "
                f"{type(sharding).__name__}"
            )
        unknown = sorted(set(sharding) - {"count", "workers"})
        if unknown:
            raise ExperimentError(f"unknown 'shards' keys {unknown}")

        return cls(
            dataset=dataset,
            estimators=tuple(
                payload.get("estimators", PAPER_ESTIMATOR_NAMES)
            ),
            scan_count=scans.get("count", 100),
            small_probability=scans.get("small_probability", 0.5),
            large_probability=scans.get("large_probability"),
            buffer_floor=grid.get("floor", PAPER_FLOOR),
            kernel=payload.get("kernel", "baseline"),
            workers=payload.get("workers", 1),
            seed=payload.get("seed", 0),
            shards=sharding.get("count", 1),
            shard_workers=sharding.get("workers", 1),
            policy=payload.get("policy", "lru"),
        )

    def to_json(self, indent: int = 2) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Parse a spec from :meth:`to_json` output."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ExperimentError(
                f"invalid experiment-spec JSON: {exc}"
            ) from exc
        return cls.from_dict(payload)

    def save(self, path: Union[str, Path]) -> None:
        """Write the spec to a JSON file."""
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ExperimentSpec":
        """Read a spec previously written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise ExperimentError(
                f"experiment spec file {str(path)!r} does not exist"
            )
        return cls.from_json(path.read_text(encoding="utf-8"))


def run_experiment_spec(
    spec: ExperimentSpec,
    checkpoint=None,
    resume: bool = False,
) -> ErrorBehaviorResult:
    """Execute a declarative spec: the one entry point behind the CLI.

    Builds the dataset, the Section 5 buffer grid, and the random scan mix
    (all deterministic under the spec's seeds), then hands the estimator
    *names* to :func:`~repro.eval.experiment.run_error_behavior`, which
    binds them to one shared statistics pass via the registry.  Identical
    specs produce identical results, byte for byte.

    ``checkpoint``/``resume`` are execution knobs, not spec content (a
    spec stays a pure description of the experiment): they protect the
    shared statistics pass with periodic atomic snapshots so an
    interrupted ``repro experiment`` run resumes instead of restarting —
    see :mod:`repro.resilience.checkpoint`.
    """
    with obs_span(
        "experiment",
        dataset=spec.dataset.name,
        kernel=spec.kernel,
        seed=spec.seed,
    ):
        with obs_span("build-dataset", dataset=spec.dataset.name):
            dataset = build_synthetic_dataset(spec.dataset)
        index = dataset.index
        grid = evaluation_buffer_grid(
            index.table.page_count, floor=spec.buffer_floor
        )
        scans = generate_scan_mix(
            index,
            count=spec.scan_count,
            small_probability=spec.small_probability,
            large_probability=spec.large_probability,
            rng=random.Random(spec.seed),
        )
        # A non-default sharding or policy tunes the shared statistics
        # pass; the default stays None so plain specs run the exact code
        # path (and bytes) they always have.
        lru_fit_config = None
        if spec.shards > 1 or spec.policy != "lru":
            from repro.estimators.epfis import LRUFitConfig

            lru_fit_config = LRUFitConfig(
                collect_baseline_stats=True,
                shards=spec.shards,
                shard_workers=spec.shard_workers,
                policy=spec.policy,
            )
        # Under a non-LRU policy the ground-truth simulations replay the
        # policy kernel too (a name, so it stays fork-safe for workers):
        # both sides of the error comparison see the same pool behavior.
        truth_kernel = spec.kernel if spec.policy == "lru" else spec.policy
        return run_error_behavior(
            index,
            list(spec.estimators),
            scans,
            grid,
            dataset_name=dataset.name,
            workers=spec.workers,
            kernel=truth_kernel,
            seed=spec.seed,
            lru_fit_config=lru_fit_config,
            checkpoint=checkpoint,
            resume=resume,
        )
