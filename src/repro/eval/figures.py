"""One entry point per paper exhibit (the per-experiment index of DESIGN.md).

Every public function here regenerates one table or figure of the paper:

===============  ========================================================
Paper exhibit    Function
===============  ========================================================
Figure 1         :func:`figure1_fpf_curves`
Table 2          :func:`table2_rows`
Table 3          :func:`table3_rows`
Figures 2-9      :func:`gwl_error_figure` (see :data:`GWL_ERROR_FIGURES`)
Figures 10-21    :func:`synthetic_error_figure`
                 (see :data:`SYNTHETIC_FIGURES`)
Section 5 text   :func:`max_error_summary`
===============  ========================================================

All functions accept a scale/size so the same code runs in seconds for CI
and at (or near) paper scale when time permits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.buffer.stack import FetchCurve
from repro.datagen.gwl import (
    ERROR_FIGURE_COLUMNS,
    FIGURE1_COLUMNS,
    GWLDatabase,
)
from repro.datagen.synthetic import (
    Dataset,
    SyntheticSpec,
    build_synthetic_dataset,
)
from repro.errors import ExperimentError
from repro.estimators.base import PageFetchEstimator
from repro.estimators.epfis import LRUFit, LRUFitConfig
from repro.estimators.registry import (
    PAPER_ESTIMATOR_NAMES,
    get_estimator,
)
from repro.eval.buffer_grid import BufferGrid, evaluation_buffer_grid
from repro.eval.experiment import ErrorBehaviorResult, run_error_behavior
from repro.storage.index import Index
from repro.workload.scans import generate_scan_mix

#: Figure number -> GWL column, for the error-behaviour Figures 2-9.
GWL_ERROR_FIGURES: Dict[int, str] = {
    figure: column
    for figure, column in zip(range(2, 10), ERROR_FIGURE_COLUMNS)
}

#: Figure number -> (theta, K) for the synthetic Figures 10-21 (R = 40).
SYNTHETIC_FIGURES: Dict[int, Tuple[float, float]] = {
    10: (0.0, 0.0),
    11: (0.0, 0.05),
    12: (0.0, 0.10),
    13: (0.0, 0.20),
    14: (0.0, 0.50),
    15: (0.0, 1.0),
    16: (0.86, 0.0),
    17: (0.86, 0.05),
    18: (0.86, 0.10),
    19: (0.86, 0.20),
    20: (0.86, 0.50),
    21: (0.86, 1.0),
}


def paper_estimators(
    index: Index, lru_fit_config: Optional[LRUFitConfig] = None
) -> List[PageFetchEstimator]:
    """The five algorithms every error figure compares.

    One LRU-Fit statistics pass feeds EPFIS and the catalog-derived
    baselines (ML, DC, SD, OT) through the estimator registry, mirroring
    the paper's premise that the LRU simulation happens "while statistics
    are being gathered for other purposes".
    """
    config = lru_fit_config or LRUFitConfig(collect_baseline_stats=True)
    stats = LRUFit(config).run(index)
    return [
        get_estimator(name, stats) for name in PAPER_ESTIMATOR_NAMES
    ]


# ----------------------------------------------------------------------
# Figure 1: FPF curves for five GWL columns
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FPFCurveSeries:
    """One normalized FPF curve: (B/T, F/T) samples for a column."""

    column: str
    table_pages: int
    points: Tuple[Tuple[float, float], ...]


def figure1_fpf_curves(
    db: GWLDatabase,
    columns: Sequence[str] = FIGURE1_COLUMNS,
    fractions: Optional[Sequence[float]] = None,
) -> List[FPFCurveSeries]:
    """Exact FPF curves, normalized as in Figure 1 (B in T, F in T)."""
    if fractions is None:
        fractions = [i / 100.0 for i in range(2, 101, 2)]
    series: List[FPFCurveSeries] = []
    for name in columns:
        column = db.column(name)
        index = column.index
        pages = index.table.page_count
        curve = FetchCurve.from_trace(index.page_sequence())
        points = []
        for fraction in fractions:
            b = max(1, round(fraction * pages))
            points.append((b / pages, curve.fetches(b) / pages))
        series.append(
            FPFCurveSeries(
                column=name, table_pages=pages, points=tuple(points)
            )
        )
    return series


# ----------------------------------------------------------------------
# Tables 2 and 3: the GWL statistics themselves
# ----------------------------------------------------------------------
def table2_rows(db: GWLDatabase) -> List[Tuple[str, int, int]]:
    """(table, pages, records/page) rows, from the built database."""
    rows = []
    for name in sorted(db.tables):
        table = db.tables[name]
        rows.append((name, table.page_count, table.records_per_page))
    return rows


def table3_rows(
    db: GWLDatabase,
) -> List[Tuple[str, int, float, float]]:
    """(column, cardinality, measured C%, paper C%) rows."""
    rows = []
    for name in sorted(db.columns):
        column = db.columns[name]
        rows.append(
            (
                name,
                column.scaled_cardinality,
                100.0 * column.measured_c,
                column.spec.clustering_percent,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Figures 2-9: GWL error behaviour
# ----------------------------------------------------------------------
def gwl_error_figure(
    db: GWLDatabase,
    column: str,
    scan_count: int = 200,
    seed: int = 1,
    buffer_grid: Optional[BufferGrid] = None,
) -> ErrorBehaviorResult:
    """One of Figures 2-9 on the (simulated, calibrated) GWL data."""
    index = db.index(column)
    grid = buffer_grid or evaluation_buffer_grid(index.table.page_count)
    scans = generate_scan_mix(
        index, count=scan_count, rng=random.Random(seed)
    )
    # Keep the statistics pass's minimum-buffer floor consistent with the
    # (possibly scaled) floor the database was calibrated against.
    config = LRUFitConfig(b_sml=db.b_sml, collect_baseline_stats=True)
    return run_error_behavior(
        index,
        paper_estimators(index, config),
        scans,
        grid,
        dataset_name=column,
    )


# ----------------------------------------------------------------------
# Figures 10-21: synthetic error behaviour
# ----------------------------------------------------------------------
def synthetic_error_figure(
    theta: float,
    window: float,
    records: int = 100_000,
    distinct_values: int = 1_000,
    records_per_page: int = 40,
    scan_count: int = 200,
    seed: int = 1,
    dataset: Optional[Dataset] = None,
) -> ErrorBehaviorResult:
    """One of Figures 10-21 (default: the scaled dataset of DESIGN.md)."""
    if dataset is None:
        spec = SyntheticSpec(
            records=records,
            distinct_values=distinct_values,
            records_per_page=records_per_page,
            theta=theta,
            window=window,
            seed=seed,
        )
        dataset = build_synthetic_dataset(spec)
    index = dataset.index
    grid = evaluation_buffer_grid(index.table.page_count)
    scans = generate_scan_mix(
        index, count=scan_count, rng=random.Random(seed)
    )
    return run_error_behavior(
        index,
        paper_estimators(index),
        scans,
        grid,
        dataset_name=dataset.name,
    )


# ----------------------------------------------------------------------
# Section 5 text: worst-case summaries
# ----------------------------------------------------------------------
def max_error_summary(
    results: Sequence[ErrorBehaviorResult],
) -> Dict[str, float]:
    """Worst |error| (percent) per estimator across a set of figures.

    This regenerates the Section 5.1/5.2 summary sentences ("The maximum
    errors for the other algorithms are as follows: ...").
    """
    if not results:
        raise ExperimentError("no results to summarize")
    summary: Dict[str, float] = {}
    for result in results:
        for name, worst in result.max_abs_errors().items():
            summary[name] = max(summary.get(name, 0.0), worst)
    return summary
