"""The BENCH_serving benchmark: micro-batched serving throughput as JSON.

Provisions a deterministic multi-tenant deployment — each tenant gets
its own LRU-Fit catalog under an isolated namespace, padded to
*production breadth*: one hot fitted index plus ``catalog_breadth - 1``
cold records cloned from it.  The padding models what a real namespace
holds (the paper's GWL database spans 57 tables with multiple indexed
columns each, i.e. on the order of a hundred catalog records), and it
matters for honesty: the per-call fixed cost the micro-batcher
amortizes is dominated by the content-stamped catalog re-read, which
scales with the catalog *file*, not with the one record a request
touches.  Traffic still targets each tenant's hot index — optimizer
compilations concentrate on hot tables — so batches group per tenant,
not per cold record.

The benchmark then measures the serving tier over one seeded request
stream:

* **serial engine reference** — one thread, one
  :meth:`~repro.engine.EstimationEngine.estimate` call per request,
  straight against the per-tenant engines (no serving tier at all).
  Reported for scale, and its values are the ground truth for the
  identity check.
* **one-request-per-call baseline** — the serving path with batching
  disabled (``max_batch=1``) at the same 8 concurrent clients: every
  request pays the full engine-call fixed cost (content-stamped
  catalog re-read, binding-cache lookup, metrics) plus one dispatcher
  round-trip.  This is the baseline the speedup criterion is defined
  against — same clients, same stream, batching off.
* **closed loop, batched** — the same stream through
  :class:`~repro.serving.server.EstimationServer` with 8 concurrent
  clients (:func:`~repro.serving.loadgen.run_closed_loop`): concurrency
  becomes batch size, the per-engine-call fixed cost amortizes across
  the batch, and sustained QPS, p50/p99 latency, and the batch-size
  histogram are recorded.  Both closed-loop modes run ``repeats``
  interleaved repetitions and the criterion compares **medians** —
  thread-scheduling noise at this scale is +-20% per rep, far larger
  than the signal a single rep could resolve.
* **open loop** — fixed-rate arrivals above the measured capacity with
  a small admission queue, demonstrating honest shedding: every
  rejected request is counted and ``sent == completed + rejected +
  errors`` is asserted.

Correctness rides along: every request is also answered once through
the batcher and compared against the serial value — the acceptance
criteria require **zero** mismatches (estimates are pure functions of
the catalog record, and ``estimate_many`` is the same code path, so
equality is exact, not approximate).

Gates: batched closed-loop throughput >= ``MIN_SPEEDUP``x the
one-request-per-call baseline on a full run (reported but not enforced
under ``smoke=True`` — a starved CI runner can't sustain the
concurrency the speedup needs); identity and accounting are enforced
on every run, and the smoke p99 must stay under ``SMOKE_P99_BOUND_MS``
(a deliberately loose bound that catches pathological stalls, not
jitter).
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.catalog.catalog import SystemCatalog
from repro.datagen.synthetic import SyntheticSpec, build_synthetic_dataset
from repro.estimators.epfis import LRUFit, LRUFitConfig
from repro.serving.loadgen import (
    InProcessTransport,
    WorkloadSpec,
    request_stream,
    run_closed_loop,
    run_open_loop,
    stream_digest,
)
from repro.serving.server import EstimationServer, ServingConfig
from repro.serving.tenants import TenantCatalogs
from repro.types import ScanSelectivity

#: Full-run gate: batched QPS over one-request-per-call serving QPS.
MIN_SPEEDUP = 2.0
#: Smoke gate: closed-loop p99 bound (loose; catches stalls, not jitter).
SMOKE_P99_BOUND_MS = 250.0
#: Closed-loop concurrency the acceptance criterion is defined at.
BENCH_CLIENTS = 8

#: Closed-loop repetitions per mode; the criterion compares medians.
DEFAULT_REPEATS = 5

#: Catalog records per tenant namespace (one hot + the rest cold).
#: Calibrated to the paper's GWL database: 57 tables, multiple indexed
#: columns each — on the order of a hundred fitted records.
FULL_CATALOG_BREADTH = 96

_FULL_TENANTS = 2
_FULL_RECORDS = 3_000
_FULL_REQUESTS = 2_000
_SMOKE_TENANTS = 2
_SMOKE_RECORDS = 1_500
_SMOKE_REQUESTS = 160
_SMOKE_CATALOG_BREADTH = 8
_SMOKE_REPEATS = 2


def provision_tenants(
    root: Path,
    tenant_count: int,
    records: int,
    seed: int = 0,
    segments: int = 6,
    catalog_breadth: int = 1,
) -> TenantCatalogs:
    """Build ``tenant_count`` namespaces with fitted catalogs.

    Tenant ``k`` gets a synthetic dataset seeded ``seed + k`` — every
    namespace holds a differently named hot index, exactly the
    deployment shape ``repro loadgen`` discovers with per-tenant index
    pools.  ``catalog_breadth > 1`` pads each catalog with cold records
    cloned from the hot one (suffix ``.cold<j>``), sizing the catalog
    file like a production namespace without fitting every index.
    """
    tenants = TenantCatalogs(root)
    for k in range(tenant_count):
        dataset = build_synthetic_dataset(SyntheticSpec(
            records=records,
            distinct_values=max(50, records // 20),
            records_per_page=20,
            theta=0.86,
            window=0.2,
            seed=seed + k,
        ))
        stats = LRUFit(LRUFitConfig(segments=segments)).run(dataset.index)
        catalog = SystemCatalog()
        catalog.put(stats)
        for j in range(catalog_breadth - 1):
            catalog.put(dataclasses.replace(
                stats, index_name=f"{stats.index_name}.cold{j}"
            ))
        tenants.save(f"tenant-{k}", catalog)
    return tenants


def _workload(tenants: TenantCatalogs, seed: int) -> WorkloadSpec:
    # Traffic targets each tenant's hot indexes only; the ``.cold``
    # padding records exist to size the catalog file, not to be read.
    pools = tuple(
        (name, tuple(
            index
            for index in tenants.engine(name).index_names()
            if ".cold" not in index
        ))
        for name in tenants.tenant_names()
    )
    return WorkloadSpec(
        tenants=tuple(name for name, _ in pools),
        tenant_indexes=pools,
        seed=seed,
    )


def serial_baseline(
    tenants: TenantCatalogs, requests: Sequence
) -> Dict[str, object]:
    """One thread, one ``estimate`` call per request; values kept.

    The returned ``values`` list (aligned with ``requests``) is the
    ground truth the batched identity check compares against.
    """
    values: List[float] = []
    latencies_ns: List[int] = []
    started = time.perf_counter()
    for request in requests:
        engine = tenants.engine(request.tenant)
        t0 = time.perf_counter_ns()
        values.append(engine.estimate(
            request.index,
            request.estimator,
            ScanSelectivity(request.sigma, request.sargable),
            request.buffer_pages,
            **dict(request.options),
        ))
        latencies_ns.append(time.perf_counter_ns() - t0)
    wall = time.perf_counter() - started
    ordered = sorted(latencies_ns)
    mid = ordered[len(ordered) // 2] / 1e6 if ordered else 0.0
    p99 = (
        ordered[min(len(ordered) - 1, round(0.99 * (len(ordered) - 1)))]
        / 1e6 if ordered else 0.0
    )
    return {
        "requests": len(requests),
        "wall_seconds": wall,
        "qps": len(requests) / wall if wall > 0 else 0.0,
        "p50_ms": mid,
        "p99_ms": p99,
        "values": values,
    }


def batched_identity(
    server: EstimationServer,
    requests: Sequence,
    serial_values: Sequence[float],
) -> Dict[str, object]:
    """Answer every request through the batcher; compare exactly."""
    futures = [server.submit(request) for request in requests]
    mismatches = 0
    for future, expected in zip(futures, serial_values):
        if future.result(timeout=60.0) != expected:
            mismatches += 1
    return {"compared": len(requests), "mismatches": mismatches}


def _median_rep(results: List) -> "object":
    """The repetition with the median sustained QPS."""
    ordered = sorted(results, key=lambda r: r.sustained_qps)
    return ordered[len(ordered) // 2]


def run_serving_benchmark(
    out_path: Path,
    tenant_root: Optional[Path] = None,
    seed: int = 0,
    clients: int = BENCH_CLIENTS,
    repeats: Optional[int] = None,
    smoke: bool = False,
) -> Dict:
    """Run the serving benchmark and write ``out_path``.

    ``tenant_root`` defaults to a temporary directory torn down after
    the run; pass a path to inspect the provisioned namespaces.
    """
    import tempfile

    tenant_count = _SMOKE_TENANTS if smoke else _FULL_TENANTS
    records = _SMOKE_RECORDS if smoke else _FULL_RECORDS
    request_count = _SMOKE_REQUESTS if smoke else _FULL_REQUESTS
    breadth = _SMOKE_CATALOG_BREADTH if smoke else FULL_CATALOG_BREADTH
    if repeats is None:
        repeats = _SMOKE_REPEATS if smoke else DEFAULT_REPEATS

    cleanup = None
    if tenant_root is None:
        cleanup = tempfile.TemporaryDirectory(prefix="bench-serving-")
        tenant_root = Path(cleanup.name)
    try:
        tenants = provision_tenants(
            tenant_root, tenant_count, records, seed=seed,
            catalog_breadth=breadth,
        )
        spec = _workload(tenants, seed)
        requests = request_stream(spec, request_count)
        digest = stream_digest(requests)

        serial = serial_baseline(tenants, requests)
        serial_values = serial.pop("values")

        # Identity: every request once through the batcher, compared
        # exactly.  The queue bound must exceed the burst or admission
        # would (truthfully) shed part of the comparison set.
        config = ServingConfig(max_queue=len(requests) + 1)
        with EstimationServer(tenant_root, config) as server:
            identity = batched_identity(server, requests, serial_values)

        # Closed-loop repetitions, interleaved so drift (cache state,
        # host load) hits both modes alike.  The baseline is the same
        # clients and stream with batching off — every request is its
        # own engine call through the dispatcher.
        unbatched_config = ServingConfig(
            max_batch=1, batch_window_ms=0.0,
            max_queue=len(requests) + 1,
        )
        unbatched_reps, closed_reps = [], []
        for _ in range(repeats):
            with EstimationServer(tenant_root, unbatched_config) as server:
                unbatched_reps.append(run_closed_loop(
                    lambda: InProcessTransport(server),
                    requests,
                    clients=clients,
                    server=server,
                ))
            with EstimationServer(tenant_root, config) as server:
                closed_reps.append(run_closed_loop(
                    lambda: InProcessTransport(server),
                    requests,
                    clients=clients,
                    server=server,
                ))
        unbatched = _median_rep(unbatched_reps)
        closed = _median_rep(closed_reps)

        # Open loop above measured capacity with a small queue: the
        # point is honest shedding, so sheds are expected and counted.
        open_qps = max(200.0, closed.sustained_qps * 1.5)
        open_config = ServingConfig(max_queue=64)
        with EstimationServer(tenant_root, open_config) as server:
            open_loop = run_open_loop(server, requests, qps=open_qps)

        speedup = (
            closed.sustained_qps / unbatched.sustained_qps
            if unbatched.sustained_qps > 0 else 0.0
        )
        p99_ms = closed.latency_ms()["p99"]
        accounted = (
            all(r.accounted for r in closed_reps)
            and all(r.accounted for r in unbatched_reps)
            and open_loop.accounted
        )
        criteria = {
            "min_speedup": MIN_SPEEDUP,
            "speedup": round(speedup, 3),
            "speedup_met": speedup >= MIN_SPEEDUP,
            "identity_exact": identity["mismatches"] == 0,
            "accounted": accounted,
            "smoke_p99_bound_ms": SMOKE_P99_BOUND_MS,
            "p99_ms": round(p99_ms, 3),
            "p99_within_bound": p99_ms <= SMOKE_P99_BOUND_MS,
            "clients": clients,
            "repeats": repeats,
            "meaningful": not smoke,
        }
        # Identity and accounting gate every run; the speedup gate only
        # full runs (smoke runners can't sustain the concurrency).
        criteria["passed"] = (
            criteria["identity_exact"]
            and criteria["accounted"]
            and criteria["p99_within_bound"]
            and (criteria["speedup_met"] or smoke)
        )

        document = {
            "schema": "bench-serving/v1",
            "smoke": smoke,
            "workload": {
                "tenants": tenant_count,
                "records_per_tenant": records,
                "catalog_breadth": breadth,
                "requests": request_count,
                "seed": seed,
                "digest": digest,
            },
            "serial": {
                key: (round(value, 6) if isinstance(value, float) else value)
                for key, value in serial.items()
            },
            "unbatched": unbatched.to_dict(),
            "unbatched_qps_reps": [
                round(r.sustained_qps, 1) for r in unbatched_reps
            ],
            "closed_loop": closed.to_dict(),
            "closed_loop_qps_reps": [
                round(r.sustained_qps, 1) for r in closed_reps
            ],
            "open_loop": open_loop.to_dict(),
            "identity": identity,
            "criteria": criteria,
        }
        out_path = Path(out_path)
        out_path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return document
    finally:
        if cleanup is not None:
            cleanup.cleanup()
