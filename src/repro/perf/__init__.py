"""Performance measurement utilities for the stack-distance kernels.

* :mod:`repro.perf.timing` — time every registered kernel on one trace and
  check agreement against the exact baseline (used by ``repro perf``).
* :mod:`repro.perf.harness` — the reproducible BENCH_core benchmark:
  uniform and Zipf traces, per-kernel medians and speedups, and the
  acceptance criteria (compact >= 3x, sampled >= 10x within its documented
  error bound), written to ``BENCH_core.json``.
* :mod:`repro.perf.shard` — the BENCH_shard benchmark: sharded LRU-Fit
  scaling over a paper-scale trace (per-worker wall/critical-path
  speedups, merged-vs-exact verdicts, sampled merge error), written to
  ``BENCH_shard.json``.
* :mod:`repro.perf.serving` — the BENCH_serving benchmark: micro-batched
  serving throughput vs the serial one-call baseline, plus the
  batched-vs-serial identity check and honest-shedding open-loop
  section, written to ``BENCH_serving.json``.
"""

from repro.perf.harness import (
    build_uniform_trace,
    build_zipf_trace,
    run_core_benchmark,
)
from repro.perf.serving import (
    provision_tenants,
    run_serving_benchmark,
    serial_baseline,
)
from repro.perf.shard import (
    run_shard_benchmark,
    shard_timing,
    single_pass,
)
from repro.perf.timing import (
    KernelComparison,
    KernelTiming,
    compare_kernels,
    evaluation_band,
)

__all__ = [
    "KernelComparison",
    "KernelTiming",
    "build_uniform_trace",
    "build_zipf_trace",
    "compare_kernels",
    "evaluation_band",
    "provision_tenants",
    "run_core_benchmark",
    "run_serving_benchmark",
    "run_shard_benchmark",
    "serial_baseline",
    "shard_timing",
    "single_pass",
]
