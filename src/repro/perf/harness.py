"""The BENCH_core benchmark: kernel speedups recorded as JSON.

Runs every registered kernel over two deterministic traces — the classic
50,000-reference uniform bench trace (``random.Random(5)`` over 1,250
pages, the same fixture ``benchmarks/bench_core_performance.py`` uses) and
a Zipf-skewed variant — and writes per-kernel medians, speedups versus the
baseline, and error/agreement data to ``BENCH_core.json`` along with the
acceptance criteria:

* ``compact`` at least 3x faster than ``baseline``;
* ``sampled`` at least 10x faster with max relative F(B) error on the
  evaluation band within the documented 5% bound.

``smoke=True`` shrinks the traces and repeats so the harness itself can run
inside the tier-1 test suite in well under a second; criteria are reported
but not meaningful at smoke scale (speedups need the full trace), so the
JSON records whether the run was a smoke run.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.buffer.kernels import SAMPLED_BAND_ERROR_BOUND, get_kernel
from repro.datagen.zipf import zipf_counts
from repro.errors import KernelError
from repro.obs.metrics import global_registry
from repro.perf.timing import KernelComparison, compare_kernels

#: The canonical bench-trace shape (see benchmarks/bench_core_performance.py).
DEFAULT_TRACE_LENGTH = 50_000
DEFAULT_PAGES = 1_250
#: Zipf skew of the secondary trace (the paper's 80-20 rule).
DEFAULT_THETA = 0.86

_MIN_COMPACT_SPEEDUP = 3.0
_MIN_SAMPLED_SPEEDUP = 10.0


def build_uniform_trace(
    length: int = DEFAULT_TRACE_LENGTH,
    pages: int = DEFAULT_PAGES,
    seed: int = 5,
) -> List[int]:
    """The uniform bench trace (deterministic in ``seed``)."""
    rng = random.Random(seed)
    return [rng.randrange(pages) for _ in range(length)]


def build_zipf_trace(
    length: int = DEFAULT_TRACE_LENGTH,
    pages: int = DEFAULT_PAGES,
    theta: float = DEFAULT_THETA,
    seed: int = 11,
) -> List[int]:
    """A Zipf-skewed trace: per-page counts from the paper's generator,
    shuffled deterministically."""
    counts = zipf_counts(length, pages, theta)
    trace: List[int] = []
    for page, count in enumerate(counts):
        trace.extend([page] * count)
    random.Random(seed).shuffle(trace)
    return trace


#: The bound the overhead guard enforces: an *enabled* global registry
#: may slow the instrumented kernel hot path by at most this much.
INSTRUMENTATION_OVERHEAD_BOUND_PCT = 5.0

#: Trace shape for the overhead measurement; modest enough to stay
#: sub-second at smoke scale, large enough to dominate timer noise.
_OVERHEAD_TRACE_LENGTH = 8_000
_OVERHEAD_PAGES = 400


def measure_instrumentation_overhead(
    kernel: str = "baseline",
    trace_length: int = _OVERHEAD_TRACE_LENGTH,
    pages: int = _OVERHEAD_PAGES,
    repeats: int = 5,
) -> Dict:
    """Instrumented-vs-uninstrumented kernel throughput, as percent.

    Times the kernel's full analyze pass with the process-global
    registry disabled and enabled, taking the minimum of ``repeats``
    runs each (minimum-of-N is the standard noise filter for
    microbenchmarks — any one run can only be slowed by interference).
    The prior enabled/disabled state and any recorded values of the
    global registry are restored afterwards.
    """
    trace = build_uniform_trace(trace_length, pages, seed=7)
    impl = get_kernel(kernel)
    registry = global_registry()
    was_enabled = registry.enabled
    chunk = 1_024  # exercise the instrumented chunked feed path

    def _one_pass() -> None:
        stream = impl.stream()
        for i in range(0, len(trace), chunk):
            stream.feed(trace[i:i + chunk])
        stream.finish()

    def _pass_ns() -> int:
        best = None
        for _ in range(repeats):
            started = time.perf_counter_ns()
            _one_pass()
            elapsed = time.perf_counter_ns() - started
            if best is None or elapsed < best:
                best = elapsed
        return best

    try:
        registry.disable()
        _one_pass()  # warmup (allocator, caches)
        disabled_ns = _pass_ns()
        registry.enable()
        enabled_ns = _pass_ns()
    finally:
        if was_enabled:
            registry.enable()
        else:
            registry.disable()
            registry.clear(prefix="repro_kernel_")
    overhead_pct = (
        100.0 * (enabled_ns - disabled_ns) / disabled_ns
        if disabled_ns
        else 0.0
    )
    return {
        "kernel": kernel,
        "references": trace_length,
        "repeats": repeats,
        "disabled_ns": disabled_ns,
        "enabled_ns": enabled_ns,
        "overhead_pct": round(overhead_pct, 3),
        "bound_pct": INSTRUMENTATION_OVERHEAD_BOUND_PCT,
        "ok": overhead_pct <= INSTRUMENTATION_OVERHEAD_BOUND_PCT,
    }


def _comparison_dict(comparison: KernelComparison) -> Dict:
    """JSON-friendly rendering of one trace's kernel comparison."""
    return {
        "references": comparison.references,
        "distinct_pages": comparison.distinct_pages,
        "kernels": {
            t.kernel: {
                "exact": t.exact,
                "median_ns": t.median_ns,
                "median_ms": round(t.median_ns / 1e6, 3),
                "speedup_vs_baseline": round(t.speedup, 3),
                "max_rel_error_pct": round(t.max_rel_error_pct, 4),
                "agrees_with_baseline": t.agrees,
            }
            for t in comparison.timings
        },
    }


def run_core_benchmark(
    out_path: Optional[Path] = None,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    pages: int = DEFAULT_PAGES,
    repeats: int = 5,
    kernels: Optional[Sequence[str]] = None,
    smoke: bool = False,
) -> Dict:
    """Run the core kernel benchmark; optionally write ``out_path``.

    Returns the full result document.  ``smoke=True`` shrinks everything
    for a sub-second structural run (used by the tier-1 suite).
    """
    if smoke:
        trace_length = min(trace_length, 4_000)
        pages = min(pages, 300)
        repeats = 1

    uniform = compare_kernels(
        build_uniform_trace(trace_length, pages), kernels, repeats
    )
    zipf = compare_kernels(
        build_zipf_trace(trace_length, pages), kernels, repeats
    )

    criteria: Dict = {
        "compact_min_speedup": _MIN_COMPACT_SPEEDUP,
        "sampled_min_speedup": _MIN_SAMPLED_SPEEDUP,
        "sampled_max_band_error_pct": 100.0 * SAMPLED_BAND_ERROR_BOUND,
        "measured_on": "uniform",
        "meaningful": not smoke,
    }
    try:
        compact = uniform.timing("compact")
        sampled = uniform.timing("sampled")
        criteria.update(
            {
                "compact_speedup": round(compact.speedup, 3),
                "sampled_speedup": round(sampled.speedup, 3),
                "sampled_band_error_pct": round(
                    sampled.max_rel_error_pct, 4
                ),
                "passed": (
                    compact.speedup >= _MIN_COMPACT_SPEEDUP
                    and sampled.speedup >= _MIN_SAMPLED_SPEEDUP
                    and sampled.max_rel_error_pct
                    <= 100.0 * SAMPLED_BAND_ERROR_BOUND
                    and uniform.all_agree
                    and zipf.all_agree
                ),
            }
        )
    except KernelError:  # kernels filtered out: criteria not applicable
        criteria["passed"] = None

    # Observability guard: an enabled metrics registry must not slow the
    # kernel hot path by more than the documented bound.  Measured even
    # in smoke runs (the measurement is minimum-of-N over its own fixed
    # trace, so it stays meaningful at smoke scale).
    try:
        instrumentation = measure_instrumentation_overhead(
            repeats=2 if smoke else 5
        )
    except KernelError:  # baseline filtered out of a custom kernel set
        instrumentation = None

    document = {
        "schema": 1,
        "generated_by": "benchmarks/run_core_bench.py",
        "config": {
            "trace_length": trace_length,
            "pages": pages,
            "repeats": repeats,
            "uniform_seed": 5,
            "zipf_seed": 11,
            "zipf_theta": DEFAULT_THETA,
            "smoke": smoke,
        },
        "traces": {
            "uniform": _comparison_dict(uniform),
            "zipf": _comparison_dict(zipf),
        },
        "criteria": criteria,
        "instrumentation": instrumentation,
    }
    if out_path is not None:
        out_path = Path(out_path)
        out_path.write_text(
            json.dumps(document, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )
    return document
