"""Timing and agreement checks across stack-distance kernels.

One trace goes through every requested kernel; each gets a median wall-time
over repeated one-shot passes, a speedup relative to the ``baseline``
kernel, and an agreement verdict against the baseline's exact curve:

* exact kernels must reproduce the baseline *bit-identically* (dataclass
  equality of the :class:`~repro.buffer.stack.FetchCurve`);
* the sampled kernel must stay within its documented relative-error bound
  (:data:`~repro.buffer.kernels.SAMPLED_BAND_ERROR_BOUND`) on the
  evaluation band ``0.05*A .. 0.9*A`` — the same band fractions every
  experiment in this repo evaluates on.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.buffer.kernels import (
    SAMPLED_BAND_ERROR_BOUND,
    available_kernels,
    get_kernel,
)
from repro.errors import KernelError


def evaluation_band(distinct_pages: int) -> List[int]:
    """Buffer sizes at 5%..90% (steps of 5%) of the page universe.

    Mirrors the fractions of
    :func:`repro.eval.buffer_grid.evaluation_buffer_grid`, which is where
    every experiment queries fetch curves; the sampled kernel's error
    bound is defined over exactly this band.
    """
    sizes = sorted(
        {max(1, round(f / 100 * distinct_pages)) for f in range(5, 91, 5)}
    )
    return sizes


@dataclass(frozen=True)
class KernelTiming:
    """One kernel's measurement on one trace."""

    kernel: str
    exact: bool
    median_ns: int
    #: baseline median / this kernel's median (1.0 for baseline itself).
    speedup: float
    #: Worst relative F(B) deviation from baseline on the evaluation band,
    #: in percent (0.0 when the curves are bit-identical).
    max_rel_error_pct: float
    #: Exact kernels: bit-identical curve.  Sampled: within its bound.
    agrees: bool


@dataclass(frozen=True)
class KernelComparison:
    """All kernels' measurements on one trace, plus trace provenance."""

    references: int
    distinct_pages: int
    baseline_median_ns: int
    timings: Tuple[KernelTiming, ...]

    @property
    def all_agree(self) -> bool:
        """True when every kernel passed its agreement check."""
        return all(t.agrees for t in self.timings)

    def timing(self, kernel: str) -> KernelTiming:
        """The measurement row for one kernel, by name."""
        for t in self.timings:
            if t.kernel == kernel:
                return t
        raise KernelError(
            f"no timing for kernel {kernel!r}; have "
            f"{[t.kernel for t in self.timings]}"
        )


def _median_ns(fn, repeats: int) -> int:
    """Median wall time of ``repeats`` calls, in nanoseconds."""
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter_ns()
        fn()
        samples.append(time.perf_counter_ns() - t0)
    return int(statistics.median(samples))


def compare_kernels(
    trace: Sequence[int],
    kernels: Optional[Sequence[str]] = None,
    repeats: int = 5,
    error_bound: float = SAMPLED_BAND_ERROR_BOUND,
) -> KernelComparison:
    """Time ``kernels`` (default: all registered) on ``trace``.

    The baseline kernel is always measured (it anchors the speedups and
    provides the reference curve) and is included in the result even when
    ``kernels`` omits it.
    """
    if repeats < 1:
        raise KernelError(f"repeats must be >= 1, got {repeats}")
    names = list(kernels) if kernels else list(available_kernels())
    if "baseline" not in names:
        names.insert(0, "baseline")
    # Measure baseline first so its median anchors every speedup.
    names.sort(key=lambda n: (n != "baseline", n))

    baseline = get_kernel("baseline")
    reference = baseline.analyze(trace)
    band = evaluation_band(reference.distinct_pages)
    reference_fetches = [reference.fetches(b) for b in band]
    baseline_ns = _median_ns(lambda: baseline.analyze(trace), repeats)

    timings: List[KernelTiming] = []
    for name in names:
        kern = get_kernel(name)
        if name == "baseline":
            ns, curve = baseline_ns, reference
        else:
            ns = _median_ns(lambda: kern.analyze(trace), repeats)
            curve = kern.analyze(trace)
        err = max(
            abs(curve.fetches(b) - f) / f
            for b, f in zip(band, reference_fetches)
        )
        if kern.exact:
            agrees = curve == reference
        else:
            agrees = err <= error_bound
        timings.append(
            KernelTiming(
                kernel=name,
                exact=kern.exact,
                median_ns=ns,
                speedup=baseline_ns / ns if ns else float("inf"),
                max_rel_error_pct=100.0 * err,
                agrees=agrees,
            )
        )

    return KernelComparison(
        references=reference.accesses,
        distinct_pages=reference.distinct_pages,
        baseline_median_ns=baseline_ns,
        timings=tuple(timings),
    )
