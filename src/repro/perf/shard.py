"""The BENCH_shard benchmark: sharded LRU-Fit scaling as JSON.

Times a single-process pass of one kernel (``compact`` by default) over a
paper-scale trace (see :mod:`repro.trace.paper_scale`), then a sharded
pass at each requested worker count (``shards == workers``), and writes
the scaling curve to ``BENCH_shard.json``:

* per-worker wall time, per-shard feed times, and merge time;
* speedup versus the single-process pass, both as measured wall clock
  and as the pass's *critical path* (slowest shard + merge) — the wall
  speedup a machine with enough cores would observe;
* whether the merged curve is fetch-for-fetch identical to the
  single-pass exact curve (it must be);
* the sampled kernel's merged-curve band error versus the exact curve.

Wall-clock speedup only materializes when the host actually has cores to
run shards on, so the acceptance criteria record a ``basis``: ``wall``
on hosts with >= 4 cores, ``critical_path`` otherwise (the profile of a
sharded pass is deterministic work, so the critical path is a faithful
stand-in on starved CI runners).  On a critical-path basis the shards
are timed *serially* — a fork pool wider than the core count would
contend with itself and inflate every per-shard time, corrupting the
very quantity being estimated.  The gates: >= 2.5x at 4 workers on a
full run, >= 1.2x at 2 workers on a smoke run.

``smoke=True`` shrinks the trace and worker set so the harness runs
inside the tier-1 suite in about a second; criteria are computed but
flagged not meaningful (speedups need the full trace).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.buffer.kernels import (
    SAMPLED_BAND_ERROR_BOUND,
    get_kernel,
    run_sharded_pass,
)
from repro.perf.timing import evaluation_band
from repro.trace.paper_scale import (
    PAPER_SCALE_PAGES,
    PAPER_SCALE_REFS,
    paper_scale_source,
)

DEFAULT_WORKER_COUNTS = (1, 2, 4, 8)
DEFAULT_KERNEL = "compact"

#: Full-run gate: wall (or critical-path) speedup at 4 workers.
MIN_SPEEDUP_AT_4_WORKERS = 2.5
#: Smoke-run gate: speedup at 2 workers.
MIN_SMOKE_SPEEDUP_AT_2_WORKERS = 1.2
#: Hosts with fewer cores than this are judged on the critical path.
_WALL_BASIS_MIN_CORES = 4

_SMOKE_REFS = 60_000
_SMOKE_PAGES = 2_000
_SMOKE_WORKER_COUNTS = (1, 2)


def single_pass(kernel: str, source) -> Dict:
    """One-shot streamed pass over ``source``: curve plus wall time.

    Streams the source's chunks through the kernel exactly the way each
    shard worker does, so shard generation cost is charged to both sides
    of the speedup equally.
    """
    stream = get_kernel(kernel).stream()
    started = time.perf_counter_ns()
    for chunk in source.chunks(0, source.total_refs):
        stream.feed(chunk)
    curve = stream.finish()
    wall_ns = time.perf_counter_ns() - started
    return {"kernel": kernel, "curve": curve, "wall_ns": wall_ns}


def shard_timing(
    source,
    shards: int,
    workers: int,
    kernel: str = DEFAULT_KERNEL,
    exact_curve=None,
) -> Dict:
    """One sharded pass, profiled into a JSON-friendly row.

    ``exact_curve`` (the single-pass curve) enables the
    ``merged_equals_exact`` verdict; the row's ``curve`` key carries the
    merged curve for callers that compare further.
    """
    started = time.perf_counter_ns()
    result = run_sharded_pass(source, shards, workers=workers, kernel=kernel)
    wall_ns = time.perf_counter_ns() - started
    critical_ns = max(result.per_shard_feed_ns) + result.merge_ns
    row = {
        "workers": workers,
        "shards": result.shards,
        "wall_ns": wall_ns,
        "wall_ms": round(wall_ns / 1e6, 3),
        "per_shard_feed_ms": [
            round(ns / 1e6, 3) for ns in result.per_shard_feed_ns
        ],
        "merge_ms": round(result.merge_ns / 1e6, 3),
        "critical_path_ns": critical_ns,
        "critical_path_ms": round(critical_ns / 1e6, 3),
        "seam_reuses": (
            result.seam.seam_reuses if result.seam is not None else None
        ),
        "curve": result.curve,
    }
    if exact_curve is not None:
        row["merged_equals_exact"] = result.curve == exact_curve
    return row


def _band_error(curve, band: Sequence[int], exact_fetches) -> float:
    """Worst relative F(B) deviation from the exact curve, as a ratio."""
    return max(
        abs(curve.fetches(b) - f) / f
        for b, f in zip(band, exact_fetches)
        if f
    )


def run_shard_benchmark(
    out_path: Optional[Path] = None,
    refs: int = PAPER_SCALE_REFS,
    pages: int = PAPER_SCALE_PAGES,
    pattern: str = "zipf",
    seed: int = 0,
    kernel: str = DEFAULT_KERNEL,
    worker_counts: Sequence[int] = DEFAULT_WORKER_COUNTS,
    smoke: bool = False,
) -> Dict:
    """Run the shard scaling benchmark; optionally write ``out_path``.

    Returns the full result document.  ``smoke=True`` shrinks everything
    for a roughly one-second structural run (used by the tier-1 suite
    and the CI shard stage).
    """
    if smoke:
        refs = min(refs, _SMOKE_REFS)
        pages = min(pages, _SMOKE_PAGES)
        worker_counts = _SMOKE_WORKER_COUNTS
    worker_counts = tuple(worker_counts)
    host_cores = os.cpu_count() or 1
    basis = (
        "wall" if host_cores >= _WALL_BASIS_MIN_CORES else "critical_path"
    )
    source = paper_scale_source(
        pattern=pattern, refs=refs, pages=pages, seed=seed
    )

    reference = single_pass(kernel, source)
    single_ns = reference["wall_ns"]
    exact_curve = reference["curve"]
    band = evaluation_band(exact_curve.distinct_pages)
    exact_fetches = [exact_curve.fetches(b) for b in band]

    rows: List[Dict] = []
    for workers in worker_counts:
        # On a critical-path basis, time shards serially: a pool wider
        # than the core count contends with itself and inflates the
        # per-shard times the critical path is computed from.
        pool_workers = workers if basis == "wall" else 1
        row = shard_timing(
            source, workers, pool_workers, kernel, exact_curve=exact_curve
        )
        row.pop("curve")
        row["workers"] = workers
        row["pool_workers"] = pool_workers
        row["speedup_wall"] = round(single_ns / row["wall_ns"], 3)
        row["speedup_critical_path"] = round(
            single_ns / row["critical_path_ns"], 3
        )
        rows.append(row)

    # Sampled merge quality: a sharded sampled pass at the widest shard
    # count must reproduce the single sampled pass bit for bit (the
    # merge-correctness claim, valid at any scale); its band error
    # versus the exact curve is the sampled kernel's own documented
    # error, only meaningful at full trace scale.
    sampled_shards = max(worker_counts)
    sampled_single = single_pass("sampled", source)
    sampled_row = shard_timing(source, sampled_shards, 1, "sampled")
    sampled_curve = sampled_row.pop("curve")
    sampled_merge_exact = sampled_curve == sampled_single["curve"]
    sampled_error = _band_error(sampled_curve, band, exact_fetches)

    speedup_key = (
        "speedup_wall" if basis == "wall" else "speedup_critical_path"
    )
    by_workers = {row["workers"]: row for row in rows}
    gate_workers = 2 if smoke else 4
    gate_min = (
        MIN_SMOKE_SPEEDUP_AT_2_WORKERS if smoke
        else MIN_SPEEDUP_AT_4_WORKERS
    )
    gate_row = by_workers.get(gate_workers)
    gate_speedup = gate_row[speedup_key] if gate_row else None
    merged_exact_everywhere = all(
        row["merged_equals_exact"] for row in rows
    )
    criteria = {
        "basis": basis,
        "host_cores": host_cores,
        "gate_workers": gate_workers,
        "min_speedup": gate_min,
        "speedup": gate_speedup,
        "merged_exact_everywhere": merged_exact_everywhere,
        "sampled_merge_exact": sampled_merge_exact,
        "sampled_band_error_pct": round(100.0 * sampled_error, 4),
        "sampled_max_band_error_pct": 100.0 * SAMPLED_BAND_ERROR_BOUND,
        "meaningful": not smoke,
        "passed": (
            merged_exact_everywhere
            and sampled_merge_exact
            # The sampled kernel's band error needs the full trace scale
            # to be meaningful; at smoke scale only the bit-identity of
            # the merge is judged.
            and (smoke or sampled_error <= SAMPLED_BAND_ERROR_BOUND)
            and gate_speedup is not None
            and gate_speedup >= gate_min
        ),
    }

    document = {
        "schema": 1,
        "generated_by": "benchmarks/run_shard_bench.py",
        "config": {
            "refs": refs,
            "pages": pages,
            "pattern": pattern,
            "seed": seed,
            "kernel": kernel,
            "worker_counts": list(worker_counts),
            "smoke": smoke,
            "host_cores": host_cores,
        },
        "single_pass": {
            "kernel": kernel,
            "wall_ns": single_ns,
            "wall_ms": round(single_ns / 1e6, 3),
        },
        "sharded": rows,
        "sampled": {
            "shards": sampled_shards,
            "wall_ms": sampled_row["wall_ms"],
            "merge_ms": sampled_row["merge_ms"],
            "merged_equals_single_pass": sampled_merge_exact,
            "band_error_pct": round(100.0 * sampled_error, 4),
            "bound_pct": 100.0 * SAMPLED_BAND_ERROR_BOUND,
        },
        "criteria": criteria,
    }
    if out_path is not None:
        out_path = Path(out_path)
        out_path.write_text(
            json.dumps(document, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )
    return document
