"""Metamorphic invariant checkers for curves, estimators, and serving.

These are the properties that must hold *whatever* the workload is — the
verification harness's second line of defense after oracle agreement.
Each checker is a reusable predicate: it takes the object under test plus
the probe grid and returns a list of :class:`InvariantViolation` (empty
means the invariant held), so the runner, the CLI, and pytest can all
aggregate them without re-encoding the rules.

Checked invariants, with their source in the paper's model:

* ``curve-monotone`` — F(B) is non-increasing in B (LRU's inclusion
  property; more buffer never causes more fetches).
* ``curve-bounds`` — F(B) lies in [distinct pages, total references]
  (compulsory misses are a floor, one fetch per reference a ceiling).
* ``selectivity-monotone`` — Est-IO estimates never decrease as the
  range selectivity grows (reading more of the index cannot cost less).
  Note: EPFIS's Equation-1 heuristic correction deliberately switches
  off at sigma = phi/3, which makes the *corrected* estimate step down
  there; the runner therefore checks this invariant on the uncorrected
  Est-IO path (``apply_correction=False``) for the EPFIS family.
* ``batched-consistency`` — ``estimate_many`` and ``estimate_grid``
  return exactly what scalar ``estimate`` loops would (batching is an
  optimization, never a semantic).
* ``catalog-round-trip`` — save -> load -> estimate reproduces the
  in-memory estimates bit for bit (the wire format loses nothing an
  estimator reads).
* ``engine-cache`` — the estimation engine's cached (warm) answers equal
  its cold ones, and its per-estimator call counters track every call.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.catalog.catalog import IndexStatistics, SystemCatalog
from repro.engine import EstimationEngine
from repro.estimators.base import PageFetchEstimator
from repro.estimators.registry import get_estimator
from repro.types import ScanSelectivity

#: Absolute slack for float comparisons that are only *mathematically*
#: equal (monotonicity across independently rounded estimates).  Exact
#: replays (batched vs scalar, save/load, cache hits) use equality.
FLOAT_TOLERANCE = 1e-9

#: Default range-selectivity probes (log-ish spread plus the full scan).
SIGMA_PROBES: Tuple[float, ...] = (
    0.001, 0.005, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0,
)
#: Default sargable-selectivity probes.
SARGABLE_PROBES: Tuple[float, ...] = (1.0, 0.5)


@dataclass(frozen=True)
class InvariantViolation:
    """One broken invariant, with enough context to reproduce it."""

    invariant: str
    subject: str
    message: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.subject}: {self.message}"


# ----------------------------------------------------------------------
# Fetch-curve invariants
# ----------------------------------------------------------------------
def check_curve_monotone(
    curve, buffer_sizes: Sequence[int], subject: str = "curve"
) -> List[InvariantViolation]:
    """F(B) must be non-increasing in B."""
    violations = []
    previous_b: Optional[int] = None
    previous_f = 0
    for b in sorted(buffer_sizes):
        f = curve.fetches(b)
        if previous_b is not None and f > previous_f:
            violations.append(
                InvariantViolation(
                    "curve-monotone",
                    subject,
                    f"F({b})={f} > F({previous_b})={previous_f}",
                )
            )
        previous_b, previous_f = b, f
    return violations


def check_curve_bounds(
    curve, buffer_sizes: Sequence[int], subject: str = "curve"
) -> List[InvariantViolation]:
    """F(B) must lie within [distinct_pages, accesses] for every B."""
    violations = []
    for b in buffer_sizes:
        f = curve.fetches(b)
        if not curve.distinct_pages <= f <= curve.accesses:
            violations.append(
                InvariantViolation(
                    "curve-bounds",
                    subject,
                    f"F({b})={f} outside [{curve.distinct_pages}, "
                    f"{curve.accesses}]",
                )
            )
    return violations


# ----------------------------------------------------------------------
# Estimator invariants
# ----------------------------------------------------------------------
def check_selectivity_monotone(
    estimator: PageFetchEstimator,
    buffer_sizes: Sequence[int],
    sigmas: Sequence[float] = SIGMA_PROBES,
    sargables: Sequence[float] = SARGABLE_PROBES,
    subject: str = "estimator",
) -> List[InvariantViolation]:
    """Estimates must not decrease as range selectivity grows."""
    violations = []
    ordered = sorted(sigmas)
    for b in buffer_sizes:
        for s in sargables:
            estimates = estimator.estimate_many(
                [(ScanSelectivity(sigma, s), b) for sigma in ordered]
            )
            for i in range(1, len(estimates)):
                if estimates[i] < estimates[i - 1] - FLOAT_TOLERANCE:
                    violations.append(
                        InvariantViolation(
                            "selectivity-monotone",
                            subject,
                            f"B={b}, S={s}: estimate fell from "
                            f"{estimates[i - 1]!r} at sigma="
                            f"{ordered[i - 1]} to {estimates[i]!r} at "
                            f"sigma={ordered[i]}",
                        )
                    )
    return violations


def check_batched_consistency(
    estimator: PageFetchEstimator,
    buffer_sizes: Sequence[int],
    sigmas: Sequence[float] = SIGMA_PROBES,
    sargables: Sequence[float] = SARGABLE_PROBES,
    subject: str = "estimator",
) -> List[InvariantViolation]:
    """``estimate_many``/``estimate_grid`` must equal scalar loops exactly."""
    violations = []
    selectivities = [
        ScanSelectivity(sigma, s) for sigma in sigmas for s in sargables
    ]
    pairs = [(sel, b) for b in buffer_sizes for sel in selectivities]
    scalar = [estimator.estimate(sel, b) for sel, b in pairs]
    batched = estimator.estimate_many(pairs)
    if batched != scalar:
        diffs = [
            f"({sel.range_selectivity}, {sel.sargable_selectivity}, {b})"
            for (sel, b), got, want in zip(pairs, batched, scalar)
            if got != want
        ]
        violations.append(
            InvariantViolation(
                "batched-consistency",
                subject,
                f"estimate_many diverged from scalar estimate at "
                f"{len(diffs)} of {len(pairs)} requests "
                f"(first: {diffs[0]})",
            )
        )
    grid = estimator.estimate_grid(selectivities, list(buffer_sizes))
    expected_grid = [
        [estimator.estimate(sel, b) for sel in selectivities]
        for b in buffer_sizes
    ]
    if grid != expected_grid:
        violations.append(
            InvariantViolation(
                "batched-consistency",
                subject,
                "estimate_grid diverged from nested scalar loops",
            )
        )
    return violations


# ----------------------------------------------------------------------
# Serving-stack invariants
# ----------------------------------------------------------------------
def _probe_requests(
    stats: IndexStatistics,
    sigmas: Sequence[float],
    sargables: Sequence[float],
) -> List[Tuple[ScanSelectivity, int]]:
    t = stats.table_pages
    buffers = sorted({1, max(1, t // 20), max(1, t // 2), t})
    return [
        (ScanSelectivity(sigma, s), b)
        for b in buffers
        for sigma in sigmas
        for s in sargables
    ]


def check_catalog_round_trip(
    stats: IndexStatistics,
    estimator_names: Sequence[str],
    sigmas: Sequence[float] = SIGMA_PROBES,
    sargables: Sequence[float] = SARGABLE_PROBES,
    directory: Optional[Path] = None,
) -> List[InvariantViolation]:
    """save -> load -> estimate must be bit-stable for every estimator."""
    violations = []
    requests = _probe_requests(stats, sigmas, sargables)
    catalog = SystemCatalog()
    catalog.put(stats)
    with tempfile.TemporaryDirectory(dir=directory) as tmp:
        path = Path(tmp) / "catalog.json"
        catalog.save(path)
        reloaded = SystemCatalog.load(path).get(stats.index_name)
    for name in estimator_names:
        before = get_estimator(name, stats).estimate_many(requests)
        after = get_estimator(name, reloaded).estimate_many(requests)
        if before != after:
            drifted = sum(1 for x, y in zip(before, after) if x != y)
            violations.append(
                InvariantViolation(
                    "catalog-round-trip",
                    f"{stats.index_name}/{name}",
                    f"{drifted} of {len(requests)} estimates changed "
                    f"across save/load",
                )
            )
    return violations


def check_engine_cache_consistency(
    stats: IndexStatistics,
    estimator_names: Sequence[str],
    sigmas: Sequence[float] = SIGMA_PROBES,
    sargables: Sequence[float] = SARGABLE_PROBES,
) -> List[InvariantViolation]:
    """Warm (cached-binding) engine answers must equal cold ones, and the
    per-estimator metrics must count both calls."""
    violations = []
    requests = _probe_requests(stats, sigmas, sargables)
    catalog = SystemCatalog()
    catalog.put(stats)
    engine = EstimationEngine(catalog)
    for name in estimator_names:
        cold = engine.estimate_many(stats.index_name, name, requests)
        warm = engine.estimate_many(stats.index_name, name, requests)
        if cold != warm:
            violations.append(
                InvariantViolation(
                    "engine-cache",
                    f"{stats.index_name}/{name}",
                    "cached-binding estimates differ from cold ones",
                )
            )
        direct = get_estimator(name, stats).estimate_many(requests)
        if cold != direct:
            violations.append(
                InvariantViolation(
                    "engine-cache",
                    f"{stats.index_name}/{name}",
                    "engine estimates differ from a directly bound "
                    "estimator",
                )
            )
        counters = engine.metrics().get(name.lower())
        if (
            counters is None
            or counters["calls"] != 2
            or counters["estimates"] != 2 * len(requests)
        ):
            violations.append(
                InvariantViolation(
                    "engine-cache",
                    f"{stats.index_name}/{name}",
                    f"metrics did not track both calls: {counters!r}",
                )
            )
        engine.reset_metrics()
    return violations
