"""Differential verification harness.

Correctness tooling — not ad-hoc tests — for every fast path in the
library.  Three layers, each reusable on its own:

* :mod:`repro.verify.traces` — a deterministic, seeded trace corpus
  (uniform, Zipf, clustered, sequential-scan, adversarial loops);
* :mod:`repro.verify.oracle` — differential replay of each trace
  through the direct LRU simulator (the oracle), every registered
  stack-distance kernel, and the streaming chunked path;
* :mod:`repro.verify.invariants` — metamorphic predicates (curve
  monotonicity and bounds, Est-IO selectivity monotonicity, batched vs
  scalar consistency, catalog round-trip stability, engine cache
  coherence);
* :mod:`repro.verify.golden` — committed regression snapshots of seeded
  curves and estimator outputs, regenerated with ``repro verify --regen``.

:func:`repro.verify.runner.run_verification` composes all of it; the
``repro verify`` CLI subcommand and the pytest suite are thin callers.
"""

from repro.verify.golden import (
    DEFAULT_GOLDEN_PATH,
    GOLDEN_ESTIMATORS,
    GOLDEN_PROBES,
    GOLDEN_SCHEMA_VERSION,
    compare_golden,
    golden_snapshot,
    load_golden,
    render_golden,
    statistics_for_case,
    write_golden,
)
from repro.verify.invariants import (
    FLOAT_TOLERANCE,
    SARGABLE_PROBES,
    SIGMA_PROBES,
    InvariantViolation,
    check_batched_consistency,
    check_catalog_round_trip,
    check_curve_bounds,
    check_curve_monotone,
    check_engine_cache_consistency,
    check_selectivity_monotone,
)
from repro.verify.oracle import (
    STREAMING_CHUNK_SIZES,
    DifferentialResult,
    Mismatch,
    differential_check,
    oracle_curve,
    oracle_fetches,
)
from repro.verify.runner import (
    MONOTONE_ESTIMATORS,
    CaseVerification,
    VerificationReport,
    run_verification,
    verify_case,
)
from repro.verify.traces import (
    BAND_FRACTIONS,
    FAMILIES,
    TraceCase,
    clustered_trace,
    corpus_case,
    corpus_cases,
    drifting_scan_trace,
    loop_trace,
    nested_loop_trace,
    sequential_scan_trace,
    uniform_trace,
    verification_corpus,
    zipf_trace,
)

__all__ = [
    "BAND_FRACTIONS",
    "DEFAULT_GOLDEN_PATH",
    "FAMILIES",
    "FLOAT_TOLERANCE",
    "GOLDEN_ESTIMATORS",
    "GOLDEN_PROBES",
    "GOLDEN_SCHEMA_VERSION",
    "MONOTONE_ESTIMATORS",
    "SARGABLE_PROBES",
    "SIGMA_PROBES",
    "STREAMING_CHUNK_SIZES",
    "CaseVerification",
    "DifferentialResult",
    "InvariantViolation",
    "Mismatch",
    "TraceCase",
    "VerificationReport",
    "check_batched_consistency",
    "check_catalog_round_trip",
    "check_curve_bounds",
    "check_curve_monotone",
    "check_engine_cache_consistency",
    "check_selectivity_monotone",
    "clustered_trace",
    "compare_golden",
    "corpus_case",
    "corpus_cases",
    "differential_check",
    "drifting_scan_trace",
    "golden_snapshot",
    "load_golden",
    "loop_trace",
    "nested_loop_trace",
    "oracle_curve",
    "oracle_fetches",
    "render_golden",
    "run_verification",
    "sequential_scan_trace",
    "statistics_for_case",
    "uniform_trace",
    "verification_corpus",
    "verify_case",
    "write_golden",
    "zipf_trace",
]
