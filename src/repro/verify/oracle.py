"""Differential cross-validation against the direct LRU simulator.

The ground truth for everything this library computes is Section 2's
assumption: a finite buffer pool managed by LRU.  The
:class:`~repro.buffer.lru.LRUBufferPool` simulator implements that
assumption literally (one pool per buffer size, replayed reference by
reference), so it is the oracle here — slow, obvious, and independent of
every clever pass being verified.

For each corpus trace this module replays the oracle at a grid of buffer
sizes and compares:

* every registered **exact** kernel (``baseline``, ``compact``, ``numpy``
  when importable) — required to match the oracle *exactly* at every size;
* the **streaming** chunked path of each kernel — required to match that
  kernel's own one-shot analysis exactly (chunking must be invisible);
* the **sharded** merge path of each kernel — a shard-and-merge pass
  (see :mod:`repro.buffer.kernels.sharded`) must likewise reproduce the
  one-shot analysis fetch for fetch, at several shard counts;
* the **sampled** kernel — exact when its small-universe escape hatch
  applies, otherwise held to its documented relative-error band on the
  evaluation grid (see :mod:`repro.buffer.kernels.sampled`);
* every registered **policy** kernel (``clock``, ``2q``,
  ``lecar-tinylfu``) — held to exact agreement with *its own*
  :class:`~repro.buffer.pool.BufferPool` simulator, replayed here size
  by size exactly as the LRU pool is for LRU kernels.  The dormant
  :class:`~repro.buffer.clock.ClockBufferPool` thereby becomes a live
  oracle.  Policy kernels skip the sharded stage (no stack property, no
  mergeable shard summaries) but their streaming chunked path is held
  to the same chunking-invisibility contract as every other kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.buffer.kernels import (
    SAMPLED_BAND_ERROR_BOUND,
    available_kernels,
    available_policy_kernels,
    get_kernel,
    sharded_fetch_curve,
)
from repro.buffer.lru import LRUBufferPool
from repro.buffer.policies import get_policy_pool
from repro.errors import VerificationError
from repro.trace.reference import streaming_fetch_curve
from repro.verify.traces import TraceCase

#: Chunk sizes used to exercise the streaming path; deliberately awkward
#: (single refs, a prime, and a chunk larger than most corpus traces).
STREAMING_CHUNK_SIZES: Tuple[int, ...] = (1, 97, 4096)

#: Shard counts used to exercise the sharded merge path (an even split
#: and a prime one, both forcing multiple seams on corpus traces).
SHARDED_SHARD_COUNTS: Tuple[int, ...] = (2, 5)


def oracle_fetches(trace: Sequence[int], buffer_pages: int) -> int:
    """Page fetches of a real LRU pool of ``buffer_pages`` slots."""
    if buffer_pages < 1:
        raise VerificationError(
            f"buffer size must be >= 1, got {buffer_pages}"
        )
    return LRUBufferPool(buffer_pages).run(trace)


def oracle_curve(
    trace: Sequence[int], buffer_sizes: Sequence[int]
) -> List[Tuple[int, int]]:
    """``[(B, F(B)), ...]`` by direct simulation, one pool per size."""
    return [(b, oracle_fetches(trace, b)) for b in buffer_sizes]


def _chunks(
    pages: Sequence[int], chunk_size: int
) -> Iterator[Sequence[int]]:
    for start in range(0, len(pages), chunk_size):
        yield pages[start:start + chunk_size]


@dataclass(frozen=True)
class Mismatch:
    """One point where a kernel curve departed from its reference."""

    buffer_pages: int
    expected: int
    got: int

    def __str__(self) -> str:
        return (
            f"B={self.buffer_pages}: expected {self.expected}, "
            f"got {self.got}"
        )


@dataclass(frozen=True)
class DifferentialResult:
    """One (trace case, kernel) comparison against the LRU oracle."""

    case: str
    kernel: str
    #: Whether this kernel was held to exact agreement (exact kernels
    #: always; ``sampled`` when its escape hatch applies).
    held_exact: bool
    checked_sizes: Tuple[int, ...]
    #: Oracle disagreements (only populated when ``held_exact``).
    mismatches: Tuple[Mismatch, ...]
    #: Worst relative error vs the oracle over the evaluation band
    #: (approximate kernels only; 0.0 when held exact and agreeing).
    max_band_error: float
    #: The bound ``max_band_error`` is judged against (0 when exact).
    error_bound: float
    #: Whether chunk-fed streaming reproduced the one-shot analysis.
    streaming_consistent: bool
    #: Whether the shard-and-merge pass reproduced the one-shot analysis.
    sharded_consistent: bool = True

    @property
    def ok(self) -> bool:
        """True when this kernel met its contract on this trace."""
        if not self.streaming_consistent:
            return False
        if not self.sharded_consistent:
            return False
        if self.held_exact:
            return not self.mismatches
        return self.max_band_error <= self.error_bound

    def describe(self) -> str:
        """One-line human-readable verdict."""
        if self.held_exact:
            verdict = (
                "exact match" if not self.mismatches
                else f"{len(self.mismatches)} oracle mismatches "
                     f"(first: {self.mismatches[0]})"
            )
        else:
            verdict = (
                f"band error {100 * self.max_band_error:.2f}% "
                f"(bound {100 * self.error_bound:.0f}%)"
            )
        if not self.streaming_consistent:
            verdict += "; streaming DIVERGED from one-shot"
        if not self.sharded_consistent:
            verdict += "; sharded merge DIVERGED from one-shot"
        return f"{self.case}/{self.kernel}: {verdict}"


def _streaming_consistent(
    case: TraceCase, kernel_name: str, one_shot_curve, sizes: Sequence[int]
) -> bool:
    """Chunked feeding must reproduce the one-shot curve point for point.

    This holds for the sampled kernel too: its hash sample is a function
    of the reference multiset and seed, never of chunk boundaries.
    """
    for chunk_size in STREAMING_CHUNK_SIZES:
        streamed = streaming_fetch_curve(
            _chunks(case.pages, chunk_size), kernel_name
        )
        for b in sizes:
            if streamed.fetches(b) != one_shot_curve.fetches(b):
                return False
    return True


def _sharded_consistent(
    case: TraceCase, kernel_name: str, one_shot_curve, sizes: Sequence[int]
) -> bool:
    """A shard-and-merge pass must reproduce the one-shot curve.

    Exact kernels go through the seam-corrected merge; the sampled
    kernel merges per-shard hash samples under the shared seed.  Both
    are constructed to be bit-identical to the single pass, so this is
    an equality check, never a band check.
    """
    for shards in SHARDED_SHARD_COUNTS:
        merged = sharded_fetch_curve(case.pages, shards, kernel=kernel_name)
        for b in sizes:
            if merged.fetches(b) != one_shot_curve.fetches(b):
                return False
    return True


def default_verify_kernels() -> Tuple[str, ...]:
    """The kernels a default verification run checks.

    Every registered stack kernel (against the LRU oracle) plus every
    registered policy kernel (against its own pool simulator) — the
    whole policy dimension is differentially verified by default.
    """
    return available_kernels() + available_policy_kernels()


def differential_check(
    case: TraceCase,
    kernels: Optional[Sequence[str]] = None,
    oracle: Optional[Dict[int, int]] = None,
) -> List[DifferentialResult]:
    """Replay ``case`` through the oracle and every requested kernel.

    ``kernels`` defaults to :func:`default_verify_kernels` (every stack
    kernel plus every policy kernel); ``oracle`` lets a caller reuse
    precomputed *LRU* oracle fetches (keyed by buffer size) when
    checking several kernel sets over the same trace — policy kernels
    always replay their own policy's pool here, so the precomputed dict
    never applies to them.
    """
    names = (
        tuple(kernels) if kernels is not None else default_verify_kernels()
    )
    unknown = sorted(set(names) - set(default_verify_kernels()))
    if unknown:
        raise VerificationError(
            f"unknown kernels {unknown}; registered: "
            f"{', '.join(default_verify_kernels())}"
        )
    sizes = case.buffer_sizes()
    band = set(case.band_sizes())
    lru_names = [
        n for n in names if getattr(get_kernel(n), "policy", "lru") == "lru"
    ]
    if oracle is None:
        oracle = (
            {b: oracle_fetches(case.pages, b) for b in sizes}
            if lru_names
            else {}
        )
    elif lru_names:
        missing = sorted(set(sizes) - set(oracle))
        if missing:
            raise VerificationError(
                f"precomputed oracle is missing buffer sizes {missing}"
            )

    results: List[DifferentialResult] = []
    for name in names:
        kernel = get_kernel(name)
        curve = kernel.analyze(case.pages)
        if kernel.policy != "lru":
            # The ground truth for a policy kernel is its own pool
            # simulator, replayed one size at a time — fetch for fetch,
            # exactly how the LRU pool serves the stack kernels.
            truth = {
                b: get_policy_pool(kernel.policy, b).run(case.pages)
                for b in sizes
            }
            held_exact = True
        else:
            truth = oracle
            held_exact = kernel.exact or case.sampled_is_exact
        mismatches: List[Mismatch] = []
        max_band_error = 0.0
        for b in sizes:
            got = curve.fetches(b)
            want = truth[b]
            if held_exact and got != want:
                mismatches.append(Mismatch(b, want, got))
            if b in band and want:
                max_band_error = max(
                    max_band_error, abs(got - want) / want
                )
        results.append(
            DifferentialResult(
                case=case.name,
                kernel=name,
                held_exact=held_exact,
                checked_sizes=sizes,
                mismatches=tuple(mismatches),
                max_band_error=max_band_error,
                error_bound=(
                    0.0 if held_exact else SAMPLED_BAND_ERROR_BOUND
                ),
                streaming_consistent=_streaming_consistent(
                    case, name, curve, sizes
                ),
                sharded_consistent=(
                    _sharded_consistent(case, name, curve, sizes)
                    if kernel.mergeable
                    else True
                ),
            )
        )
    return results
